//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace-local
//! crate re-implements the subset of proptest's API that the repository's
//! property tests use: the [`proptest!`] macro, range/tuple/collection
//! strategies, `prop_map`, `prop::sample::select`, `prop::bool::ANY`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the case index and seed; the
//!   whole run is deterministic, so re-running reproduces it exactly.
//! * **Deterministic by default.** Case `i` of every test draws from a
//!   fixed seed derived from `i`, so results never flake.
//! * Only the strategy combinators listed above exist.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner {
    //! Runner configuration and failure plumbing for the `proptest!` macro.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Mirror of `proptest::test_runner::Config` (only `cases` matters here).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default (256) is overkill without shrinking; 48 keeps
            // the full suite fast while still exploring the space.
            Config { cases: 48 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Deterministic per-case source of randomness.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// RNG for case number `case` of a test.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                inner: SmallRng::seed_from_u64(
                    0xC0FF_EE00u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            }
        }

        /// Access the underlying generator.
        pub fn rng(&mut self) -> &mut SmallRng {
            &mut self.inner
        }
    }
}

pub mod collection {
    //! `prop::collection` — vec and hash_set strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Size specification accepted by [`vec()`](fn@vec) and [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.lo..=self.hi)
        }
    }

    /// Strategy producing `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`](fn@vec).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `HashSet<S::Value>` with exactly a size drawn from
    /// `size` (element distinctness permitting).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            // Bounded retries so a narrow element domain cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < n && attempts < n.saturating_mul(1000) + 1000 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    //! `prop::sample` — choosing from a fixed set of values.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy drawing uniformly from `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select: empty value set");
        Select { values }
    }

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().gen_range(0..self.values.len());
            self.values[i].clone()
        }
    }
}

pub mod bool {
    //! `prop::bool` — boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical instance, mirroring `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests. See the crate docs for the
/// supported subset (`#![proptest_config(..)]`, `pat in strategy` args).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {case}: {msg}");
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — fail the case
/// (not the process) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a), stringify!($b), left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Skip the current case when its inputs do not satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
