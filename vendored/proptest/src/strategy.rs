//! The [`Strategy`] trait and the combinators used by the repository's
//! property tests: ranges over primitives, tuples, and `prop_map`.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// returns the final value directly.
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (mirrors `Strategy::prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `Just(v)` always produces `v` (mirrors `proptest::strategy::Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
