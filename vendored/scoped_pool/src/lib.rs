//! Offline vendored scoped thread pool.
//!
//! The build environment has no network access to crates.io, so this
//! workspace-local crate provides the one primitive the SchedTask
//! reproduction's parallel sweep harness needs: a bounded-worker
//! parallel map over borrowed data, [`scoped_map`]. It is built entirely
//! on [`std::thread::scope`] — no registry crate (`rayon`,
//! `threadpool`, ...) is involved.
//!
//! Design notes:
//!
//! * **Work claiming**, not work pushing: each worker repeatedly claims
//!   the next unprocessed index through a shared [`AtomicUsize`]. Items
//!   therefore run exactly once each, in no particular order, with no
//!   channel plumbing.
//! * **Results land by index** into pre-allocated `Mutex<Option<R>>`
//!   slots, so the output order always matches the input order — the
//!   caller cannot observe scheduling nondeterminism.
//! * **`jobs <= 1` degrades to a plain serial loop** on the calling
//!   thread, making "parallel off" exactly the pre-existing serial code
//!   path.
//! * A panicking closure propagates out of [`scoped_map`] once the scope
//!   joins (the `std::thread::scope` contract); callers that need
//!   per-item isolation wrap their closure body in
//!   [`std::panic::catch_unwind`] themselves.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every element of `items` using at most `jobs` worker
/// threads, returning the results in input order.
///
/// `f` runs once per item. With `jobs <= 1` (or one item or fewer) no
/// thread is spawned and the map runs serially on the caller's thread;
/// otherwise `min(jobs, items.len())` scoped workers claim items off a
/// shared atomic counter.
///
/// # Panics
///
/// If `f` panics on a worker thread the panic is resent from
/// `scoped_map` after all workers join, mirroring the serial behaviour.
pub fn scoped_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }

    let workers = jobs.min(items.len());
    // `Mutex<Option<R>>` rather than `OnceLock<R>`: the slot vector must
    // be `Sync` for sharing across workers, and `Mutex<T>: Sync` needs
    // only `R: Send`.
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("scoped_map slot lock") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("scoped_map slot lock")
                .expect("scoped_map worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn serial_fallback_preserves_order() {
        let items: Vec<u64> = (0..17).collect();
        let out = scoped_map(&items, 1, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let items: Vec<u64> = (0..103).collect();
        let serial = scoped_map(&items, 1, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        for jobs in [2, 3, 4, 8, 200] {
            let parallel = scoped_map(&items, jobs, |&x| {
                x.wrapping_mul(0x9E37_79B9).rotate_left(7)
            });
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let items: Vec<usize> = (0..64).collect();
        let count = AtomicU32::new(0);
        let out = scoped_map(&items, 4, |&i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 64);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(scoped_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(scoped_map(&[41u8], 4, |&x| x + 1), vec![42]);
    }

    #[test]
    fn borrows_caller_state() {
        let base = [10u64, 20, 30];
        let items: Vec<usize> = (0..3).collect();
        let out = scoped_map(&items, 2, |&i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            scoped_map(&items, 2, |&x| {
                assert!(x != 5, "synthetic failure");
                x
            })
        });
        assert!(result.is_err(), "panic must cross scoped_map");
    }
}
