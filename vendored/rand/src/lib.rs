//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace-local crate provides the small slice of the `rand` 0.8 API
//! that the SchedTask reproduction actually uses:
//!
//! * [`rngs::SmallRng`] — a fast, deterministic, seedable generator
//!   (xoshiro256** seeded via SplitMix64, the same construction the real
//!   `SmallRng` family uses on 64-bit targets).
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] over the integer
//!   and float ranges the simulator samples from.
//!
//! It makes no attempt to be statistically or bit-for-bit compatible with
//! the upstream crate; it only has to be a good deterministic PRNG with
//! the same method names and bounds so that downstream code compiles
//! unchanged and runs reproducibly.

#![forbid(unsafe_code)]

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("Standard"
/// distribution in real `rand` terms).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// `x mod span`, bit-for-bit what `(x as u128) % span` yields, without
/// paying for a 128-bit division: every integer span in this crate fits
/// in `u64` except the full inclusive range, whose modulus is `2^64`
/// and therefore the identity on `x`. Powers of two reduce by mask.
#[inline]
fn reduce_u64(x: u64, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let s = span as u64;
        if s & (s - 1) == 0 {
            (x & (s - 1)) as u128
        } else {
            (x % s) as u128
        }
    } else {
        x as u128
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = reduce_u64(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = reduce_u64(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = Standard::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = Standard::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods, auto-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        let u: f64 = Standard::sample_standard(self);
        u < p
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    /// Alias used by some callers; identical to [`SmallRng`] here.
    pub type StdRng = SmallRng;
}
