//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides just enough API for the repository's `[[bench]]` targets to
//! compile and produce useful wall-clock numbers without network access:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. No statistical analysis, plots, or saved
//! baselines — each benchmark runs a calibrated number of iterations and
//! prints the mean time per iteration.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier; defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub mod measurement {
    //! Measurement markers (only wall-clock time exists here).

    /// Wall-clock time measurement marker.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
            _criterion: self,
            _measurement: measurement::WallTime,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
    _measurement: M,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Set the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target total measurement time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: {:>12.3?} per iter ({} iters, {:.3?} total)",
            self.name, id, per_iter, b.iters, b.elapsed
        );
        self
    }

    /// End the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
