//! Statistics used throughout the SchedTask reproduction.
//!
//! The paper leans on four statistical tools, all implemented here:
//!
//! * [`cosine_similarity`] — similarity of instruction breakups across
//!   consecutive epochs (Section 4.4, Equation 1) and TAlloc's
//!   re-allocation trigger (Section 5.2, threshold 0.98).
//! * [`kendall_tau_b`] — quality of the Bloom-filter overlap ranking versus
//!   the exact-footprint ranking (Section 6.5, Figure 11).
//! * [`jain_fairness`] — fairness of per-thread instruction throughput
//!   (Section 6.1, "Fairness of scheduling").
//! * [`geometric_mean_pct`] — the paper's summary statistic for
//!   percentage-change columns ("geom. mean" in Figures 7-9 and all
//!   appendix tables).
//!
//! # Examples
//!
//! ```
//! use schedtask_metrics::cosine_similarity;
//!
//! let epoch_a = [35.0, 40.0, 10.0, 15.0];
//! let epoch_b = [34.0, 41.0, 10.0, 15.0];
//! assert!(cosine_similarity(&epoch_a, &epoch_b) > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod summary;

pub use summary::Summary;

/// Cosine similarity between two equal-length vectors (Equation 1 in the
/// paper).
///
/// Ranges from -1.0 (exactly opposite) to +1.0 (exactly the same); 0.0
/// indicates no correlation. If either vector has zero magnitude the
/// similarity is defined as 0.0 (no correlation), which matches how the
/// paper treats empty epochs at the very start of execution.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
///
/// # Examples
///
/// ```
/// use schedtask_metrics::cosine_similarity;
///
/// assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
/// assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
/// ```
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "cosine similarity needs equal-length vectors"
    );
    let mut dot = 0.0;
    let mut norm_a = 0.0;
    let mut norm_b = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += x * y;
        norm_a += x * x;
        norm_b += y * y;
    }
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    dot / (norm_a.sqrt() * norm_b.sqrt())
}

/// Kendall's rank correlation coefficient τ_B between two rankings given as
/// score slices over the same items (Section 6.5).
///
/// The inputs are *scores*: item `i` has score `a[i]` under ranking A and
/// `b[i]` under ranking B. τ_B handles ties via the standard tie
/// correction:
///
/// ```text
/// τ_B = (C - D) / sqrt((n0 - n1) * (n0 - n2))
/// ```
///
/// where `C`/`D` are concordant/discordant pair counts, `n0 = n(n-1)/2`,
/// and `n1`/`n2` are tied-pair counts within A and B. Returns a value in
/// [-1.0, +1.0]; -1.0 is the opposite ranking and +1.0 the same ranking.
/// Returns 0.0 when either ranking is entirely tied (no ordering
/// information).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use schedtask_metrics::kendall_tau_b;
///
/// // Identical orderings.
/// assert!((kendall_tau_b(&[3.0, 2.0, 1.0], &[30.0, 20.0, 10.0]) - 1.0).abs() < 1e-12);
/// // Reversed orderings.
/// assert!((kendall_tau_b(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
/// ```
pub fn kendall_tau_b(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "kendall tau needs equal-length score slices"
    );
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let tied_a = da == 0.0;
            let tied_b = db == 0.0;
            match (tied_a, tied_b) {
                (true, true) => {
                    ties_a += 1;
                    ties_b += 1;
                }
                (true, false) => ties_a += 1,
                (false, true) => ties_b += 1,
                (false, false) => {
                    if (da > 0.0) == (db > 0.0) {
                        concordant += 1;
                    } else {
                        discordant += 1;
                    }
                }
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Jain's fairness index over per-thread throughputs (Section 6.1).
///
/// ```text
/// J(x) = (Σ x_i)² / (n · Σ x_i²)
/// ```
///
/// Ranges from `1/n` (completely unfair: one thread gets everything) to
/// `1.0` (completely fair). Returns 1.0 for an empty slice (vacuously
/// fair) and 0.0 if all throughputs are zero.
///
/// # Examples
///
/// ```
/// use schedtask_metrics::jain_fairness;
///
/// assert!((jain_fairness(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
/// assert!((jain_fairness(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
/// ```
pub fn jain_fairness(throughputs: &[f64]) -> f64 {
    if throughputs.is_empty() {
        return 1.0;
    }
    let sum: f64 = throughputs.iter().sum();
    let sum_sq: f64 = throughputs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    (sum * sum) / (throughputs.len() as f64 * sum_sq)
}

/// Geometric mean of percentage *changes*, the paper's "geom. mean" column.
///
/// Each input is a percentage change (e.g. `+22.79` for +22.79 %). Values
/// are converted to ratios `1 + p/100`, the geometric mean of the ratios is
/// taken, and the result is converted back to a percentage change. This is
/// the standard way to aggregate speedups and is how the paper's negative
/// entries (e.g. FlexSC's -75 %) coexist with positive ones in a geometric
/// mean.
///
/// Ratios are clamped to a small positive floor (0.001, i.e. -99.9 %) so a
/// pathological -100 % sample does not collapse the whole mean to -100 %.
/// Returns 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// use schedtask_metrics::geometric_mean_pct;
///
/// let g = geometric_mean_pct(&[10.0, 10.0, 10.0]);
/// assert!((g - 10.0).abs() < 1e-9);
/// ```
pub fn geometric_mean_pct(changes_pct: &[f64]) -> f64 {
    if changes_pct.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for &p in changes_pct {
        let ratio = (1.0 + p / 100.0).max(0.001);
        log_sum += ratio.ln();
    }
    ((log_sum / changes_pct.len() as f64).exp() - 1.0) * 100.0
}

/// Arithmetic mean; returns 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(schedtask_metrics::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Percentage change from `baseline` to `value`.
///
/// Returns 0.0 when the baseline is zero (no meaningful change can be
/// expressed).
///
/// # Examples
///
/// ```
/// assert_eq!(schedtask_metrics::pct_change(100.0, 125.0), 25.0);
/// assert_eq!(schedtask_metrics::pct_change(200.0, 100.0), -50.0);
/// ```
pub fn pct_change(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (value - baseline) / baseline * 100.0
}

/// Ratio `numerator / denominator` expressed as a percentage; 0.0 when the
/// denominator is zero.
///
/// # Examples
///
/// ```
/// assert_eq!(schedtask_metrics::pct(1.0, 4.0), 25.0);
/// ```
pub fn pct(numerator: f64, denominator: f64) -> f64 {
    if denominator == 0.0 {
        return 0.0;
    }
    numerator / denominator * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_identical_vectors_is_one() {
        let v = [3.0, 4.0, 5.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_vectors_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]).abs() < 1e-12);
    }

    #[test]
    fn cosine_opposite_vectors_is_minus_one() {
        assert!((cosine_similarity(&[1.0, 2.0], &[-1.0, -2.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn cosine_length_mismatch_panics() {
        cosine_similarity(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn tau_identical_ranking_is_one() {
        let a = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau_b(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_reversed_ranking_is_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau_b(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_single_swap() {
        // Rankings differ by one adjacent swap among 4 items: tau = (C-D)/n0
        // with C=5, D=1, n0=6 -> 4/6.
        let a = [4.0, 3.0, 2.0, 1.0];
        let b = [4.0, 2.0, 3.0, 1.0];
        assert!((kendall_tau_b(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn tau_all_tied_is_zero() {
        assert_eq!(kendall_tau_b(&[1.0, 1.0, 1.0], &[3.0, 2.0, 1.0]), 0.0);
    }

    #[test]
    fn tau_handles_partial_ties() {
        // a has a tie; tie-corrected denominator shrinks accordingly.
        let a = [2.0, 2.0, 1.0];
        let b = [3.0, 2.0, 1.0];
        // Pairs: (0,1) tied in a; (0,2) concordant; (1,2) concordant.
        // n0 = 3, ties_a = 1, ties_b = 0 -> tau = 2 / sqrt(2*3).
        assert!((kendall_tau_b(&a, &b) - 2.0 / (6.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn tau_short_input_is_zero() {
        assert_eq!(kendall_tau_b(&[1.0], &[1.0]), 0.0);
        assert_eq!(kendall_tau_b(&[], &[]), 0.0);
    }

    #[test]
    fn jain_equal_throughput_is_one() {
        assert!((jain_fairness(&[2.5; 8]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        let mut v = vec![0.0; 10];
        v[3] = 42.0;
        assert!((jain_fairness(&v) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn jain_empty_is_one_and_zero_is_zero() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn jain_bounds() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let j = jain_fairness(&v);
        assert!(j > 1.0 / 4.0 && j < 1.0);
    }

    #[test]
    fn geomean_of_equal_changes_is_that_change() {
        assert!((geometric_mean_pct(&[25.0, 25.0]) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_mixes_positive_and_negative() {
        // +100% and -50% cancel: ratios 2.0 * 0.5 = 1.0 -> 0% change.
        assert!(geometric_mean_pct(&[100.0, -50.0]).abs() < 1e-9);
    }

    #[test]
    fn geomean_clamps_minus_hundred() {
        let g = geometric_mean_pct(&[-100.0]);
        assert!(g > -100.0 && g <= -99.9 + 1e-9);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geometric_mean_pct(&[]), 0.0);
    }

    #[test]
    fn pct_change_basics() {
        assert_eq!(pct_change(0.0, 10.0), 0.0);
        assert!((pct_change(10.0, 11.0) - 10.0).abs() < 1e-12);
        assert_eq!(pct_change(10.0, 10.0), 0.0);
    }

    #[test]
    fn pct_basics() {
        assert_eq!(pct(3.0, 0.0), 0.0);
        assert_eq!(pct(3.0, 12.0), 25.0);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[4.0]), 4.0);
    }
}
