//! Running summary statistics (count / mean / min / max / variance).

/// Incremental summary of a stream of `f64` samples using Welford's
/// algorithm, so the variance is numerically stable even for long runs.
///
/// # Examples
///
/// ```
/// use schedtask_metrics::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Population variance (dividing by N); 0.0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation; 0.0 when empty.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Merges another summary into this one (parallel Welford merge).
    ///
    /// # Examples
    ///
    /// ```
    /// use schedtask_metrics::Summary;
    ///
    /// let mut a = Summary::new();
    /// a.record(1.0);
    /// let mut b = Summary::new();
    /// b.record(3.0);
    /// a.merge(&b);
    /// assert_eq!(a.count(), 2);
    /// assert_eq!(a.mean(), 2.0);
    /// ```
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s: Summary = [42.0].into_iter().collect();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn min_max_tracking() {
        let s: Summary = [3.0, -1.0, 7.0, 2.0].into_iter().collect();
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let all: Summary = (0..100).map(|i| i as f64 * 0.37).collect();
        let mut a: Summary = (0..50).map(|i| i as f64 * 0.37).collect();
        let b: Summary = (50..100).map(|i| i as f64 * 0.37).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn extend_appends() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        s.extend([4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 10.0);
    }
}
