//! Property-based tests for the statistics crate.

use proptest::prelude::*;
use schedtask_metrics::{
    cosine_similarity, geometric_mean_pct, jain_fairness, kendall_tau_b, Summary,
};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len..=len)
}

proptest! {
    #[test]
    fn cosine_is_bounded(a in finite_vec(8), b in finite_vec(8)) {
        let c = cosine_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn cosine_is_symmetric(a in finite_vec(6), b in finite_vec(6)) {
        let ab = cosine_similarity(&a, &b);
        let ba = cosine_similarity(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn cosine_self_similarity_is_one(a in finite_vec(5)) {
        prop_assume!(a.iter().any(|&x| x != 0.0));
        prop_assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_positive_scaling_invariant(a in finite_vec(5), k in 0.001f64..1000.0) {
        prop_assume!(a.iter().any(|&x| x.abs() > 1e-6));
        let scaled: Vec<f64> = a.iter().map(|&x| x * k).collect();
        let c1 = cosine_similarity(&a, &scaled);
        prop_assert!((c1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tau_is_bounded_and_symmetric(a in finite_vec(7), b in finite_vec(7)) {
        let t = kendall_tau_b(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&t));
        prop_assert!((t - kendall_tau_b(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn tau_self_is_one_when_untied(a in prop::collection::hash_set(-1000i64..1000, 5)) {
        let v: Vec<f64> = a.into_iter().map(|x| x as f64).collect();
        prop_assert!((kendall_tau_b(&v, &v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tau_negates_under_reversal(a in prop::collection::hash_set(-1000i64..1000, 6)) {
        let v: Vec<f64> = a.into_iter().map(|x| x as f64).collect();
        let neg: Vec<f64> = v.iter().map(|x| -x).collect();
        prop_assert!((kendall_tau_b(&v, &neg) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn jain_is_within_bounds(v in prop::collection::vec(0.0f64..1e6, 1..32)) {
        prop_assume!(v.iter().any(|&x| x > 0.0));
        let j = jain_fairness(&v);
        let n = v.len() as f64;
        prop_assert!(j >= 1.0 / n - 1e-9);
        prop_assert!(j <= 1.0 + 1e-9);
    }

    #[test]
    fn jain_scale_invariant(v in prop::collection::vec(0.1f64..1e3, 2..16), k in 0.01f64..100.0) {
        let scaled: Vec<f64> = v.iter().map(|&x| x * k).collect();
        prop_assert!((jain_fairness(&v) - jain_fairness(&scaled)).abs() < 1e-9);
    }

    #[test]
    fn geomean_between_min_and_max(v in prop::collection::vec(-90.0f64..300.0, 1..16)) {
        let g = geometric_mean_pct(&v);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= lo - 1e-6);
        prop_assert!(g <= hi + 1e-6);
    }

    #[test]
    fn summary_merge_equals_sequential(
        a in prop::collection::vec(-1e3f64..1e3, 0..64),
        b in prop::collection::vec(-1e3f64..1e3, 0..64),
    ) {
        let combined: Summary = a.iter().chain(b.iter()).cloned().collect();
        let mut left: Summary = a.iter().cloned().collect();
        let right: Summary = b.iter().cloned().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), combined.count());
        prop_assert!((left.mean() - combined.mean()).abs() < 1e-6);
        prop_assert!((left.population_variance() - combined.population_variance()).abs() < 1e-4);
    }

    #[test]
    fn summary_mean_within_min_max(v in prop::collection::vec(-1e3f64..1e3, 1..64)) {
        let s: Summary = v.iter().cloned().collect();
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
    }
}
