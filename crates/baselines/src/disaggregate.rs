//! Disaggregated OS Services (Lee): region-based core specialization.
//!
//! System-call handlers are grouped into programmer-defined *regions*
//! keyed by the kernel data they access — all filesystem calls form one
//! region, all networking calls another, and so on (Section 2.1). Each
//! application is its own region. Regions receive cores in proportion to
//! their execution, and a zero-cost micro-scheduler (Table 3) migrates
//! threads to their region's cores. Like FlexSC, the technique ignores
//! the i-cache pollution of interrupts and bottom halves, and it has no
//! idle-core work stealing — its idle fraction is high at 1X and shrinks
//! as the workload scales (Table 4).

use crate::common::CoreQueues;
use schedtask_kernel::{CoreId, EngineCore, SchedError, SchedEvent, Scheduler, SfId, SwitchReason};
use schedtask_workload::{SfCategory, SuperFuncType};
use std::collections::HashMap;

/// The programmer-defined syscall regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Region {
    Filesystem,
    Network,
    Memory,
    OtherOs,
    /// One region per application superFuncType.
    App(u64),
}

/// Maps a Linux syscall id to its data region — the static table "the OS
/// programmer" writes (Section 2.1).
fn syscall_region(id: u64) -> Region {
    match id {
        // read, write, open, close, creat, unlink, stat, fsync, getdents,
        // pread, epoll_wait
        3 | 4 | 5 | 6 | 8 | 10 | 106 | 118 | 141 | 180 | 256 => Region::Filesystem,
        // socket family + the crypto-read used by scp
        359 | 364 | 369 | 371 | 397 => Region::Network,
        // brk, mmap, fork
        45 | 90 | 2 => Region::Memory,
        _ => Region::OtherOs,
    }
}

fn region_of(ty: SuperFuncType) -> Option<Region> {
    match ty.category() {
        SfCategory::SystemCall => Some(syscall_region(ty.subcategory())),
        SfCategory::Application => Some(Region::App(ty.subcategory())),
        // Interrupts and bottom halves are not managed by the technique.
        SfCategory::Interrupt | SfCategory::BottomHalf => None,
    }
}

/// The Disaggregated OS Services scheduler.
#[derive(Debug)]
pub struct DisAggregateOsScheduler {
    queues: CoreQueues,
    /// Region → allocated cores (rebuilt each epoch).
    allocation: HashMap<Region, Vec<usize>>,
    /// Cycles observed per region this epoch.
    region_cycles: HashMap<Region, u64>,
    dispatch_cycles: HashMap<SfId, u64>,
    spread: usize,
}

impl DisAggregateOsScheduler {
    /// Creates the scheduler for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        DisAggregateOsScheduler {
            queues: CoreQueues::new(num_cores),
            allocation: HashMap::new(),
            region_cycles: HashMap::new(),
            dispatch_cycles: HashMap::new(),
            spread: 0,
        }
    }
}

impl Scheduler for DisAggregateOsScheduler {
    fn name(&self) -> &'static str {
        "DisAggregateOS"
    }

    fn enqueue(
        &mut self,
        ctx: &mut EngineCore,
        sf: SfId,
        origin: Option<CoreId>,
    ) -> Result<(), SchedError> {
        let region = region_of(ctx.sf_type(sf));
        let core = match region.and_then(|r| self.allocation.get(&r)) {
            Some(cores) if !cores.is_empty() => self.queues.least_loaded(cores.iter().copied()),
            _ => match origin {
                Some(c) => c.0,
                None => {
                    self.spread = (self.spread + 1) % self.queues.num_cores();
                    self.spread
                }
            },
        };
        self.queues.push(ctx, core, sf);
        Ok(())
    }

    fn pick_next(
        &mut self,
        ctx: &mut EngineCore,
        core: CoreId,
    ) -> Result<Option<SfId>, SchedError> {
        // No idle-core stealing.
        Ok(self.queues.pop(ctx, core.0))
    }

    fn queued_sfs(&self, out: &mut Vec<SfId>) -> bool {
        self.queues.all_queued(out);
        true
    }

    fn on_dispatch(&mut self, ctx: &mut EngineCore, _core: CoreId, sf: SfId) {
        self.dispatch_cycles.insert(sf, ctx.sf_cycles(sf));
    }

    fn on_switch_out(&mut self, ctx: &mut EngineCore, _core: CoreId, sf: SfId, _r: SwitchReason) {
        let start = self.dispatch_cycles.remove(&sf).unwrap_or(0);
        let seg = ctx.sf_cycles(sf).saturating_sub(start);
        let ty = ctx.sf_type(sf);
        self.queues.record_exec(ty, seg);
        if let Some(r) = region_of(ty) {
            *self.region_cycles.entry(r).or_insert(0) += seg;
        }
    }

    fn on_epoch(&mut self, ctx: &mut EngineCore) -> Result<(), SchedError> {
        // Proportional core allocation per region (largest remainder).
        let total: u64 = self.region_cycles.values().sum();
        if total == 0 {
            return Ok(());
        }
        let n = ctx.num_cores();
        let mut regions: Vec<(Region, u64)> = self.region_cycles.drain().collect();
        regions.sort();
        let mut shares: Vec<(Region, usize, f64)> = regions
            .iter()
            .map(|&(r, c)| {
                let quota = c as f64 / total as f64 * n as f64;
                (r, quota.floor() as usize, quota - quota.floor())
            })
            .collect();
        let assigned: usize = shares.iter().map(|s| s.1).sum();
        let mut leftover = n.saturating_sub(assigned);
        let mut order: Vec<usize> = (0..shares.len()).collect();
        order.sort_by(|&a, &b| {
            shares[b]
                .2
                .partial_cmp(&shares[a].2)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &i in &order {
            if leftover == 0 {
                break;
            }
            shares[i].1 += 1;
            leftover -= 1;
        }
        self.allocation.clear();
        let mut next = 0;
        for (r, count, _) in shares {
            if count == 0 {
                continue;
            }
            self.allocation
                .insert(r, (next..next + count).map(|c| c % n).collect());
            next += count;
        }
        Ok(())
    }

    fn route_interrupt(&mut self, ctx: &mut EngineCore, irq: u64) -> CoreId {
        CoreId((irq as usize) % ctx.num_cores())
    }

    fn overhead_instructions(&self, event: SchedEvent) -> u64 {
        match event {
            // Zero-cycle micro-scheduling (Table 3).
            SchedEvent::SfStart | SchedEvent::SfStop => 0,
            SchedEvent::SfPause | SchedEvent::SfWakeup => 0,
            SchedEvent::EpochAlloc => 2_000,
            SchedEvent::FullReschedule => 1_800,
        }
    }
}
