//! Baseline schedulers reproduced from the literature, as configured in
//! the paper's Table 3:
//!
//! | Technique | Source | Key modelled property |
//! |---|---|---|
//! | [`LinuxScheduler`] | stock kernel | per-thread home cores, imbalance-only migration |
//! | [`SelectiveOffloadScheduler`] | Nellans et al. | 2× cores, app/OS split, >100-instr offload, **no** load balancing |
//! | [`FlexScScheduler`] | Soares & Stumm | syscall cores, zero-cost user scheduler, Linux reschedule per syscall for single-threaded apps |
//! | [`DisAggregateOsScheduler`] | Lee | programmer-defined syscall regions, zero-cost micro-scheduling, no stealing |
//! | [`SliccScheduler`] | Atta et al. | per-application footprint collectives, zero-cost tag search, no stealing |
//!
//! All five implement [`schedtask_kernel::Scheduler`] and run on the same
//! engine and workloads as SchedTask, exactly as in the paper's
//! methodology.
//!
//! # Examples
//!
//! ```
//! use schedtask_baselines::LinuxScheduler;
//! use schedtask_kernel::{Engine, EngineConfig, WorkloadSpec};
//! use schedtask_sim::SystemConfig;
//! use schedtask_workload::BenchmarkKind;
//!
//! let cfg = EngineConfig::fast()
//!     .with_system(SystemConfig::table2().with_cores(4))
//!     .with_max_instructions(100_000);
//! let mut engine = Engine::new(
//!     cfg,
//!     &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
//!     Box::new(LinuxScheduler::new(4)),
//! )
//! .expect("valid config");
//! let stats = engine.run().expect("run succeeds");
//! assert!(stats.total_instructions() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod common;
pub mod disaggregate;
pub mod flexsc;
pub mod linux;
pub mod selective_offload;
pub mod slicc;

pub use common::CoreQueues;
pub use disaggregate::DisAggregateOsScheduler;
pub use flexsc::FlexScScheduler;
pub use linux::LinuxScheduler;
pub use selective_offload::SelectiveOffloadScheduler;
pub use slicc::SliccScheduler;
