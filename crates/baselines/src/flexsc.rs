//! FlexSC (Soares & Stumm, OSDI 2010): exception-less system calls.
//!
//! User applications and system-call handlers execute on separate cores;
//! the user-level scheduler is modelled at zero cost (Table 3). The
//! model reproduces FlexSC's two signature behaviours from the paper:
//!
//! * **single-threaded applications** yield to the Linux scheduler on
//!   every system call (Section 2.1), charged as a full reschedule —
//!   this is what collapses Find/Iscp/Oscp performance (Figure 7);
//! * **aggressive load balancing** inside each core group keeps idleness
//!   near zero, but migrating the OS threads between syscall cores costs
//!   d-cache locality (Section 6.1) — which emerges here from the
//!   least-loaded placement of every system call.
//!
//! FlexSC specializes cores for *all* system calls together (no
//! per-handler grouping) and is agnostic to interrupts and bottom halves.

use crate::common::CoreQueues;
use schedtask_kernel::{
    CoreId, EngineCore, SchedError, SchedEvent, Scheduler, SfId, SwitchReason, KERNEL_TID,
};
use schedtask_workload::SfCategory;
use std::collections::HashMap;

/// Instructions of Linux-scheduler code a single-threaded application
/// pays per system call (entering and leaving the kernel scheduler).
const SINGLE_THREADED_RESCHEDULE: u64 = 8_000;

/// The FlexSC scheduler.
#[derive(Debug)]
pub struct FlexScScheduler {
    queues: CoreQueues,
    /// Cores `0..syscall_cores` run system calls; the rest run
    /// application threads. Re-proportioned each epoch.
    syscall_cores: usize,
    dispatch_cycles: HashMap<SfId, u64>,
    /// Cycles observed per group in the current epoch (for adaptation).
    syscall_cycles: u64,
    app_cycles: u64,
}

impl FlexScScheduler {
    /// Creates the scheduler for `num_cores` cores, initially split
    /// half-and-half.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores < 2`.
    pub fn new(num_cores: usize) -> Self {
        assert!(
            num_cores >= 2,
            "FlexSC needs separate app and syscall cores"
        );
        FlexScScheduler {
            queues: CoreQueues::new(num_cores),
            syscall_cores: (num_cores / 2).max(1),
            dispatch_cycles: HashMap::new(),
            syscall_cycles: 0,
            app_cycles: 0,
        }
    }

    fn group_of(&self, ctx: &EngineCore, sf: SfId) -> Vec<usize> {
        let n = self.queues.num_cores();
        match ctx.sf_type(sf).category() {
            SfCategory::SystemCall => (0..self.syscall_cores).collect(),
            SfCategory::Application => (self.syscall_cores..n).collect(),
            // Interrupt-side work is unmanaged: it stays wherever the
            // interrupt controller put it.
            _ => Vec::new(),
        }
    }
}

impl Scheduler for FlexScScheduler {
    fn name(&self) -> &'static str {
        "FlexSC"
    }

    fn enqueue(
        &mut self,
        ctx: &mut EngineCore,
        sf: SfId,
        origin: Option<CoreId>,
    ) -> Result<(), SchedError> {
        let group = self.group_of(ctx, sf);
        let core = if group.is_empty() {
            origin.map(|c| c.0).unwrap_or(0)
        } else if ctx.sf_type(sf).category() == SfCategory::Application {
            // Application threads stay with their user-level scheduler:
            // affine to a home core inside the app group.
            let tid = ctx.sf_tid(sf).0 as usize;
            group[tid % group.len()]
        } else {
            // System calls go to the least-loaded syscall core — the
            // aggressive balancing that migrates OS threads and erodes
            // their d-cache locality (Section 6.1).
            self.queues.least_loaded(group)
        };
        self.queues.push(ctx, core, sf);
        Ok(())
    }

    fn pick_next(
        &mut self,
        ctx: &mut EngineCore,
        core: CoreId,
    ) -> Result<Option<SfId>, SchedError> {
        if let Some(sf) = self.queues.pop(ctx, core.0) {
            return Ok(Some(sf));
        }
        // Steal within the core's own group first, then anywhere —
        // FlexSC's balancing keeps idleness at ~0 % (Figure 8b).
        let n = self.queues.num_cores();
        let own: Vec<usize> = if core.0 < self.syscall_cores {
            (0..self.syscall_cores).collect()
        } else {
            (self.syscall_cores..n).collect()
        };
        Ok(self.queues.steal_any(ctx, core.0, &own).or_else(|| {
            let all: Vec<usize> = (0..n).collect();
            self.queues.steal_any(ctx, core.0, &all)
        }))
    }

    fn queued_sfs(&self, out: &mut Vec<SfId>) -> bool {
        self.queues.all_queued(out);
        true
    }

    fn on_dispatch(&mut self, ctx: &mut EngineCore, _core: CoreId, sf: SfId) {
        self.dispatch_cycles.insert(sf, ctx.sf_cycles(sf));
    }

    fn on_switch_out(&mut self, ctx: &mut EngineCore, _core: CoreId, sf: SfId, _r: SwitchReason) {
        let start = self.dispatch_cycles.remove(&sf).unwrap_or(0);
        let seg = ctx.sf_cycles(sf).saturating_sub(start);
        let ty = ctx.sf_type(sf);
        self.queues.record_exec(ty, seg);
        match ty.category() {
            SfCategory::SystemCall => self.syscall_cycles += seg,
            SfCategory::Application => self.app_cycles += seg,
            _ => {}
        }
    }

    fn on_epoch(&mut self, _ctx: &mut EngineCore) -> Result<(), SchedError> {
        // Re-proportion the core split to the observed work mix.
        let total = self.syscall_cycles + self.app_cycles;
        if total > 0 {
            let n = self.queues.num_cores();
            let share = self.syscall_cycles as f64 / total as f64;
            self.syscall_cores = ((share * n as f64).round() as usize).clamp(1, n - 1);
        }
        self.syscall_cycles = 0;
        self.app_cycles = 0;
        Ok(())
    }

    fn route_interrupt(&mut self, ctx: &mut EngineCore, irq: u64) -> CoreId {
        // Agnostic to interrupts: spread statically over all cores.
        CoreId((irq as usize) % ctx.num_cores())
    }

    fn overhead_for(&self, ctx: &EngineCore, event: SchedEvent, sf: Option<SfId>) -> u64 {
        let base = self.overhead_instructions(event);
        // A single-threaded application cannot overlap its own system
        // call: FlexSC hands execution to the Linux scheduler on every
        // call (Section 2.1 / Section 6.1).
        if event == SchedEvent::SfStart {
            if let Some(sf) = sf {
                if ctx.sf_type(sf).category() == SfCategory::SystemCall
                    && ctx.sf_tid(sf) != KERNEL_TID
                    && ctx.sf_is_single_threaded_app(sf)
                {
                    return base + SINGLE_THREADED_RESCHEDULE;
                }
            }
        }
        base
    }
}
