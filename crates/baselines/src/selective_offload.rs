//! SelectiveOffload (Nellans et al.): static application/OS core split.
//!
//! Table 3's configuration: a 64-core system (twice the baseline's
//! cores); half the cores run application code, the other half run OS
//! code; system calls whose run length exceeds 100 instructions are
//! offloaded to an OS core. The technique has **no load-balancing
//! algorithm** (Section 2.1), which is why its idle fraction sits at
//! ≈50 % in Figure 8b, and it does not specialize OS cores for specific
//! OS tasks, so OS-side i-cache pollution stays high.

use crate::common::CoreQueues;
use schedtask_kernel::{CoreId, EngineCore, SchedError, Scheduler, SfId, SwitchReason, KERNEL_TID};
use schedtask_workload::SfCategory;
use std::collections::HashMap;

/// Offload threshold in instructions (Table 3).
const OFFLOAD_RUN_LENGTH: f64 = 100.0;

/// The SelectiveOffload scheduler. Construct the engine with twice the
/// baseline core count ([`schedtask_kernel::EngineConfig::workload_reference_cores`]
/// kept at the baseline) to reproduce the paper's configuration.
#[derive(Debug)]
pub struct SelectiveOffloadScheduler {
    queues: CoreQueues,
    app_cores: usize,
    /// Thread → dedicated application core (one thread per core at a
    /// time; extra threads share round-robin).
    app_home: HashMap<u64, usize>,
    /// Application core → the single thread that owns it ("executes only
    /// one application thread on each application core", Section 6.1) —
    /// the core waits while its thread is in a system call instead of
    /// multiplexing another thread, which is what pins the technique's
    /// idle fraction near 50 % at every workload scale (Table 4).
    bound: HashMap<usize, u64>,
    /// Thread → static OS core.
    os_home: HashMap<u64, usize>,
    next_app: usize,
    next_os: usize,
    dispatch_cycles: HashMap<SfId, u64>,
}

impl SelectiveOffloadScheduler {
    /// Creates the scheduler for `num_cores` total cores; the first half
    /// are application cores, the rest OS cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores < 2`.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores >= 2, "need at least one app and one OS core");
        SelectiveOffloadScheduler {
            queues: CoreQueues::new(num_cores),
            app_cores: num_cores / 2,
            app_home: HashMap::new(),
            bound: HashMap::new(),
            os_home: HashMap::new(),
            next_app: 0,
            next_os: 0,
            dispatch_cycles: HashMap::new(),
        }
    }

    fn app_home_of(&mut self, tid: u64) -> usize {
        match self.app_home.get(&tid) {
            Some(&c) => c,
            None => {
                let c = self.next_app;
                self.next_app = (self.next_app + 1) % self.app_cores;
                self.app_home.insert(tid, c);
                c
            }
        }
    }

    fn os_home_of(&mut self, tid: u64) -> usize {
        let os_count = self.queues.num_cores() - self.app_cores;
        match self.os_home.get(&tid) {
            Some(&c) => c,
            None => {
                let c = self.app_cores + self.next_os;
                self.next_os = (self.next_os + 1) % os_count;
                self.os_home.insert(tid, c);
                c
            }
        }
    }

    /// First OS core (default interrupt target).
    fn first_os_core(&self) -> usize {
        self.app_cores
    }
}

impl Scheduler for SelectiveOffloadScheduler {
    fn name(&self) -> &'static str {
        "SelectiveOffload"
    }

    fn enqueue(
        &mut self,
        ctx: &mut EngineCore,
        sf: SfId,
        origin: Option<CoreId>,
    ) -> Result<(), SchedError> {
        let ty = ctx.sf_type(sf);
        let tid = ctx.sf_tid(sf);
        let core = match ty.category() {
            SfCategory::Application => self.app_home_of(tid.0),
            SfCategory::SystemCall => {
                // Offload only when the expected run length exceeds the
                // threshold; short calls stay on the application core.
                // OS cores are shared and unspecialized — any handler of
                // any thread lands on the least-loaded one, which is why
                // the paper observes "high i-cache pollution in the OS
                // cores" (Section 2.1).
                if self.queues.exec_estimate(ty) > OFFLOAD_RUN_LENGTH {
                    self.os_home_of(tid.0)
                } else if tid != KERNEL_TID {
                    self.app_home_of(tid.0)
                } else {
                    self.first_os_core()
                }
            }
            SfCategory::Interrupt | SfCategory::BottomHalf => {
                // OS work stays on OS cores; bottom halves follow their
                // interrupt's core when it is an OS core.
                match origin {
                    Some(c) if c.0 >= self.app_cores => c.0,
                    _ => self.first_os_core(),
                }
            }
        };
        self.queues.push(ctx, core, sf);
        Ok(())
    }

    fn pick_next(
        &mut self,
        ctx: &mut EngineCore,
        core: CoreId,
    ) -> Result<Option<SfId>, SchedError> {
        // No work stealing whatsoever (the technique's main drawback).
        if core.0 >= self.app_cores {
            // OS cores multiplex all offloaded OS work.
            return Ok(self.queues.pop(ctx, core.0));
        }
        // Application cores serve exactly one thread. Claim one if the
        // core is unowned, then only ever run that thread's work.
        let owner = match self.bound.get(&core.0) {
            Some(&tid) => tid,
            None => {
                let Some(tid) = self
                    .queues
                    .queue(core.0)
                    .iter()
                    .map(|&sf| ctx.sf_tid(sf))
                    .find(|&tid| tid != KERNEL_TID)
                else {
                    return Ok(None);
                };
                self.bound.insert(core.0, tid.0);
                tid.0
            }
        };
        let Some(pos) = self
            .queues
            .queue(core.0)
            .iter()
            .position(|&sf| ctx.sf_tid(sf).0 == owner)
        else {
            return Ok(None);
        };
        Ok(self.queues.remove_at(ctx, core.0, pos))
    }

    fn queued_sfs(&self, out: &mut Vec<SfId>) -> bool {
        self.queues.all_queued(out);
        true
    }

    fn on_dispatch(&mut self, ctx: &mut EngineCore, _core: CoreId, sf: SfId) {
        self.dispatch_cycles.insert(sf, ctx.sf_cycles(sf));
    }

    fn on_switch_out(&mut self, ctx: &mut EngineCore, _core: CoreId, sf: SfId, _r: SwitchReason) {
        let start = self.dispatch_cycles.remove(&sf).unwrap_or(0);
        let seg = ctx.sf_cycles(sf).saturating_sub(start);
        self.queues.record_exec(ctx.sf_type(sf), seg);
    }

    fn route_interrupt(&mut self, ctx: &mut EngineCore, irq: u64) -> CoreId {
        // Interrupts go to OS cores, spread statically.
        let os_count = ctx.num_cores() - self.app_cores;
        CoreId(self.app_cores + (irq as usize) % os_count)
    }

    fn route_completion(&mut self, ctx: &mut EngineCore, irq: u64, waiter: SfId) -> CoreId {
        // Completions stay on OS cores: steer to the waiting thread's
        // static OS core so the follow-up bottom half lands there too.
        let tid = ctx.sf_tid(waiter);
        if tid == KERNEL_TID {
            return self.route_interrupt(ctx, irq);
        }
        CoreId(self.os_home_of(tid.0))
    }
}
