//! The baseline Linux scheduler model.
//!
//! Section 6.2: "Linux's scheduler tries to allocate the same amount of
//! work to all cores and it migrates a thread from one core to another
//! only if there is a significant imbalance of work across cores." Every
//! SuperFunction of a thread (application code and its system calls)
//! executes on the thread's home core; bottom halves run where their
//! interrupt fired; interrupts are spread across cores statically (as
//! `irqbalance` does).

use crate::common::CoreQueues;
use schedtask_kernel::{CoreId, EngineCore, SchedError, Scheduler, SfId, SwitchReason, KERNEL_TID};
use schedtask_workload::SfCategory;
use std::collections::HashMap;

/// Queue-length ratio above which periodic load balancing moves one
/// thread (the "significant imbalance" trigger).
const IMBALANCE_RATIO: f64 = 2.0;

/// The standard Linux scheduler (the paper's baseline).
#[derive(Debug)]
pub struct LinuxScheduler {
    queues: CoreQueues,
    /// Thread → home core.
    home: HashMap<u64, usize>,
    next_home: usize,
    dispatch_cycles: HashMap<SfId, u64>,
}

impl LinuxScheduler {
    /// Creates the baseline scheduler for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        LinuxScheduler {
            queues: CoreQueues::new(num_cores),
            home: HashMap::new(),
            next_home: 0,
            dispatch_cycles: HashMap::new(),
        }
    }

    fn home_of(&mut self, tid: u64) -> usize {
        let n = self.queues.num_cores();
        match self.home.get(&tid) {
            Some(&h) => h,
            None => {
                let h = self.next_home;
                self.next_home = (self.next_home + 1) % n;
                self.home.insert(tid, h);
                h
            }
        }
    }
}

impl Scheduler for LinuxScheduler {
    fn name(&self) -> &'static str {
        "Linux"
    }

    fn enqueue(
        &mut self,
        ctx: &mut EngineCore,
        sf: SfId,
        origin: Option<CoreId>,
    ) -> Result<(), SchedError> {
        let tid = ctx.sf_tid(sf);
        let category = ctx.sf_type(sf).category();
        let core = if category == SfCategory::BottomHalf || tid == KERNEL_TID {
            // Softirqs run where the interrupt fired.
            origin.map(|c| c.0).unwrap_or(0)
        } else {
            self.home_of(tid.0)
        };
        self.queues.push(ctx, core, sf);
        Ok(())
    }

    fn pick_next(
        &mut self,
        ctx: &mut EngineCore,
        core: CoreId,
    ) -> Result<Option<SfId>, SchedError> {
        if let Some(sf) = self.queues.pop(ctx, core.0) {
            return Ok(Some(sf));
        }
        // CFS idle balancing: pull from the busiest run queue, re-homing
        // the thread (this is the "significant imbalance" migration — an
        // idle core vs. a backlogged one).
        let candidates: Vec<usize> = (0..self.queues.num_cores()).collect();
        let Some(stolen) = self.queues.steal_any(ctx, core.0, &candidates) else {
            return Ok(None);
        };
        let tid = ctx.sf_tid(stolen);
        if tid != KERNEL_TID {
            self.home.insert(tid.0, core.0);
        }
        Ok(Some(stolen))
    }

    fn queued_sfs(&self, out: &mut Vec<SfId>) -> bool {
        self.queues.all_queued(out);
        true
    }

    fn on_dispatch(&mut self, ctx: &mut EngineCore, _core: CoreId, sf: SfId) {
        self.dispatch_cycles.insert(sf, ctx.sf_cycles(sf));
    }

    fn on_switch_out(&mut self, ctx: &mut EngineCore, _core: CoreId, sf: SfId, _r: SwitchReason) {
        let start = self.dispatch_cycles.remove(&sf).unwrap_or(0);
        let seg = ctx.sf_cycles(sf).saturating_sub(start);
        self.queues.record_exec(ctx.sf_type(sf), seg);
    }

    fn on_epoch(&mut self, ctx: &mut EngineCore) -> Result<(), SchedError> {
        // Periodic load balancing: move one queued thread-context
        // SuperFunction from the most- to the least-loaded core if the
        // imbalance is significant.
        let n = self.queues.num_cores();
        let Some(busiest) = self.queues.most_loaded_nonempty(0..n) else {
            return Ok(());
        };
        let idlest = self.queues.least_loaded(0..n);
        if busiest == idlest {
            return Ok(());
        }
        let heavy = self.queues.waiting(busiest);
        let light = self.queues.waiting(idlest).max(1.0);
        if heavy / light >= IMBALANCE_RATIO {
            if let Some(pos) = self.queues.queue(busiest).iter().position(|&sf| {
                ctx.sf_tid(sf) != KERNEL_TID && ctx.sf_type(sf).category() != SfCategory::BottomHalf
            }) {
                let sf = self.queues.remove_at(ctx, busiest, pos).ok_or_else(|| {
                    SchedError::CorruptQueue {
                        core: CoreId(busiest),
                        detail: format!("balance position {pos} out of range"),
                    }
                })?;
                let tid = ctx.sf_tid(sf);
                self.home.insert(tid.0, idlest);
                self.queues.push(ctx, idlest, sf);
            }
        }
        Ok(())
    }

    fn route_interrupt(&mut self, ctx: &mut EngineCore, irq: u64) -> CoreId {
        // Static spread, as irqbalance configures.
        CoreId((irq as usize) % ctx.num_cores())
    }
}
