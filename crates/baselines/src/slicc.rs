//! SLICC (Atta et al., MICRO 2012): self-assembly of instruction-cache
//! collectives.
//!
//! SLICC spreads a workload's instruction footprint across cores and
//! migrates threads toward the core that likely holds the i-cache lines
//! they will fetch next; the remote tag search is hardware and modelled
//! at zero cost (Table 3). Two properties from the paper are modelled
//! faithfully:
//!
//! * footprint segments acquire a home core on first sight, so threads
//!   executing the same code converge on the same core (low i-cache
//!   misses) — but **per application**: SLICC's migration unit tracks
//!   threads of one application and cannot group common OS execution
//!   across *different* applications (Section 2.1), which is why it
//!   collapses on multi-programmed workloads (appendix Figure 1);
//! * **no idle-core stealing**: a core with an empty queue waits
//!   (Section 1), producing SLICC's ≈5 % residual idleness at 2X and its
//!   heavy idleness at 1X (Table 4).

use crate::common::CoreQueues;
use schedtask_kernel::{
    CoreId, EngineCore, SchedError, SchedEvent, Scheduler, SfId, SwitchReason, KERNEL_TID,
};
use std::collections::HashMap;

/// Queue pressure (estimated waiting cycles) above which a footprint
/// segment spills onto an additional core. Real SLICC spreads a hot
/// footprint over several cores' i-caches; threads then pipeline through
/// them instead of serializing on one.
const SPILL_THRESHOLD_CYCLES: f64 = 4_000.0;

/// The SLICC scheduler.
#[derive(Debug)]
pub struct SliccScheduler {
    queues: CoreQueues,
    /// (application group, footprint entry page) → cores holding this
    /// segment's lines. The entry page of the upcoming fetch stream is
    /// what the hardware's tag search effectively keys on; segments
    /// spill onto more cores as their queues back up.
    segment_cores: HashMap<(u64, u64), Vec<usize>>,
    dispatch_cycles: HashMap<SfId, u64>,
}

impl SliccScheduler {
    /// Creates the scheduler for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        SliccScheduler {
            queues: CoreQueues::new(num_cores),
            segment_cores: HashMap::new(),
            dispatch_cycles: HashMap::new(),
        }
    }

    /// The application group a SuperFunction belongs to: SLICC assembles
    /// cache collectives per application, so the key includes the
    /// thread's application identity.
    fn app_group(ctx: &EngineCore, sf: SfId) -> u64 {
        let tid = ctx.sf_tid(sf);
        if tid == KERNEL_TID {
            return u64::MAX;
        }
        // Threads of the same benchmark instance share an executable;
        // use the application superFuncType as the group key.
        match ctx.sf_parent(sf) {
            Some(parent) => ctx.sf_type(parent).raw(),
            None => ctx.sf_type(sf).raw(),
        }
    }
}

impl Scheduler for SliccScheduler {
    fn name(&self) -> &'static str {
        "SLICC"
    }

    fn enqueue(
        &mut self,
        ctx: &mut EngineCore,
        sf: SfId,
        origin: Option<CoreId>,
    ) -> Result<(), SchedError> {
        let group = Self::app_group(ctx, sf);
        // Fingerprint of the upcoming fetch footprint: the tag-search
        // hardware effectively identifies which collective holds these
        // lines. A fingerprint (rather than just the entry page)
        // distinguishes handlers that share a common prefix, e.g. the
        // VFS entry code of different filesystem calls.
        let fingerprint = ctx
            .sf_code_pages(sf)
            .iter()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, p| {
                (h ^ p).wrapping_mul(0x1000_0000_01b3)
            });
        let key = (group, fingerprint);
        let n = self.queues.num_cores();
        let cores = match self.segment_cores.get(&key) {
            Some(cores) => cores.clone(),
            None => {
                // First time this footprint segment is seen for this
                // application: claim the least-loaded core, spreading the
                // footprint across the collective.
                let c = self.queues.least_loaded(0..n);
                self.segment_cores.insert(key, vec![c]);
                vec![c]
            }
        };
        // Hysteresis: if the thread's current core already holds this
        // segment's lines, stay — SLICC only migrates when the needed
        // lines are remote.
        if let Some(last) = ctx.thread_last_core(ctx.sf_tid(sf)) {
            if cores.contains(&last.0) && self.queues.waiting(last.0) < SPILL_THRESHOLD_CYCLES {
                self.queues.push(ctx, last.0, sf);
                return Ok(());
            }
        }
        let best = self.queues.least_loaded(cores.iter().copied());
        let core = if self.queues.waiting(best) > SPILL_THRESHOLD_CYCLES && cores.len() < n {
            // Hot segment: replicate its lines onto one more core and
            // send this thread there (the migration hardware follows the
            // copy).
            let extra = self.queues.least_loaded(0..n);
            let entry = self.segment_cores.entry(key).or_default();
            if !entry.contains(&extra) {
                entry.push(extra);
            }
            extra
        } else {
            best
        };
        let _ = origin;
        self.queues.push(ctx, core, sf);
        Ok(())
    }

    fn pick_next(
        &mut self,
        ctx: &mut EngineCore,
        core: CoreId,
    ) -> Result<Option<SfId>, SchedError> {
        // SLICC does not allow an idle core to steal pending threads
        // waiting at other cores (Section 1).
        Ok(self.queues.pop(ctx, core.0))
    }

    fn queued_sfs(&self, out: &mut Vec<SfId>) -> bool {
        self.queues.all_queued(out);
        true
    }

    fn on_dispatch(&mut self, ctx: &mut EngineCore, _core: CoreId, sf: SfId) {
        self.dispatch_cycles.insert(sf, ctx.sf_cycles(sf));
    }

    fn on_switch_out(&mut self, ctx: &mut EngineCore, _core: CoreId, sf: SfId, _r: SwitchReason) {
        let start = self.dispatch_cycles.remove(&sf).unwrap_or(0);
        let seg = ctx.sf_cycles(sf).saturating_sub(start);
        self.queues.record_exec(ctx.sf_type(sf), seg);
    }

    fn route_interrupt(&mut self, ctx: &mut EngineCore, irq: u64) -> CoreId {
        // Agnostic to OS events: interrupts spread statically.
        CoreId((irq as usize) % ctx.num_cores())
    }

    fn overhead_instructions(&self, event: SchedEvent) -> u64 {
        match event {
            // Hardware migration: zero-cost tag search, tiny software
            // involvement.
            SchedEvent::SfStart | SchedEvent::SfStop => 10,
            SchedEvent::SfPause | SchedEvent::SfWakeup => 10,
            SchedEvent::EpochAlloc => 0,
            SchedEvent::FullReschedule => 1_800,
        }
    }
}
