//! Shared queue machinery for the baseline schedulers.

use schedtask_kernel::obs::{ObsEvent, StealLevel};
use schedtask_kernel::{EngineCore, SfId};
use schedtask_workload::{SfCategory, SuperFuncType};
use std::collections::{HashMap, VecDeque};

/// Default per-segment execution estimate before a type has history
/// (cycles).
const DEFAULT_EXEC_ESTIMATE: f64 = 3_000.0;

/// Per-core runnable queues with waiting-time estimates, shared by every
/// baseline technique. Bottom halves (softirqs) jump to the queue front,
/// as in the Linux kernel.
#[derive(Debug, Clone)]
pub struct CoreQueues {
    queues: Vec<VecDeque<SfId>>,
    waiting: Vec<f64>,
    mean_exec: HashMap<SuperFuncType, (u64, f64)>,
}

impl CoreQueues {
    /// Creates empty queues for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        CoreQueues {
            queues: vec![VecDeque::new(); num_cores],
            waiting: vec![0.0; num_cores],
            mean_exec: HashMap::new(),
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.queues.len()
    }

    /// Estimated per-segment execution time of `ty`.
    pub fn exec_estimate(&self, ty: SuperFuncType) -> f64 {
        match self.mean_exec.get(&ty) {
            Some(&(n, total)) if n > 0 => total / n as f64,
            _ => DEFAULT_EXEC_ESTIMATE,
        }
    }

    /// Records an executed segment so future estimates improve.
    pub fn record_exec(&mut self, ty: SuperFuncType, cycles: u64) {
        let e = self.mean_exec.entry(ty).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += cycles as f64;
    }

    /// Enqueues `sf` on `core` (bottom halves at the front).
    pub fn push(&mut self, ctx: &EngineCore, core: usize, sf: SfId) {
        let ty = ctx.sf_type(sf);
        let at = ctx.now();
        ctx.emit_obs(|| ObsEvent::Enqueued {
            at,
            sf: sf.0,
            core: core as u32,
        });
        self.waiting[core] += self.exec_estimate(ty);
        if ty.category() == SfCategory::BottomHalf {
            self.queues[core].push_front(sf);
        } else {
            self.queues[core].push_back(sf);
        }
    }

    /// Pops the head of `core`'s queue.
    pub fn pop(&mut self, ctx: &EngineCore, core: usize) -> Option<SfId> {
        let sf = self.queues[core].pop_front()?;
        let ty = ctx.sf_type(sf);
        self.waiting[core] = (self.waiting[core] - self.exec_estimate(ty)).max(0.0);
        Some(sf)
    }

    /// Removes the element at `pos` in `core`'s queue; `None` if `pos`
    /// is out of range (callers compute positions over the same queue in
    /// the same borrow, so `None` indicates a caller bug).
    pub fn remove_at(&mut self, ctx: &EngineCore, core: usize, pos: usize) -> Option<SfId> {
        let sf = self.queues[core].remove(pos)?;
        let ty = ctx.sf_type(sf);
        self.waiting[core] = (self.waiting[core] - self.exec_estimate(ty)).max(0.0);
        Some(sf)
    }

    /// Estimated waiting time of `core`'s queue in cycles.
    pub fn waiting(&self, core: usize) -> f64 {
        self.waiting[core]
    }

    /// Queue length of `core`.
    pub fn len(&self, core: usize) -> usize {
        self.queues[core].len()
    }

    /// Read access to `core`'s queue.
    pub fn queue(&self, core: usize) -> &VecDeque<SfId> {
        &self.queues[core]
    }

    /// The core in `candidates` with the least waiting time
    /// (deterministic tie-break on index).
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn least_loaded(&self, candidates: impl IntoIterator<Item = usize>) -> usize {
        candidates
            .into_iter()
            .min_by(|&a, &b| {
                self.waiting[a]
                    .partial_cmp(&self.waiting[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .expect("candidate set must not be empty")
    }

    /// The non-empty core in `candidates` with the most waiting time.
    pub fn most_loaded_nonempty(
        &self,
        candidates: impl IntoIterator<Item = usize>,
    ) -> Option<usize> {
        candidates
            .into_iter()
            .filter(|&c| !self.queues[c].is_empty())
            .max_by(|&a, &b| {
                self.waiting[a]
                    .partial_cmp(&self.waiting[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            })
    }

    /// Steals the head of the most-loaded non-empty queue among
    /// `candidates`, excluding `me`.
    pub fn steal_any(&mut self, ctx: &EngineCore, me: usize, candidates: &[usize]) -> Option<SfId> {
        let victim = self.most_loaded_nonempty(candidates.iter().copied().filter(|&c| c != me))?;
        let sf = self.pop(ctx, victim)?;
        let at = ctx.now();
        ctx.emit_obs(|| ObsEvent::Stolen {
            at,
            sf: sf.0,
            thief: me as u32,
            victim: victim as u32,
            level: StealLevel::Any,
        });
        Some(sf)
    }

    /// Appends every queued SuperFunction to `out` (the
    /// [`schedtask_kernel::Scheduler::queued_sfs`] sanitizer hook).
    pub fn all_queued(&self, out: &mut Vec<SfId>) {
        for q in &self.queues {
            out.extend(q.iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // CoreQueues is exercised with a real EngineCore in the scheduler
    // integration tests; here we test the parts that need no context.

    #[test]
    fn least_loaded_prefers_lowest_index_on_ties() {
        let q = CoreQueues::new(4);
        assert_eq!(q.least_loaded(0..4), 0);
        assert_eq!(q.least_loaded([2, 3]), 2);
    }

    #[test]
    fn estimates_default_then_learn() {
        use schedtask_workload::{SfCategory, SuperFuncType};
        let mut q = CoreQueues::new(1);
        let ty = SuperFuncType::new(SfCategory::SystemCall, 3);
        assert_eq!(q.exec_estimate(ty), 3_000.0);
        q.record_exec(ty, 100);
        q.record_exec(ty, 300);
        assert_eq!(q.exec_estimate(ty), 200.0);
    }

    #[test]
    fn most_loaded_nonempty_ignores_empty() {
        let q = CoreQueues::new(3);
        assert_eq!(q.most_loaded_nonempty(0..3), None);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn least_loaded_empty_candidates_panics() {
        CoreQueues::new(2).least_loaded(std::iter::empty());
    }
}
