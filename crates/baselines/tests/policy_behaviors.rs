//! Behavioural signatures of each baseline, matching the claims the
//! paper makes about them in Sections 2.1 and 6.1.

use schedtask_baselines::{
    DisAggregateOsScheduler, FlexScScheduler, LinuxScheduler, SelectiveOffloadScheduler,
    SliccScheduler,
};
use schedtask_kernel::{Engine, EngineConfig, Scheduler, SimStats, WorkloadSpec};
use schedtask_sim::SystemConfig;
use schedtask_workload::BenchmarkKind;

const CORES: usize = 8;

fn run(sched: Box<dyn Scheduler>, kind: BenchmarkKind, scale: f64, instr: u64) -> SimStats {
    let mut cfg = EngineConfig::fast()
        .with_system(SystemConfig::table2().with_cores(CORES))
        .with_max_instructions(instr);
    cfg.epoch_cycles = 50_000;
    let mut e = Engine::new(cfg, &WorkloadSpec::single(kind, scale), sched).expect("engine builds");
    e.run().expect("run succeeds").clone()
}

#[test]
fn selective_offload_has_the_best_application_icache() {
    // Section 6.1: "the i-cache hit rate of the application code is the
    // highest for the SelectiveOffload technique" — one thread per app
    // core means zero application-side pollution.
    let kind = BenchmarkKind::MailSrvIo;
    let mut cfg = EngineConfig::fast()
        .with_system(SystemConfig::table2().with_cores(CORES * 2))
        .with_max_instructions(1_000_000);
    cfg.workload_reference_cores = CORES;
    cfg.epoch_cycles = 50_000;
    let mut e = Engine::new(
        cfg,
        &WorkloadSpec::single(kind, 2.0),
        Box::new(SelectiveOffloadScheduler::new(CORES * 2)),
    )
    .expect("engine builds");
    let so = e.run().expect("run succeeds").clone();
    let linux = run(Box::new(LinuxScheduler::new(CORES)), kind, 2.0, 1_000_000);
    let slicc = run(Box::new(SliccScheduler::new(CORES)), kind, 2.0, 1_000_000);
    let so_app = so.mem.icache_app.hit_rate();
    assert!(
        so_app >= linux.mem.icache_app.hit_rate(),
        "SelectiveOffload app i-hit {so_app:.3} vs linux {:.3}",
        linux.mem.icache_app.hit_rate()
    );
    assert!(
        so_app >= slicc.mem.icache_app.hit_rate(),
        "SelectiveOffload app i-hit {so_app:.3} vs SLICC {:.3}",
        slicc.mem.icache_app.hit_rate()
    );
}

#[test]
fn disaggregate_improves_os_icache_over_linux() {
    // Section 2.1/6.1: region-based grouping raises the OS-side i-cache
    // hit rate (its strength; idleness is its weakness).
    let kind = BenchmarkKind::MailSrvIo;
    let linux = run(Box::new(LinuxScheduler::new(CORES)), kind, 2.0, 1_000_000);
    let dis = run(
        Box::new(DisAggregateOsScheduler::new(CORES)),
        kind,
        2.0,
        1_000_000,
    );
    assert!(
        dis.mem.icache_os.hit_rate() > linux.mem.icache_os.hit_rate(),
        "DisAggregateOS OS i-hit {:.3} vs linux {:.3}",
        dis.mem.icache_os.hit_rate(),
        linux.mem.icache_os.hit_rate()
    );
}

#[test]
fn flexsc_penalizes_only_single_threaded_apps() {
    // The per-syscall Linux reschedule is charged for Find (single
    // threaded) but not for Apache (multi-threaded): FlexSC's scheduler
    // instruction share must be much higher on Find.
    let find = run(
        Box::new(FlexScScheduler::new(CORES)),
        BenchmarkKind::Find,
        1.0,
        600_000,
    );
    let apache = run(
        Box::new(FlexScScheduler::new(CORES)),
        BenchmarkKind::Apache,
        1.0,
        600_000,
    );
    let share = |s: &SimStats| s.instructions.scheduler as f64 / s.total_instructions() as f64;
    assert!(
        share(&find) > 2.0 * share(&apache),
        "FlexSC sched share: Find {:.3} vs Apache {:.3}",
        share(&find),
        share(&apache)
    );
}

#[test]
fn linux_keeps_threads_home_under_balanced_load() {
    // Section 6.2: with uniformly stressed threads, the baseline barely
    // migrates.
    let stats = run(
        Box::new(LinuxScheduler::new(CORES)),
        BenchmarkKind::Oltp,
        2.0,
        800_000,
    );
    assert!(
        stats.migrations_per_billion_instructions() < 20_000.0,
        "baseline migrations/Binstr = {:.0}",
        stats.migrations_per_billion_instructions()
    );
}

#[test]
fn slicc_converges_same_code_to_same_cores() {
    // SLICC's collective assembly must raise the OS i-cache hit rate
    // over the Linux baseline on a syscall-heavy workload.
    let kind = BenchmarkKind::MailSrvIo;
    let linux = run(Box::new(LinuxScheduler::new(CORES)), kind, 2.0, 1_000_000);
    let slicc = run(Box::new(SliccScheduler::new(CORES)), kind, 2.0, 1_000_000);
    assert!(
        slicc.mem.icache_os.hit_rate() > linux.mem.icache_os.hit_rate(),
        "SLICC OS i-hit {:.3} vs linux {:.3}",
        slicc.mem.icache_os.hit_rate(),
        linux.mem.icache_os.hit_rate()
    );
}

#[test]
fn slicc_loses_its_edge_on_multiprogrammed_mixes() {
    // The appendix's headline: per-application collectives cannot share
    // OS code across applications, so SLICC's OS i-cache advantage over
    // Linux shrinks (or inverts) when two applications run together.
    use schedtask_workload::MultiProgrammedWorkload;
    let bag = MultiProgrammedWorkload::by_name("MPW-A").expect("exists");
    let w = WorkloadSpec::from(&bag);
    let mut cfg = EngineConfig::fast()
        .with_system(SystemConfig::table2().with_cores(CORES))
        .with_max_instructions(1_000_000);
    cfg.epoch_cycles = 50_000;
    let linux = {
        let mut e = Engine::new(cfg.clone(), &w, Box::new(LinuxScheduler::new(CORES)))
            .expect("engine builds");
        e.run().expect("run succeeds").clone()
    };
    let slicc = {
        let mut e =
            Engine::new(cfg, &w, Box::new(SliccScheduler::new(CORES))).expect("engine builds");
        e.run().expect("run succeeds").clone()
    };
    let single_edge = {
        let l = run(
            Box::new(LinuxScheduler::new(CORES)),
            BenchmarkKind::Dss,
            1.0,
            1_000_000,
        );
        let s = run(
            Box::new(SliccScheduler::new(CORES)),
            BenchmarkKind::Dss,
            1.0,
            1_000_000,
        );
        s.mem.icache_os.hit_rate() - l.mem.icache_os.hit_rate()
    };
    let mpw_edge = slicc.mem.icache_os.hit_rate() - linux.mem.icache_os.hit_rate();
    assert!(
        mpw_edge < single_edge + 0.02,
        "SLICC OS i-hit edge should not grow under multiprogramming: single {single_edge:.3} vs MPW {mpw_edge:.3}"
    );
}
