//! End-to-end behavioural tests of the baseline schedulers.

use schedtask_baselines::{
    DisAggregateOsScheduler, FlexScScheduler, LinuxScheduler, SelectiveOffloadScheduler,
    SliccScheduler,
};
use schedtask_kernel::{Engine, EngineConfig, Scheduler, SimStats, WorkloadSpec};
use schedtask_sim::SystemConfig;
use schedtask_workload::BenchmarkKind;

const CORES: usize = 8;

fn cfg(max_instr: u64) -> EngineConfig {
    EngineConfig::fast()
        .with_system(SystemConfig::table2().with_cores(CORES))
        .with_max_instructions(max_instr)
}

fn run_with(sched: Box<dyn Scheduler>, kind: BenchmarkKind, scale: f64) -> SimStats {
    let mut engine = Engine::new(cfg(800_000), &WorkloadSpec::single(kind, scale), sched)
        .expect("engine builds");
    engine.run().expect("run succeeds").clone()
}

#[test]
fn all_baselines_run_every_benchmark_kind() {
    for kind in [BenchmarkKind::Find, BenchmarkKind::Apache] {
        let runs: Vec<(&str, SimStats)> = vec![
            (
                "Linux",
                run_with(Box::new(LinuxScheduler::new(CORES)), kind, 1.0),
            ),
            (
                "SelectiveOffload",
                run_with(Box::new(SelectiveOffloadScheduler::new(CORES)), kind, 1.0),
            ),
            (
                "FlexSC",
                run_with(Box::new(FlexScScheduler::new(CORES)), kind, 1.0),
            ),
            (
                "DisAggregateOS",
                run_with(Box::new(DisAggregateOsScheduler::new(CORES)), kind, 1.0),
            ),
            (
                "SLICC",
                run_with(Box::new(SliccScheduler::new(CORES)), kind, 1.0),
            ),
        ];
        for (name, stats) in runs {
            assert!(
                stats.total_instructions() > 100_000,
                "{name} on {kind:?} barely ran"
            );
            assert!(stats.final_cycle > 0, "{name} on {kind:?}");
        }
    }
}

#[test]
fn linux_baseline_has_few_migrations() {
    // Section 6.2: the baseline migrates threads only on significant
    // imbalance, so its migration rate is minimal compared to the
    // specialization techniques.
    let linux = run_with(
        Box::new(LinuxScheduler::new(CORES)),
        BenchmarkKind::Apache,
        2.0,
    );
    let flexsc = run_with(
        Box::new(FlexScScheduler::new(CORES)),
        BenchmarkKind::Apache,
        2.0,
    );
    assert!(
        linux.migrations_per_billion_instructions() < flexsc.migrations_per_billion_instructions(),
        "linux {} vs flexsc {}",
        linux.migrations_per_billion_instructions(),
        flexsc.migrations_per_billion_instructions()
    );
}

#[test]
fn selective_offload_idles_heavily() {
    // Canonical Table 3 configuration: twice the cores, workload sized
    // for the baseline count. With no load balancing, app cores idle
    // while threads sit in syscalls and vice versa (Figure 8b: ≈50 %).
    let mut config = EngineConfig::fast()
        .with_system(SystemConfig::table2().with_cores(CORES * 2))
        .with_max_instructions(800_000);
    config.workload_reference_cores = CORES;
    let mut engine = Engine::new(
        config,
        &WorkloadSpec::single(BenchmarkKind::MailSrvIo, 1.0),
        Box::new(SelectiveOffloadScheduler::new(CORES * 2)),
    )
    .expect("engine builds");
    let stats = engine.run().expect("run succeeds").clone();
    assert!(
        stats.mean_idle_fraction() > 0.3,
        "idle = {}",
        stats.mean_idle_fraction()
    );
}

#[test]
fn flexsc_keeps_idleness_near_zero() {
    let stats = run_with(
        Box::new(FlexScScheduler::new(CORES)),
        BenchmarkKind::Apache,
        2.0,
    );
    assert!(
        stats.mean_idle_fraction() < 0.05,
        "idle = {}",
        stats.mean_idle_fraction()
    );
}

#[test]
fn flexsc_hurts_single_threaded_apps() {
    // The per-syscall Linux reschedule makes single-threaded benchmarks
    // complete fewer operations per second than under Linux.
    let clock = cfg(0).system.clock_hz;
    let linux = run_with(
        Box::new(LinuxScheduler::new(CORES)),
        BenchmarkKind::Find,
        2.0,
    );
    let flexsc = run_with(
        Box::new(FlexScScheduler::new(CORES)),
        BenchmarkKind::Find,
        2.0,
    );
    assert!(
        flexsc.app_performance(clock) < linux.app_performance(clock),
        "flexsc {} >= linux {}",
        flexsc.app_performance(clock),
        linux.app_performance(clock)
    );
}

#[test]
fn slicc_does_not_steal() {
    // At 1X, SLICC idles visibly more than FlexSC (Table 4's 1X rows:
    // SLICC 41 %, FlexSC 0 %).
    let slicc = run_with(
        Box::new(SliccScheduler::new(CORES)),
        BenchmarkKind::Find,
        1.0,
    );
    let flexsc = run_with(
        Box::new(FlexScScheduler::new(CORES)),
        BenchmarkKind::Find,
        1.0,
    );
    assert!(
        slicc.mean_idle_fraction() > flexsc.mean_idle_fraction(),
        "slicc {} vs flexsc {}",
        slicc.mean_idle_fraction(),
        flexsc.mean_idle_fraction()
    );
}

#[test]
fn disaggregate_runs_all_categories() {
    let stats = run_with(
        Box::new(DisAggregateOsScheduler::new(CORES)),
        BenchmarkKind::FileSrv,
        2.0,
    );
    assert!(stats.instructions.application > 0);
    assert!(stats.instructions.syscall > 0);
    assert!(stats.instructions.bottom_half > 0);
}

#[test]
fn specialization_beats_fifo_on_icache() {
    // Grouping same-type work must raise the OS i-cache hit rate
    // relative to the global FIFO free-for-all.
    use schedtask_kernel::GlobalFifoScheduler;
    let fifo = run_with(
        Box::new(GlobalFifoScheduler::new()),
        BenchmarkKind::MailSrvIo,
        2.0,
    );
    let slicc = run_with(
        Box::new(SliccScheduler::new(CORES)),
        BenchmarkKind::MailSrvIo,
        2.0,
    );
    let fifo_os = fifo.mem.icache_os.hit_rate();
    let slicc_os = slicc.mem.icache_os.hit_rate();
    assert!(
        slicc_os > fifo_os,
        "SLICC OS i-hit {slicc_os:.3} should beat FIFO {fifo_os:.3}"
    );
}

#[test]
fn baselines_are_deterministic() {
    let a = run_with(
        Box::new(LinuxScheduler::new(CORES)),
        BenchmarkKind::Oltp,
        1.0,
    );
    let b = run_with(
        Box::new(LinuxScheduler::new(CORES)),
        BenchmarkKind::Oltp,
        1.0,
    );
    assert_eq!(a.final_cycle, b.final_cycle);
    assert_eq!(a.total_instructions(), b.total_instructions());
}
