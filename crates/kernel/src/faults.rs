//! Deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] describes *what* to corrupt and *how often*; the
//! engine owns a [`FaultInjector`] built from the plan, whose private
//! RNG stream is seeded only by [`FaultPlan::seed`] and therefore
//! independent of the workload RNG. Given the same engine configuration
//! and the same plan, every injected fault lands at the same point of
//! the simulation — reruns are byte-identical, which is what lets the
//! property tests assert "SchedTask degrades gracefully" instead of
//! "SchedTask got lucky".
//!
//! Four fault classes are modelled, mirroring the hardware failure
//! modes a SchedTask deployment would see:
//!
//! * **heatmap bit-flips** — a random bit of the 512-bit Page-heatmap
//!   Bloom filter toggles during a quantum (SRAM soft error). The
//!   overlap table sees slightly wrong similarity numbers and must
//!   still converge.
//! * **dropped / spurious interrupts** — a device-completion or
//!   external interrupt is lost (and re-raised later by the modelled
//!   retry timer, so wakeups are delayed, never lost) or an extra
//!   spurious interrupt fires.
//! * **delayed completions** — a SuperFunction that was about to
//!   complete is charged extra instructions first (a slow device path).
//! * **stalled cores** — a core freezes for a fixed number of cycles
//!   (SMM excursion / frequency dip) while its queues stay intact.

use crate::error::ConfigError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How often and how hard to inject faults. All `*_rate` fields are
/// per-opportunity probabilities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Probability (per executed quantum) of toggling one random bit of
    /// the executing core's Page heatmap.
    pub heatmap_bitflip_rate: f64,
    /// Probability (per device-completion or external interrupt) that
    /// the interrupt is dropped and re-raised `irq_retry_cycles` later.
    pub drop_irq_rate: f64,
    /// Re-delivery delay, in cycles, for a dropped interrupt.
    pub irq_retry_cycles: u64,
    /// Probability (per processed event) of raising an extra spurious
    /// external interrupt with no waiting SuperFunction.
    pub spurious_irq_rate: f64,
    /// Probability (per OS SuperFunction completion) that completion is
    /// delayed by `delay_completion_instructions` extra instructions.
    pub delay_completion_rate: f64,
    /// Extra instructions charged to a delayed completion.
    pub delay_completion_instructions: u64,
    /// Probability (per core scheduling step) that the core stalls for
    /// `stall_cycles` cycles doing nothing.
    pub stall_core_rate: f64,
    /// Length of an injected core stall, in cycles.
    pub stall_cycles: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a determinism control).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            heatmap_bitflip_rate: 0.0,
            drop_irq_rate: 0.0,
            irq_retry_cycles: 20_000,
            spurious_irq_rate: 0.0,
            delay_completion_rate: 0.0,
            delay_completion_instructions: 2_000,
            stall_core_rate: 0.0,
            stall_cycles: 50_000,
        }
    }

    /// A light plan: rare faults of every class.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            heatmap_bitflip_rate: 0.001,
            drop_irq_rate: 0.005,
            spurious_irq_rate: 0.002,
            delay_completion_rate: 0.005,
            stall_core_rate: 0.0005,
            ..FaultPlan::none(seed)
        }
    }

    /// A heavy plan: every class fires often enough that a fragile
    /// scheduler would deadlock or corrupt its tables.
    pub fn heavy(seed: u64) -> Self {
        FaultPlan {
            heatmap_bitflip_rate: 0.02,
            drop_irq_rate: 0.05,
            spurious_irq_rate: 0.02,
            delay_completion_rate: 0.05,
            stall_core_rate: 0.005,
            ..FaultPlan::none(seed)
        }
    }

    /// True if any fault class has a non-zero rate.
    pub fn is_active(&self) -> bool {
        self.heatmap_bitflip_rate > 0.0
            || self.drop_irq_rate > 0.0
            || self.spurious_irq_rate > 0.0
            || self.delay_completion_rate > 0.0
            || self.stall_core_rate > 0.0
    }

    /// Checks every rate is a probability.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let rates = [
            ("heatmap_bitflip_rate", self.heatmap_bitflip_rate),
            ("drop_irq_rate", self.drop_irq_rate),
            ("spurious_irq_rate", self.spurious_irq_rate),
            ("delay_completion_rate", self.delay_completion_rate),
            ("stall_core_rate", self.stall_core_rate),
        ];
        for (field, value) in rates {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::BadFaultRate { field, value });
            }
        }
        Ok(())
    }

    /// Parses the `repro --faults` spec: either a preset name
    /// (`none`, `light`, `heavy`) or a comma-separated
    /// `key=value` list, e.g.
    /// `drop_irq_rate=0.05,stall_core_rate=0.001,seed=7`.
    /// Unknown keys are rejected.
    pub fn parse(spec: &str, default_seed: u64) -> Result<Self, String> {
        // Presets, optionally with an explicit seed: `light`, `heavy@42`.
        let (preset, preset_seed) = match spec.split_once('@') {
            Some((name, seed)) => {
                let seed = seed
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| format!("bad fault plan seed {seed:?}: {e}"))?;
                (name.trim(), seed)
            }
            None => (spec, default_seed),
        };
        match preset {
            "none" => return Ok(FaultPlan::none(preset_seed)),
            "light" => return Ok(FaultPlan::light(preset_seed)),
            "heavy" => return Ok(FaultPlan::heavy(preset_seed)),
            _ if spec.contains('@') => {
                return Err(format!(
                    "unknown fault plan preset {preset:?}, want none|light|heavy"
                ))
            }
            _ => {}
        }
        let mut plan = FaultPlan::none(default_seed);
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad fault spec component {part:?}, want key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let parse_f64 = || {
                value
                    .parse::<f64>()
                    .map_err(|e| format!("bad value for {key}: {e}"))
            };
            let parse_u64 = || {
                value
                    .parse::<u64>()
                    .map_err(|e| format!("bad value for {key}: {e}"))
            };
            match key {
                "seed" => plan.seed = parse_u64()?,
                "heatmap_bitflip_rate" => plan.heatmap_bitflip_rate = parse_f64()?,
                "drop_irq_rate" => plan.drop_irq_rate = parse_f64()?,
                "irq_retry_cycles" => plan.irq_retry_cycles = parse_u64()?,
                "spurious_irq_rate" => plan.spurious_irq_rate = parse_f64()?,
                "delay_completion_rate" => plan.delay_completion_rate = parse_f64()?,
                "delay_completion_instructions" => {
                    plan.delay_completion_instructions = parse_u64()?
                }
                "stall_core_rate" => plan.stall_core_rate = parse_f64()?,
                "stall_cycles" => plan.stall_cycles = parse_u64()?,
                other => return Err(format!("unknown fault plan key {other:?}")),
            }
        }
        plan.validate().map_err(|e| e.to_string())?;
        Ok(plan)
    }
}

/// How many faults of each class were actually injected during a run.
/// Reported in [`crate::SimStats::faults`] so experiments can correlate
/// degradation with injected load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Heatmap Bloom-filter bits toggled.
    pub heatmap_bit_flips: u64,
    /// Interrupts dropped (and re-raised later).
    pub dropped_irqs: u64,
    /// Spurious interrupts raised.
    pub spurious_irqs: u64,
    /// SuperFunction completions delayed.
    pub delayed_completions: u64,
    /// Core stalls injected.
    pub core_stalls: u64,
}

impl FaultCounts {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.heatmap_bit_flips
            + self.dropped_irqs
            + self.spurious_irqs
            + self.delayed_completions
            + self.core_stalls
    }
}

/// The engine-side injector: a plan plus a private deterministic RNG
/// stream and running counts.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
    counts: FaultCounts,
}

impl FaultInjector {
    /// Builds an injector from a validated plan.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SmallRng::seed_from_u64(plan.seed ^ 0xFA_17_FA_17_FA_17_FA_17);
        FaultInjector {
            plan,
            rng,
            counts: FaultCounts::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counts so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    // Each decision consumes exactly one draw from the private stream
    // regardless of outcome, so the stream stays aligned with the
    // simulation's fault *opportunities* and reruns are reproducible.
    fn roll(&mut self, rate: f64) -> bool {
        let draw: f64 = self.rng.gen();
        rate > 0.0 && draw < rate
    }

    /// Should this quantum flip a heatmap bit? Returns the bit index to
    /// toggle (mod the filter width) if so.
    pub fn heatmap_bit_flip(&mut self) -> Option<u32> {
        if self.roll(self.plan.heatmap_bitflip_rate) {
            self.counts.heatmap_bit_flips += 1;
            Some(self.rng.gen_range(0..u32::MAX))
        } else {
            None
        }
    }

    /// Should this interrupt be dropped? Returns the re-delivery delay
    /// if so.
    pub fn drop_irq(&mut self) -> Option<u64> {
        if self.roll(self.plan.drop_irq_rate) {
            self.counts.dropped_irqs += 1;
            Some(self.plan.irq_retry_cycles.max(1))
        } else {
            None
        }
    }

    /// Should a spurious interrupt be raised after this event?
    pub fn spurious_irq(&mut self) -> bool {
        if self.roll(self.plan.spurious_irq_rate) {
            self.counts.spurious_irqs += 1;
            true
        } else {
            false
        }
    }

    /// Uniformly picks the core a spurious interrupt lands on. Drawn
    /// from the injector's private stream so reruns pick the same core.
    pub fn spurious_target(&mut self, num_cores: usize) -> usize {
        self.rng.gen_range(0..num_cores.max(1))
    }

    /// Should this completion be delayed? Returns the extra
    /// instructions to charge if so.
    pub fn delay_completion(&mut self) -> Option<u64> {
        if self.roll(self.plan.delay_completion_rate) {
            self.counts.delayed_completions += 1;
            Some(self.plan.delay_completion_instructions.max(1))
        } else {
            None
        }
    }

    /// Should this core step stall? Returns the stall length if so.
    pub fn stall_core(&mut self) -> Option<u64> {
        if self.roll(self.plan.stall_core_rate) {
            self.counts.core_stalls += 1;
            Some(self.plan.stall_cycles.max(1))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inactive_and_valid() {
        let plan = FaultPlan::none(1);
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn presets_are_valid_and_active() {
        for plan in [FaultPlan::light(3), FaultPlan::heavy(3)] {
            assert!(plan.is_active());
            assert!(plan.validate().is_ok());
        }
    }

    #[test]
    fn bad_rate_rejected() {
        let plan = FaultPlan {
            drop_irq_rate: 1.5,
            ..FaultPlan::none(0)
        };
        assert!(matches!(
            plan.validate(),
            Err(ConfigError::BadFaultRate {
                field: "drop_irq_rate",
                ..
            })
        ));
        let plan = FaultPlan {
            stall_core_rate: f64::NAN,
            ..FaultPlan::none(0)
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan::heavy(99);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for _ in 0..10_000 {
            assert_eq!(a.heatmap_bit_flip(), b.heatmap_bit_flip());
            assert_eq!(a.drop_irq(), b.drop_irq());
            assert_eq!(a.spurious_irq(), b.spurious_irq());
            assert_eq!(a.delay_completion(), b.delay_completion());
            assert_eq!(a.stall_core(), b.stall_core());
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0, "heavy plan injected nothing");
    }

    #[test]
    fn zero_rate_classes_never_fire() {
        let mut inj = FaultInjector::new(FaultPlan::none(5));
        for _ in 0..10_000 {
            assert!(inj.heatmap_bit_flip().is_none());
            assert!(inj.drop_irq().is_none());
            assert!(!inj.spurious_irq());
            assert!(inj.delay_completion().is_none());
            assert!(inj.stall_core().is_none());
        }
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn parse_presets_and_keys() {
        assert_eq!(FaultPlan::parse("light", 7).unwrap(), FaultPlan::light(7));
        let plan = FaultPlan::parse("drop_irq_rate=0.25,seed=11,stall_cycles=123", 7).unwrap();
        assert_eq!(plan.seed, 11);
        assert_eq!(plan.drop_irq_rate, 0.25);
        assert_eq!(plan.stall_cycles, 123);
        assert!(FaultPlan::parse("bogus_key=1", 7).is_err());
        assert!(FaultPlan::parse("drop_irq_rate=2.0", 7).is_err());
        assert!(FaultPlan::parse("drop_irq_rate", 7).is_err());
    }
}
