//! Simulation statistics: everything the paper's figures report.

use schedtask_metrics::jain_fairness;
use schedtask_sim::MemStats;
use schedtask_workload::SfCategory;

/// Instruction counts by SuperFunction category plus scheduler code
/// (which Figure 4 excludes from the breakup but which still retires
/// instructions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryInstructions {
    /// Application SuperFunctions.
    pub application: u64,
    /// System-call handlers.
    pub syscall: u64,
    /// Interrupt (top-half) handlers.
    pub interrupt: u64,
    /// Bottom-half handlers.
    pub bottom_half: u64,
    /// Scheduler routines (TMigrate/TAlloc/Linux scheduler).
    pub scheduler: u64,
}

impl CategoryInstructions {
    /// Adds `n` instructions to the category's counter.
    pub fn add(&mut self, category: SfCategory, n: u64) {
        match category {
            SfCategory::Application => self.application += n,
            SfCategory::SystemCall => self.syscall += n,
            SfCategory::Interrupt => self.interrupt += n,
            SfCategory::BottomHalf => self.bottom_half += n,
        }
    }

    /// Total including scheduler instructions.
    pub fn total(&self) -> u64 {
        self.application + self.syscall + self.interrupt + self.bottom_half + self.scheduler
    }

    /// Total excluding scheduler instructions (the Figure 4 denominator).
    pub fn total_workload(&self) -> u64 {
        self.application + self.syscall + self.interrupt + self.bottom_half
    }

    /// The Figure 4 breakup: fractions (%) of
    /// application/syscall/interrupt/bottom-half instructions, scheduler
    /// excluded.
    pub fn breakup_percent(&self) -> [f64; 4] {
        let t = self.total_workload();
        if t == 0 {
            return [0.0; 4];
        }
        let t = t as f64;
        [
            self.application as f64 / t * 100.0,
            self.syscall as f64 / t * 100.0,
            self.interrupt as f64 / t * 100.0,
            self.bottom_half as f64 / t * 100.0,
        ]
    }
}

/// Per-core execution-time accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreTime {
    /// Cycles spent executing SuperFunctions or scheduler code.
    pub busy_cycles: u64,
    /// Cycles spent with nothing to run.
    pub idle_cycles: u64,
}

impl CoreTime {
    /// Fraction of time idle, in [0, 1].
    pub fn idle_fraction(&self) -> f64 {
        let total = self.busy_cycles + self.idle_cycles;
        if total == 0 {
            0.0
        } else {
            self.idle_cycles as f64 / total as f64
        }
    }
}

/// Everything measured during one simulation run.
///
/// `PartialEq` (not `Eq`: `epoch_breakups` holds floats) exists so
/// determinism tests can assert that parallel and serial sweeps produce
/// bit-identical per-cell statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Instructions by category.
    pub instructions: CategoryInstructions,
    /// Per-core busy/idle accounting.
    pub core_time: Vec<CoreTime>,
    /// Inter-core thread migrations (Figure 10).
    pub thread_migrations: u64,
    /// Per-thread retired instructions (Jain fairness, Section 6.1).
    pub per_thread_instructions: Vec<u64>,
    /// Application operations completed, per benchmark instance.
    pub ops_per_benchmark: Vec<u64>,
    /// Interrupt count and cumulative delivery latency in cycles.
    pub interrupts_delivered: u64,
    /// Sum of (service start − raise) over all interrupts.
    pub interrupt_latency_cycles: u64,
    /// Per-epoch category breakups (%) when epoch collection is enabled
    /// (Section 4.4).
    pub epoch_breakups: Vec<[f64; 4]>,
    /// Branches executed (only counted when explicit branch modelling is
    /// enabled).
    pub branches: u64,
    /// Branch mispredictions (explicit branch modelling only).
    pub branch_mispredictions: u64,
    /// Final cycle count (simulated time at stop).
    pub final_cycle: u64,
    /// Snapshot of the memory-system statistics.
    pub mem: MemStats,
    /// Faults actually injected over the whole run (zero unless the run
    /// had a [`crate::faults::FaultPlan`]). Filled at finalization, so it
    /// covers warm-up too.
    pub faults: crate::faults::FaultCounts,
    /// Invariant-sanitizer passes executed (zero unless
    /// [`crate::EngineConfig::sanitize`] was set). A successful run with
    /// a positive count certifies every pass found zero violations.
    pub sanitizer_checks: u64,
}

impl SimStats {
    /// Creates zeroed stats for `num_cores` cores and
    /// `num_benchmarks` benchmark instances.
    pub fn new(num_cores: usize, num_benchmarks: usize) -> Self {
        SimStats {
            core_time: vec![CoreTime::default(); num_cores],
            ops_per_benchmark: vec![0; num_benchmarks],
            ..SimStats::default()
        }
    }

    /// Total retired instructions (including scheduler code).
    pub fn total_instructions(&self) -> u64 {
        self.instructions.total()
    }

    /// Instruction throughput in instructions per cycle across the whole
    /// machine.
    pub fn instruction_throughput(&self) -> f64 {
        if self.final_cycle == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / self.final_cycle as f64
        }
    }

    /// Mean idle-time fraction across cores, in [0, 1] (Figure 8b).
    pub fn mean_idle_fraction(&self) -> f64 {
        if self.core_time.is_empty() {
            return 0.0;
        }
        self.core_time
            .iter()
            .map(CoreTime::idle_fraction)
            .sum::<f64>()
            / self.core_time.len() as f64
    }

    /// Application performance: operations per simulated second for the
    /// given clock (Section 6.1's "application-specific events ... in one
    /// second of system execution").
    pub fn app_performance(&self, clock_hz: u64) -> f64 {
        let ops: u64 = self.ops_per_benchmark.iter().sum();
        if self.final_cycle == 0 {
            0.0
        } else {
            ops as f64 * clock_hz as f64 / self.final_cycle as f64
        }
    }

    /// Jain fairness index over per-thread instruction throughput.
    pub fn fairness(&self) -> f64 {
        let tputs: Vec<f64> = self
            .per_thread_instructions
            .iter()
            .map(|&n| n as f64)
            .collect();
        jain_fairness(&tputs)
    }

    /// Mean interrupt delivery latency in cycles.
    pub fn mean_interrupt_latency(&self) -> f64 {
        if self.interrupts_delivered == 0 {
            0.0
        } else {
            self.interrupt_latency_cycles as f64 / self.interrupts_delivered as f64
        }
    }

    /// Branch-prediction accuracy in [0, 1]; 0.0 when branch modelling
    /// is disabled.
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            (self.branches - self.branch_mispredictions) as f64 / self.branches as f64
        }
    }

    /// Thread migrations normalized per billion instructions (Figure 10's
    /// y-axis).
    pub fn migrations_per_billion_instructions(&self) -> f64 {
        let instr = self.total_instructions();
        if instr == 0 {
            0.0
        } else {
            self.thread_migrations as f64 * 1e9 / instr as f64
        }
    }
}

impl SimStats {
    /// Serializes every field as one canonical JSON object with a fixed
    /// field order and no whitespace, so two equal `SimStats` values
    /// always produce byte-identical text. This is the wire format of
    /// the `schedtaskd` serve layer and the payload its result cache
    /// replays; floats use Rust's shortest-round-trip `Display`, which
    /// is deterministic for a deterministic simulation.
    ///
    /// Hand-rolled because the offline build environment has no serde.
    pub fn to_canonical_json(&self) -> String {
        fn join_u64(values: &[u64]) -> String {
            let strs: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            strs.join(",")
        }
        let mut out = String::with_capacity(1024);
        let i = &self.instructions;
        out.push_str(&format!(
            "{{\"instructions\":{{\"application\":{},\"syscall\":{},\"interrupt\":{},\
             \"bottom_half\":{},\"scheduler\":{}}}",
            i.application, i.syscall, i.interrupt, i.bottom_half, i.scheduler
        ));
        out.push_str(",\"core_time\":[");
        for (idx, ct) in self.core_time.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"busy\":{},\"idle\":{}}}",
                ct.busy_cycles, ct.idle_cycles
            ));
        }
        out.push(']');
        out.push_str(&format!(
            ",\"thread_migrations\":{},\"per_thread_instructions\":[{}],\
             \"ops_per_benchmark\":[{}],\"interrupts_delivered\":{},\
             \"interrupt_latency_cycles\":{}",
            self.thread_migrations,
            join_u64(&self.per_thread_instructions),
            join_u64(&self.ops_per_benchmark),
            self.interrupts_delivered,
            self.interrupt_latency_cycles
        ));
        out.push_str(",\"epoch_breakups\":[");
        for (idx, b) in self.epoch_breakups.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{},{},{}]", b[0], b[1], b[2], b[3]));
        }
        out.push(']');
        out.push_str(&format!(
            ",\"branches\":{},\"branch_mispredictions\":{},\"final_cycle\":{}",
            self.branches, self.branch_mispredictions, self.final_cycle
        ));
        let m = &self.mem;
        out.push_str(",\"mem\":{");
        let caches = [
            ("icache_app", &m.icache_app),
            ("icache_os", &m.icache_os),
            ("dcache_app", &m.dcache_app),
            ("dcache_os", &m.dcache_os),
            ("l2", &m.l2),
            ("llc", &m.llc),
            ("itlb", &m.itlb),
            ("dtlb", &m.dtlb),
        ];
        for (idx, (name, hm)) in caches.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"hits\":{},\"misses\":{}}}",
                hm.hits, hm.misses
            ));
        }
        out.push_str(&format!(
            ",\"coherence_invalidations\":{},\"coherence_transfers\":{},\
             \"prefetch_fills\":{},\"trace_cache_covered\":{}}}",
            m.coherence_invalidations,
            m.coherence_transfers,
            m.prefetch_fills,
            m.trace_cache_covered
        ));
        let f = &self.faults;
        out.push_str(&format!(
            ",\"faults\":{{\"heatmap_bit_flips\":{},\"dropped_irqs\":{},\
             \"spurious_irqs\":{},\"delayed_completions\":{},\"core_stalls\":{}}}",
            f.heatmap_bit_flips,
            f.dropped_irqs,
            f.spurious_irqs,
            f.delayed_completions,
            f.core_stalls
        ));
        out.push_str(&format!(
            ",\"sanitizer_checks\":{}}}",
            self.sanitizer_checks
        ));
        out
    }

    /// A multi-line human-readable summary (used by examples and
    /// debugging sessions; the experiment tables are the precise
    /// artefacts).
    pub fn summary(&self, clock_hz: u64) -> String {
        let b = self.instructions.breakup_percent();
        format!(
            "instructions: {} (app {:.1}% / sys {:.1}% / irq {:.1}% / bh {:.1}%)\n\
             cycles: {}  machine IPC: {:.3}  idle: {:.1}%\n\
             i-cache: app {:.1}% / OS {:.1}%   d-cache: app {:.1}% / OS {:.1}%\n\
             ops/s: {:.0}  migrations/Binstr: {:.0}  fairness: {:.3}",
            self.total_instructions(),
            b[0],
            b[1],
            b[2],
            b[3],
            self.final_cycle,
            self.instruction_throughput(),
            self.mean_idle_fraction() * 100.0,
            self.mem.icache_app.hit_rate() * 100.0,
            self.mem.icache_os.hit_rate() * 100.0,
            self.mem.dcache_app.hit_rate() * 100.0,
            self.mem.dcache_os.hit_rate() * 100.0,
            self.app_performance(clock_hz),
            self.migrations_per_billion_instructions(),
            self.fairness(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_key_numbers() {
        let mut s = SimStats::new(2, 1);
        s.instructions.add(SfCategory::Application, 800);
        s.instructions.add(SfCategory::SystemCall, 200);
        s.final_cycle = 1_000;
        s.ops_per_benchmark[0] = 4;
        let text = s.summary(1_000);
        assert!(text.contains("instructions: 1000"));
        assert!(text.contains("app 80.0%"));
        assert!(text.contains("ops/s: 4"));
    }

    #[test]
    fn breakup_sums_to_hundred() {
        let mut c = CategoryInstructions::default();
        c.add(SfCategory::Application, 35);
        c.add(SfCategory::SystemCall, 55);
        c.add(SfCategory::Interrupt, 4);
        c.add(SfCategory::BottomHalf, 6);
        c.scheduler = 10; // excluded
        let b = c.breakup_percent();
        assert!((b.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert_eq!(b[0], 35.0);
        assert_eq!(c.total(), 110);
        assert_eq!(c.total_workload(), 100);
    }

    #[test]
    fn empty_breakup_is_zero() {
        assert_eq!(CategoryInstructions::default().breakup_percent(), [0.0; 4]);
    }

    #[test]
    fn idle_fraction() {
        let ct = CoreTime {
            busy_cycles: 75,
            idle_cycles: 25,
        };
        assert!((ct.idle_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(CoreTime::default().idle_fraction(), 0.0);
    }

    #[test]
    fn throughput_and_perf() {
        let mut s = SimStats::new(2, 1);
        s.instructions.add(SfCategory::Application, 1_000);
        s.final_cycle = 2_000;
        s.ops_per_benchmark[0] = 10;
        assert!((s.instruction_throughput() - 0.5).abs() < 1e-12);
        // 10 ops in 2000 cycles at 2 kHz = 10 ops per second.
        assert!((s.app_performance(2_000) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_of_equal_threads_is_one() {
        let mut s = SimStats::new(1, 1);
        s.per_thread_instructions = vec![500, 500, 500];
        assert!((s.fairness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interrupt_latency_mean() {
        let mut s = SimStats::new(1, 1);
        s.interrupts_delivered = 4;
        s.interrupt_latency_cycles = 400;
        assert_eq!(s.mean_interrupt_latency(), 100.0);
    }

    #[test]
    fn canonical_json_is_stable_and_covers_fields() {
        let mut s = SimStats::new(2, 1);
        s.instructions.add(SfCategory::Application, 800);
        s.instructions.add(SfCategory::SystemCall, 200);
        s.instructions.scheduler = 50;
        s.core_time[0].busy_cycles = 900;
        s.core_time[0].idle_cycles = 100;
        s.thread_migrations = 3;
        s.per_thread_instructions = vec![500, 500];
        s.ops_per_benchmark[0] = 4;
        s.epoch_breakups.push([80.0, 20.0, 0.0, 0.0]);
        s.final_cycle = 1_000;
        s.mem.icache_app.hits = 700;
        s.mem.icache_app.misses = 30;
        s.faults.core_stalls = 2;
        s.sanitizer_checks = 9;
        let json = s.to_canonical_json();
        // Equal stats serialize byte-identically.
        assert_eq!(json, s.clone().to_canonical_json());
        // Spot-check structure and coverage.
        assert!(json.starts_with("{\"instructions\":{\"application\":800"));
        assert!(
            json.contains("\"core_time\":[{\"busy\":900,\"idle\":100},{\"busy\":0,\"idle\":0}]")
        );
        assert!(json.contains("\"per_thread_instructions\":[500,500]"));
        assert!(json.contains("\"epoch_breakups\":[[80,20,0,0]]"));
        assert!(json.contains("\"icache_app\":{\"hits\":700,\"misses\":30}"));
        assert!(json.contains("\"core_stalls\":2"));
        assert!(json.ends_with("\"sanitizer_checks\":9}"));
        // Any field change changes the bytes.
        let mut t = s.clone();
        t.branches = 1;
        assert_ne!(json, t.to_canonical_json());
    }

    #[test]
    fn migrations_normalized() {
        let mut s = SimStats::new(1, 1);
        s.thread_migrations = 5;
        s.instructions.add(SfCategory::Application, 1_000_000);
        assert!((s.migrations_per_billion_instructions() - 5_000.0).abs() < 1e-9);
    }
}
