//! Engine configuration.

use schedtask_sim::SystemConfig;

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// The simulated machine.
    pub system: SystemConfig,
    /// Cores used to size the workload's thread counts. Usually equal to
    /// `system.num_cores`; SelectiveOffload doubles the cores (Table 3)
    /// while keeping the 32-core workload, so its experiments set this
    /// to the baseline core count.
    pub workload_reference_cores: usize,
    /// Cycles per scheduling epoch (the paper uses 3 ms; scaled-down
    /// experiment runs shrink this proportionally).
    pub epoch_cycles: u64,
    /// Maximum instructions executed between engine decision points.
    pub quantum_instructions: u64,
    /// Disk service latency in cycles.
    pub disk_latency_cycles: u64,
    /// Network service latency in cycles.
    pub network_latency_cycles: u64,
    /// Timer sleep duration in cycles.
    pub timer_sleep_cycles: u64,
    /// Per-core timer-tick period in cycles (Linux's 1 ms tick).
    pub timer_tick_cycles: u64,
    /// Fixed cycles charged on the destination core when a thread
    /// migrates (context transfer).
    pub migration_cost_cycles: u64,
    /// Stop after this many post-warm-up workload instructions.
    pub max_instructions: u64,
    /// Instructions executed before statistics are reset (cache warm-up).
    pub warmup_instructions: u64,
    /// Hard stop on simulated cycles (safety net).
    pub max_cycles: u64,
    /// Master seed for all deterministic randomness.
    pub seed: u64,
    /// Width of the hardware Page-heatmap registers in bits.
    pub heatmap_bits: u32,
    /// Record per-epoch instruction breakups (Section 4.4).
    pub collect_epoch_breakups: bool,
    /// Additionally collect exact per-core page sets (Figure 11's ideal
    /// ranking baseline).
    pub collect_exact_pages: bool,
    /// Retain up to this many SuperFunction lifecycle events in the
    /// engine's [`crate::trace::TraceLog`] (0 disables tracing).
    pub trace_capacity: usize,
}

impl EngineConfig {
    /// Paper-faithful configuration: Table 2 machine, 3 ms epochs at
    /// 2 GHz.
    pub fn paper() -> Self {
        let system = SystemConfig::table2();
        EngineConfig {
            workload_reference_cores: system.num_cores,
            epoch_cycles: 6_000_000, // 3 ms at 2 GHz
            quantum_instructions: 1_000,
            disk_latency_cycles: 60_000,    // ≈30 µs SSD-class storage
            network_latency_cycles: 30_000, // ≈15 µs LAN round trip
            timer_sleep_cycles: 100_000,
            timer_tick_cycles: 2_000_000, // 1 ms tick
            migration_cost_cycles: 100,
            max_instructions: 50_000_000,
            warmup_instructions: 2_000_000,
            max_cycles: u64::MAX,
            seed: 0x5EED_5EED,
            heatmap_bits: 512,
            collect_epoch_breakups: false,
            collect_exact_pages: false,
            trace_capacity: 0,
            system,
        }
    }

    /// Scaled-down configuration for experiments and tests: the same
    /// machine but short epochs and proportionally shorter device
    /// latencies, so multi-epoch behaviour emerges within a few million
    /// instructions.
    pub fn fast() -> Self {
        let mut cfg = Self::paper();
        cfg.epoch_cycles = 100_000;
        cfg.disk_latency_cycles = 20_000;
        cfg.network_latency_cycles = 10_000;
        cfg.timer_sleep_cycles = 30_000;
        cfg.timer_tick_cycles = 400_000;
        cfg.max_instructions = 4_000_000;
        cfg.warmup_instructions = 400_000;
        cfg
    }

    /// Replaces the machine configuration, keeping the workload reference
    /// core count in sync.
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.workload_reference_cores = system.num_cores;
        self.system = system;
        self
    }

    /// Overrides the instruction budget.
    pub fn with_max_instructions(mut self, n: u64) -> Self {
        self.max_instructions = n;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_epoch_is_3ms_at_2ghz() {
        let cfg = EngineConfig::paper();
        assert_eq!(cfg.epoch_cycles, 6_000_000);
        assert_eq!(cfg.heatmap_bits, 512);
    }

    #[test]
    fn with_system_syncs_reference_cores() {
        let cfg = EngineConfig::fast().with_system(SystemConfig::table2().with_cores(8));
        assert_eq!(cfg.workload_reference_cores, 8);
        assert_eq!(cfg.system.num_cores, 8);
    }

    #[test]
    fn builders_override() {
        let cfg = EngineConfig::fast().with_max_instructions(123).with_seed(9);
        assert_eq!(cfg.max_instructions, 123);
        assert_eq!(cfg.seed, 9);
    }
}
