//! Engine configuration.

use crate::error::ConfigError;
use crate::faults::FaultPlan;
use schedtask_sim::SystemConfig;
use schedtask_workload::DeviceKind;

/// How the engine advances its component set through simulated time.
///
/// Both modes drive the same `Component` set and commit every state
/// change through the identical serial micro-step, so they produce
/// bit-identical results; see DESIGN.md §13 for the determinism
/// argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrivingMode {
    /// Pure discrete-event: pop the globally earliest action (component
    /// wakeup or queued event) under the `(time, seq)` total order.
    DiscreteEvent,
    /// Cycle-box epoch-barrier mode: time is cut into fixed windows; at
    /// each barrier every component *plans* its window concurrently
    /// (pure precomputation sharded across `scoped_pool` threads), then
    /// the window is committed serially with the same micro-step as
    /// [`DrivingMode::DiscreteEvent`].
    CycleBox {
        /// Window length in cycles between barriers.
        window_cycles: u64,
        /// Worker threads the planning phase is sharded across
        /// (`<= 1` plans serially; commit is always serial).
        shards: usize,
    },
}

/// One DMA/NIC-style device model injecting spontaneous interrupt
/// traffic, independent of any SuperFunction blocking on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceModelConfig {
    /// Which device's interrupt vector the model raises.
    pub kind: DeviceKind,
    /// Mean inter-arrival period in cycles; actual arrivals jitter
    /// uniformly in `[period/2, period + period/2]` from the device's
    /// private RNG stream.
    pub period_cycles: u64,
}

/// Watchdog budgets: the engine's defence against livelock. Each field
/// set to zero disables that budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Fail with [`crate::EngineError::Livelock`] if this many simulated
    /// cycles pass without a single workload instruction retiring.
    pub max_stall_cycles: u64,
    /// Fail with [`crate::EngineError::EventBudgetExceeded`] after this
    /// many processed events plus core steps.
    pub max_events: u64,
    /// Fail with [`crate::EngineError::WallClockExceeded`] after this
    /// many wall-clock milliseconds.
    pub max_wall_ms: u64,
}

impl Default for WatchdogConfig {
    /// Only the stall budget is armed by default: generous enough that
    /// no legitimate run (device latencies are well under a million
    /// cycles) can trip it, tight enough to catch a scheduler that
    /// stops dispatching work.
    fn default() -> Self {
        WatchdogConfig {
            max_stall_cycles: 500_000_000,
            max_events: 0,
            max_wall_ms: 0,
        }
    }
}

impl WatchdogConfig {
    /// Disables every budget.
    pub fn disabled() -> Self {
        WatchdogConfig {
            max_stall_cycles: 0,
            max_events: 0,
            max_wall_ms: 0,
        }
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// The simulated machine.
    pub system: SystemConfig,
    /// Cores used to size the workload's thread counts. Usually equal to
    /// `system.num_cores`; SelectiveOffload doubles the cores (Table 3)
    /// while keeping the 32-core workload, so its experiments set this
    /// to the baseline core count.
    pub workload_reference_cores: usize,
    /// Cycles per scheduling epoch (the paper uses 3 ms; scaled-down
    /// experiment runs shrink this proportionally).
    pub epoch_cycles: u64,
    /// Maximum instructions executed between engine decision points.
    pub quantum_instructions: u64,
    /// Disk service latency in cycles.
    pub disk_latency_cycles: u64,
    /// Network service latency in cycles.
    pub network_latency_cycles: u64,
    /// Timer sleep duration in cycles.
    pub timer_sleep_cycles: u64,
    /// Per-core timer-tick period in cycles (Linux's 1 ms tick).
    pub timer_tick_cycles: u64,
    /// Fixed cycles charged on the destination core when a thread
    /// migrates (context transfer).
    pub migration_cost_cycles: u64,
    /// Stop after this many post-warm-up workload instructions.
    pub max_instructions: u64,
    /// Instructions executed before statistics are reset (cache warm-up).
    pub warmup_instructions: u64,
    /// Hard stop on simulated cycles (safety net).
    pub max_cycles: u64,
    /// Master seed for all deterministic randomness.
    pub seed: u64,
    /// Width of the hardware Page-heatmap registers in bits.
    pub heatmap_bits: u32,
    /// Record per-epoch instruction breakups (Section 4.4).
    pub collect_epoch_breakups: bool,
    /// Additionally collect exact per-core page sets (Figure 11's ideal
    /// ranking baseline).
    pub collect_exact_pages: bool,
    /// Retain up to this many SuperFunction lifecycle events in the
    /// engine's [`crate::trace::TraceLog`] (0 disables tracing).
    pub trace_capacity: usize,
    /// Optional deterministic fault-injection plan (see
    /// [`crate::faults`]). `None` injects nothing.
    pub faults: Option<FaultPlan>,
    /// Run the invariant sanitizer after every engine step (placement,
    /// monotone time, instruction conservation, no lost wakeups). Costs
    /// roughly 2-4x wall clock; intended for tests and debugging, off by
    /// default.
    pub sanitize: bool,
    /// Livelock watchdog budgets.
    pub watchdog: WatchdogConfig,
    /// How the component set is advanced through time.
    pub driving: DrivingMode,
    /// DMA/NIC-style device models injecting interrupt traffic.
    pub devices: Vec<DeviceModelConfig>,
    /// Per-core clock dividers: core `c` runs at `1/dividers[c]` of the
    /// reference clock, so every cycle it charges (instruction execution
    /// and scheduler overhead) is multiplied by its divider. Empty means
    /// all cores run at the reference clock (divider 1).
    pub core_clock_dividers: Vec<u64>,
}

impl EngineConfig {
    /// Paper-faithful configuration: Table 2 machine, 3 ms epochs at
    /// 2 GHz.
    pub fn paper() -> Self {
        let system = SystemConfig::table2();
        EngineConfig {
            workload_reference_cores: system.num_cores,
            epoch_cycles: 6_000_000, // 3 ms at 2 GHz
            quantum_instructions: 1_000,
            disk_latency_cycles: 60_000,    // ≈30 µs SSD-class storage
            network_latency_cycles: 30_000, // ≈15 µs LAN round trip
            timer_sleep_cycles: 100_000,
            timer_tick_cycles: 2_000_000, // 1 ms tick
            migration_cost_cycles: 100,
            max_instructions: 50_000_000,
            warmup_instructions: 2_000_000,
            max_cycles: u64::MAX,
            seed: 0x5EED_5EED,
            heatmap_bits: 512,
            collect_epoch_breakups: false,
            collect_exact_pages: false,
            trace_capacity: 0,
            faults: None,
            sanitize: false,
            watchdog: WatchdogConfig::default(),
            driving: DrivingMode::DiscreteEvent,
            devices: Vec::new(),
            core_clock_dividers: Vec::new(),
            system,
        }
    }

    /// Scaled-down configuration for experiments and tests: the same
    /// machine but short epochs and proportionally shorter device
    /// latencies, so multi-epoch behaviour emerges within a few million
    /// instructions.
    pub fn fast() -> Self {
        let mut cfg = Self::paper();
        cfg.epoch_cycles = 100_000;
        cfg.disk_latency_cycles = 20_000;
        cfg.network_latency_cycles = 10_000;
        cfg.timer_sleep_cycles = 30_000;
        cfg.timer_tick_cycles = 400_000;
        cfg.max_instructions = 4_000_000;
        cfg.warmup_instructions = 400_000;
        cfg
    }

    /// Replaces the machine configuration, keeping the workload reference
    /// core count in sync.
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.workload_reference_cores = system.num_cores;
        self.system = system;
        self
    }

    /// Overrides the instruction budget.
    pub fn with_max_instructions(mut self, n: u64) -> Self {
        self.max_instructions = n;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables the invariant sanitizer.
    pub fn with_sanitizer(mut self) -> Self {
        self.sanitize = true;
        self
    }

    /// Overrides the watchdog budgets.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Selects the driving mode.
    pub fn with_driving(mut self, driving: DrivingMode) -> Self {
        self.driving = driving;
        self
    }

    /// Adds a device model component.
    pub fn with_device(mut self, device: DeviceModelConfig) -> Self {
        self.devices.push(device);
        self
    }

    /// Sets per-core clock dividers (one entry per core).
    pub fn with_core_clock_dividers(mut self, dividers: Vec<u64>) -> Self {
        self.core_clock_dividers = dividers;
        self
    }

    /// Validates the whole configuration. [`crate::Engine::new`] calls
    /// this, so a bad configuration fails fast with a typed error
    /// instead of panicking mid-run.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.system.validate().map_err(ConfigError::System)?;
        if self.workload_reference_cores == 0 {
            return Err(ConfigError::ZeroReferenceCores);
        }
        // An epoch shorter than one quantum (at 1 IPC) or longer than ten
        // simulated minutes at 2 GHz is a unit mistake, not a sweep point.
        if self.epoch_cycles == 0 || self.epoch_cycles > 1_200_000_000_000 {
            return Err(ConfigError::EpochOutOfRange {
                cycles: self.epoch_cycles,
            });
        }
        if self.quantum_instructions == 0 {
            return Err(ConfigError::ZeroQuantum);
        }
        if self.max_instructions == 0 {
            return Err(ConfigError::ZeroMaxInstructions);
        }
        if self.heatmap_bits == 0 || !self.heatmap_bits.is_multiple_of(64) {
            return Err(ConfigError::BadHeatmapWidth {
                bits: self.heatmap_bits,
            });
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        if let DrivingMode::CycleBox { window_cycles, .. } = self.driving {
            if window_cycles == 0 {
                return Err(ConfigError::BadDrivingMode {
                    detail: "cycle-box window_cycles must be positive",
                });
            }
        }
        for (index, dev) in self.devices.iter().enumerate() {
            if dev.period_cycles == 0 {
                return Err(ConfigError::BadDevicePeriod { index });
            }
        }
        if !self.core_clock_dividers.is_empty() {
            if self.core_clock_dividers.len() != self.system.num_cores {
                return Err(ConfigError::BadClockDividers {
                    detail: "must be empty or have one entry per core",
                });
            }
            if self.core_clock_dividers.iter().any(|&d| d == 0 || d > 1024) {
                return Err(ConfigError::BadClockDividers {
                    detail: "each divider must be in 1..=1024",
                });
            }
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_epoch_is_3ms_at_2ghz() {
        let cfg = EngineConfig::paper();
        assert_eq!(cfg.epoch_cycles, 6_000_000);
        assert_eq!(cfg.heatmap_bits, 512);
    }

    #[test]
    fn with_system_syncs_reference_cores() {
        let cfg = EngineConfig::fast().with_system(SystemConfig::table2().with_cores(8));
        assert_eq!(cfg.workload_reference_cores, 8);
        assert_eq!(cfg.system.num_cores, 8);
    }

    #[test]
    fn builders_override() {
        let cfg = EngineConfig::fast().with_max_instructions(123).with_seed(9);
        assert_eq!(cfg.max_instructions, 123);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn presets_validate() {
        assert!(EngineConfig::paper().validate().is_ok());
        assert!(EngineConfig::fast().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let mut cfg = EngineConfig::fast();
        cfg.system.num_cores = 0;
        assert!(matches!(cfg.validate(), Err(ConfigError::System(_))));

        let mut cfg = EngineConfig::fast();
        cfg.epoch_cycles = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::EpochOutOfRange { cycles: 0 })
        ));

        let mut cfg = EngineConfig::fast();
        cfg.epoch_cycles = u64::MAX;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::EpochOutOfRange { .. })
        ));

        let mut cfg = EngineConfig::fast();
        cfg.quantum_instructions = 0;
        assert!(matches!(cfg.validate(), Err(ConfigError::ZeroQuantum)));

        let mut cfg = EngineConfig::fast();
        cfg.max_instructions = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ZeroMaxInstructions)
        ));

        let mut cfg = EngineConfig::fast();
        cfg.heatmap_bits = 100;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadHeatmapWidth { bits: 100 })
        ));

        let mut cfg = EngineConfig::fast();
        cfg.workload_reference_cores = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ZeroReferenceCores)
        ));

        let mut cfg = EngineConfig::fast();
        cfg.faults = Some(crate::faults::FaultPlan {
            drop_irq_rate: -0.5,
            ..crate::faults::FaultPlan::none(0)
        });
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadFaultRate { .. })
        ));
    }

    #[test]
    fn driving_device_and_divider_builders_validate() {
        let cfg = EngineConfig::fast()
            .with_driving(DrivingMode::CycleBox {
                window_cycles: 50_000,
                shards: 4,
            })
            .with_device(DeviceModelConfig {
                kind: DeviceKind::Network,
                period_cycles: 80_000,
            })
            .with_core_clock_dividers(vec![1; SystemConfig::table2().num_cores]);
        assert!(cfg.validate().is_ok());

        let cfg = EngineConfig::fast().with_driving(DrivingMode::CycleBox {
            window_cycles: 0,
            shards: 1,
        });
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadDrivingMode { .. })
        ));

        let cfg = EngineConfig::fast().with_device(DeviceModelConfig {
            kind: DeviceKind::Disk,
            period_cycles: 0,
        });
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadDevicePeriod { index: 0 })
        ));

        let cfg = EngineConfig::fast().with_core_clock_dividers(vec![1, 2]);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadClockDividers { .. })
        ));
        let cfg =
            EngineConfig::fast()
                .with_core_clock_dividers(vec![0; SystemConfig::table2().num_cores]);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadClockDividers { .. })
        ));
    }

    #[test]
    fn fault_and_sanitizer_builders() {
        let cfg = EngineConfig::fast()
            .with_faults(crate::faults::FaultPlan::light(3))
            .with_sanitizer()
            .with_watchdog(WatchdogConfig::disabled());
        assert!(cfg.faults.as_ref().is_some_and(|p| p.is_active()));
        assert!(cfg.sanitize);
        assert_eq!(cfg.watchdog, WatchdogConfig::disabled());
        assert!(cfg.validate().is_ok());
    }
}
