//! Typed errors for the simulation engine and scheduler plug-ins.
//!
//! The robustness layer's contract: library code never aborts the
//! process. Conditions that used to be `panic!`/`expect` sites surface
//! as [`EngineError`] from [`crate::Engine::run`] (or [`SchedError`]
//! from scheduler hooks, which the engine wraps), so sweep harnesses can
//! isolate a failing (technique, benchmark) cell, record a diagnostic,
//! and continue.

use crate::ids::{CoreId, SfId};
use std::fmt;

/// A configuration rejected at construction time (instead of panicking
/// mid-run).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The machine has no cores.
    ZeroCores,
    /// The workload has no benchmark parts.
    EmptyWorkload,
    /// The scheduling epoch length is zero or implausibly long.
    EpochOutOfRange {
        /// The rejected epoch length.
        cycles: u64,
    },
    /// The execution quantum is zero.
    ZeroQuantum,
    /// The Page-heatmap width is zero or not a multiple of 64.
    BadHeatmapWidth {
        /// The rejected width.
        bits: u32,
    },
    /// The post-warm-up instruction budget is zero.
    ZeroMaxInstructions,
    /// `workload_reference_cores` is zero.
    ZeroReferenceCores,
    /// A fault-injection rate is outside `[0, 1]` or not finite.
    BadFaultRate {
        /// Which rate field was rejected.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The driving-mode parameters are unusable.
    BadDrivingMode {
        /// What was rejected.
        detail: &'static str,
    },
    /// A device model's inter-arrival period is zero.
    BadDevicePeriod {
        /// Index of the rejected device in `EngineConfig::devices`.
        index: usize,
    },
    /// The per-core clock dividers are malformed.
    BadClockDividers {
        /// What was rejected.
        detail: &'static str,
    },
    /// The simulated machine failed validation (`schedtask-sim`).
    System(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCores => write!(f, "machine must have at least one core"),
            ConfigError::EmptyWorkload => write!(f, "workload must not be empty"),
            ConfigError::EpochOutOfRange { cycles } => {
                write!(f, "epoch length of {cycles} cycles is out of range")
            }
            ConfigError::ZeroQuantum => write!(f, "quantum_instructions must be positive"),
            ConfigError::BadHeatmapWidth { bits } => {
                write!(f, "heatmap width {bits} is not a positive multiple of 64")
            }
            ConfigError::ZeroMaxInstructions => {
                write!(f, "max_instructions must be positive")
            }
            ConfigError::ZeroReferenceCores => {
                write!(f, "workload_reference_cores must be positive")
            }
            ConfigError::BadFaultRate { field, value } => {
                write!(f, "fault rate {field} = {value} is not in [0, 1]")
            }
            ConfigError::BadDrivingMode { detail } => {
                write!(f, "invalid driving mode: {detail}")
            }
            ConfigError::BadDevicePeriod { index } => {
                write!(f, "device model {index} has a zero inter-arrival period")
            }
            ConfigError::BadClockDividers { detail } => {
                write!(f, "invalid core clock dividers: {detail}")
            }
            ConfigError::System(msg) => write!(f, "invalid machine configuration: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// An error raised by a [`crate::Scheduler`] hook.
///
/// Schedulers own runnable queues and placement tables; when those
/// internal structures become inconsistent (a queued SuperFunction that
/// no longer exists, an empty candidate set where the policy guarantees
/// one), the hook reports it instead of panicking and the engine
/// converts it into [`EngineError::Scheduler`].
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The scheduler was handed (or produced) an id for a SuperFunction
    /// the engine does not know.
    UnknownSuperFunction(SfId),
    /// A per-core queue is internally inconsistent (bad position, lost
    /// entry).
    CorruptQueue {
        /// Which core's queue.
        core: CoreId,
        /// What went wrong.
        detail: String,
    },
    /// A policy invariant guaranteed a non-empty candidate set but it was
    /// empty.
    NoCandidate {
        /// What was being selected.
        detail: String,
    },
    /// Any other internal inconsistency.
    Internal(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::UnknownSuperFunction(sf) => {
                write!(f, "scheduler references unknown SuperFunction {sf}")
            }
            SchedError::CorruptQueue { core, detail } => {
                write!(f, "corrupt runnable queue on {core}: {detail}")
            }
            SchedError::NoCandidate { detail } => {
                write!(f, "empty candidate set: {detail}")
            }
            SchedError::Internal(msg) => write!(f, "scheduler internal error: {msg}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// One invariant violation detected by the opt-in sanitizer
/// ([`crate::EngineConfig::sanitize`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Simulated cycle at which the check ran.
    pub at_cycle: u64,
    /// Which conservation property failed.
    pub check: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant {:?} violated at cycle {}: {}",
            self.check, self.at_cycle, self.detail
        )
    }
}

/// A failed simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The configuration or workload was rejected at construction.
    Config(ConfigError),
    /// The engine referenced a SuperFunction that does not exist.
    UnknownSuperFunction(SfId),
    /// A core was asked to execute with no current SuperFunction.
    NoCurrentSf {
        /// The affected core.
        core: CoreId,
    },
    /// The event queue was popped while empty.
    EventQueueUnderflow,
    /// A service-catalog lookup (syscall / interrupt / bottom half) failed.
    UnknownService {
        /// `"syscall"`, `"interrupt"`, or `"bottom half"`.
        kind: &'static str,
        /// The unknown name.
        name: String,
    },
    /// A scheduler hook failed.
    Scheduler(SchedError),
    /// The watchdog observed no forward progress for too long.
    Livelock {
        /// Simulated cycle at detection.
        at_cycle: u64,
        /// Simulated cycles since the last retired workload instruction.
        stalled_cycles: u64,
        /// Events processed in total.
        events_processed: u64,
    },
    /// The watchdog's total event budget was exhausted.
    EventBudgetExceeded {
        /// Events processed when the budget tripped.
        events_processed: u64,
    },
    /// The watchdog's wall-clock budget was exhausted.
    WallClockExceeded {
        /// The configured budget in milliseconds.
        limit_ms: u64,
    },
    /// The sanitizer detected an invariant violation.
    InvariantViolation(Violation),
    /// Internal state corruption that has no more specific variant (a
    /// condition the engine's own logic should make impossible).
    StateCorruption {
        /// What was found.
        detail: String,
    },
    /// [`crate::Engine::run`] was called a second time.
    AlreadyRan,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "invalid configuration: {e}"),
            EngineError::UnknownSuperFunction(sf) => {
                write!(f, "unknown SuperFunction {sf}")
            }
            EngineError::NoCurrentSf { core } => {
                write!(f, "{core} has no current SuperFunction to execute")
            }
            EngineError::EventQueueUnderflow => write!(f, "event queue underflow"),
            EngineError::UnknownService { kind, name } => {
                write!(f, "unknown {kind} {name:?} in service catalog")
            }
            EngineError::Scheduler(e) => write!(f, "scheduler failure: {e}"),
            EngineError::Livelock {
                at_cycle,
                stalled_cycles,
                events_processed,
            } => write!(
                f,
                "livelock: no workload progress for {stalled_cycles} cycles \
                 (at cycle {at_cycle}, {events_processed} events processed)"
            ),
            EngineError::EventBudgetExceeded { events_processed } => {
                write!(
                    f,
                    "watchdog event budget exhausted after {events_processed} events"
                )
            }
            EngineError::WallClockExceeded { limit_ms } => {
                write!(f, "watchdog wall-clock budget of {limit_ms} ms exhausted")
            }
            EngineError::InvariantViolation(v) => write!(f, "{v}"),
            EngineError::StateCorruption { detail } => {
                write!(f, "engine state corruption: {detail}")
            }
            EngineError::AlreadyRan => write!(f, "engine already ran"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

impl From<SchedError> for EngineError {
    fn from(e: SchedError) -> Self {
        EngineError::Scheduler(e)
    }
}

impl From<Violation> for EngineError {
    fn from(v: Violation) -> Self {
        EngineError::InvariantViolation(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = EngineError::UnknownSuperFunction(SfId(7));
        assert!(e.to_string().contains("sf7"));
        let e = EngineError::NoCurrentSf { core: CoreId(3) };
        assert!(e.to_string().contains("core3"));
        let e = EngineError::from(ConfigError::ZeroCores);
        assert!(e.to_string().contains("at least one core"));
        let e = EngineError::from(SchedError::NoCandidate {
            detail: "steal victim".into(),
        });
        assert!(e.to_string().contains("steal victim"));
    }

    #[test]
    fn violation_displays_check_and_cycle() {
        let v = Violation {
            at_cycle: 42,
            check: "monotone-time",
            detail: "now went backwards".into(),
        };
        let msg = EngineError::from(v).to_string();
        assert!(msg.contains("monotone-time") && msg.contains("42"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&EngineError::EventQueueUnderflow);
        takes_err(&SchedError::Internal("x".into()));
        takes_err(&ConfigError::ZeroQuantum);
    }
}
