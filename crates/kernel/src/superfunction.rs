//! The SuperFunction structure and lifecycle (Section 3.3).

use crate::ids::{SfId, ThreadId};
use schedtask_workload::{DeviceKind, FootprintWalker, SfCategory, SuperFuncType};

/// Scheduler-visible state of a SuperFunction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfState {
    /// Ready to run, sitting in some runnable queue.
    Runnable,
    /// Currently executing on a core.
    Running,
    /// Preempted by an interrupt on its core (will resume there).
    Preempted,
    /// Waiting for an event (e.g. a disk completion) — Section 5.3's
    /// waiting queue.
    Waiting,
    /// Paused while a child SuperFunction (e.g. a system call invoked by
    /// an application) runs on its behalf.
    PausedForChild,
    /// Finished; the structure is kept only until deallocation.
    Done,
}

/// What kind of work the SuperFunction performs and what happens at its
/// boundaries.
#[derive(Debug, Clone)]
pub enum SfBody {
    /// An application SuperFunction: runs bursts of user code, invoking a
    /// system call after each burst. Lives for the whole simulation.
    Application {
        /// Instructions left in the current burst.
        burst_left: u64,
    },
    /// A system-call handler.
    Syscall {
        /// Instructions left.
        remaining: u64,
        /// If `Some((at_remaining, device))`, the handler blocks on
        /// `device` once `remaining` drops to `at_remaining`.
        block: Option<(u64, DeviceKind)>,
    },
    /// An interrupt (top-half) handler.
    Interrupt {
        /// Instructions left.
        remaining: u64,
        /// Bottom half to schedule on completion (catalog name).
        bottom_half: Option<&'static str>,
        /// SuperFunction to wake once the hand-off chain completes.
        waiter: Option<SfId>,
    },
    /// A bottom-half handler.
    BottomHalf {
        /// Instructions left.
        remaining: u64,
        /// SuperFunction to wake on completion.
        wake: Option<SfId>,
    },
}

/// A SuperFunction instance: the structure of Section 3.3 plus the
/// execution state the engine needs.
#[derive(Debug)]
pub struct SuperFunction {
    /// Unique id (`superFuncID`).
    pub id: SfId,
    /// Type (`superFuncType`, Table 1).
    pub sf_type: SuperFuncType,
    /// Parent SuperFunction (`parentSuperFuncPtr`): execution returns here
    /// when this SuperFunction completes.
    pub parent: Option<SfId>,
    /// Owning thread (`tid`).
    pub tid: ThreadId,
    /// Execution state.
    pub state: SfState,
    /// What the SuperFunction does.
    pub body: SfBody,
    /// Instruction/data stream generator.
    pub walker: FootprintWalker,
    /// Cycles this SuperFunction has consumed so far.
    pub cycles_used: u64,
    /// Instructions this SuperFunction has retired so far.
    pub instructions_retired: u64,
    /// Cycle at which the SuperFunction became runnable (for queueing
    /// metrics such as interrupt latency).
    pub runnable_since: u64,
}

impl SuperFunction {
    /// The SuperFunction's category (shortcut for `sf_type.category()`).
    pub fn category(&self) -> SfCategory {
        self.sf_type.category()
    }

    /// True if this is an OS SuperFunction.
    pub fn is_os(&self) -> bool {
        self.sf_type.is_os()
    }

    /// Instructions remaining before the next lifecycle boundary
    /// (burst end, block point, or completion).
    pub fn instructions_until_boundary(&self) -> u64 {
        match &self.body {
            SfBody::Application { burst_left } => *burst_left,
            SfBody::Syscall { remaining, block } => match block {
                Some((at, _)) => remaining.saturating_sub(*at),
                None => *remaining,
            },
            SfBody::Interrupt { remaining, .. } => *remaining,
            SfBody::BottomHalf { remaining, .. } => *remaining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedtask_workload::{Footprint, PageAllocator, WalkParams};
    use std::sync::Arc;

    fn mk_sf(body: SfBody) -> SuperFunction {
        let mut alloc = PageAllocator::new();
        let r = alloc.region("x", 2);
        let code = Arc::new(Footprint::from_regions([&r]));
        let empty = Arc::new(Footprint::new());
        SuperFunction {
            id: SfId(1),
            sf_type: SuperFuncType::new(SfCategory::SystemCall, 3),
            parent: None,
            tid: ThreadId(0),
            state: SfState::Runnable,
            body,
            walker: FootprintWalker::new(code, empty.clone(), empty, WalkParams::default(), 1),
            cycles_used: 0,
            instructions_retired: 0,
            runnable_since: 0,
        }
    }

    #[test]
    fn boundary_for_plain_syscall_is_remaining() {
        let sf = mk_sf(SfBody::Syscall {
            remaining: 500,
            block: None,
        });
        assert_eq!(sf.instructions_until_boundary(), 500);
    }

    #[test]
    fn boundary_for_blocking_syscall_is_block_point() {
        let sf = mk_sf(SfBody::Syscall {
            remaining: 500,
            block: Some((200, DeviceKind::Disk)),
        });
        // Runs 300 instructions, then blocks with 200 still to go.
        assert_eq!(sf.instructions_until_boundary(), 300);
    }

    #[test]
    fn boundary_for_application_is_burst() {
        let sf = mk_sf(SfBody::Application { burst_left: 1234 });
        assert_eq!(sf.instructions_until_boundary(), 1234);
    }

    #[test]
    fn category_comes_from_type() {
        let sf = mk_sf(SfBody::Syscall {
            remaining: 1,
            block: None,
        });
        assert_eq!(sf.category(), SfCategory::SystemCall);
        assert!(sf.is_os());
    }
}
