//! The OS model and discrete-event simulation engine for the SchedTask
//! reproduction.
//!
//! This crate supplies everything between the memory-hierarchy substrate
//! (`schedtask-sim`) and the scheduling policies (`schedtask-baselines`,
//! `schedtask`):
//!
//! * the SuperFunction object model of Section 3.3
//!   ([`SuperFunction`], [`SfState`], [`SfBody`]), including the paper's
//!   distributed `superFuncID` allocation ([`ids::SfIdAllocator`]);
//! * threads, system-call dispatch, the interrupt controller, bottom
//!   halves, and blocking devices;
//! * the [`Scheduler`] plug-in trait — every technique the paper
//!   evaluates implements it;
//! * the [`Engine`], which executes SuperFunctions quantum by quantum
//!   through the cache hierarchy and collects the statistics every figure
//!   of the paper reports ([`SimStats`]).
//!
//! # Examples
//!
//! ```
//! use schedtask_kernel::{Engine, EngineConfig, GlobalFifoScheduler, WorkloadSpec};
//! use schedtask_sim::SystemConfig;
//! use schedtask_workload::BenchmarkKind;
//!
//! let cfg = EngineConfig::fast()
//!     .with_system(SystemConfig::table2().with_cores(4))
//!     .with_max_instructions(200_000);
//! let workload = WorkloadSpec::single(BenchmarkKind::Find, 1.0);
//! let mut engine = Engine::new(cfg, &workload, Box::new(GlobalFifoScheduler::new()));
//! let stats = engine.run();
//! assert!(stats.total_instructions() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod ids;
pub mod scheduler;
pub mod stats;
pub mod superfunction;
pub mod trace;

pub use config::EngineConfig;
pub use engine::{Engine, EngineCore, WorkloadSpec, KERNEL_TID};
pub use ids::{CoreId, SfId, ThreadId};
pub use scheduler::{GlobalFifoScheduler, SchedEvent, Scheduler, SwitchReason};
pub use stats::{CategoryInstructions, CoreTime, SimStats};
pub use superfunction::{SfBody, SfState, SuperFunction};
pub use trace::{TraceEvent, TraceLog};
