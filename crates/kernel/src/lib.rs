//! The OS model and discrete-event simulation engine for the SchedTask
//! reproduction.
//!
//! This crate supplies everything between the memory-hierarchy substrate
//! (`schedtask-sim`) and the scheduling policies (`schedtask-baselines`,
//! `schedtask`):
//!
//! * the SuperFunction object model of Section 3.3
//!   ([`SuperFunction`], [`SfState`], [`SfBody`]), including the paper's
//!   distributed `superFuncID` allocation ([`ids::SfIdAllocator`]);
//! * threads, system-call dispatch, the interrupt controller, bottom
//!   halves, and blocking devices;
//! * the [`Scheduler`] plug-in trait — every technique the paper
//!   evaluates implements it;
//! * the [`Engine`], which executes SuperFunctions quantum by quantum
//!   through the cache hierarchy and collects the statistics every figure
//!   of the paper reports ([`SimStats`]);
//! * a robustness layer: typed errors ([`EngineError`], [`SchedError`],
//!   [`ConfigError`]), a deterministic fault-injection framework
//!   ([`FaultPlan`]), an opt-in invariant sanitizer
//!   ([`EngineConfig::sanitize`]), and a per-run watchdog
//!   ([`WatchdogConfig`]) that converts livelock into a structured error.
//!
//! # Examples
//!
//! ```
//! use schedtask_kernel::{Engine, EngineConfig, GlobalFifoScheduler, WorkloadSpec};
//! use schedtask_sim::SystemConfig;
//! use schedtask_workload::BenchmarkKind;
//!
//! let cfg = EngineConfig::fast()
//!     .with_system(SystemConfig::table2().with_cores(4))
//!     .with_max_instructions(200_000);
//! let workload = WorkloadSpec::single(BenchmarkKind::Find, 1.0);
//! let mut engine = Engine::new(cfg, &workload, Box::new(GlobalFifoScheduler::new()))
//!     .expect("valid config");
//! let stats = engine.run().expect("run succeeds");
//! assert!(stats.total_instructions() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod config;
pub mod engine;
pub mod error;
pub mod faults;
pub mod ids;
pub mod observe;
pub(crate) mod sanitizer;
pub mod scheduler;
pub mod stats;
pub mod superfunction;
pub mod trace;

/// The structured observability layer (re-exported so downstream crates
/// can name `Observer`, `ObsEvent`, sinks, and counters without a
/// separate dependency edge).
pub use schedtask_obs as obs;

pub use config::{DeviceModelConfig, DrivingMode, EngineConfig, WatchdogConfig};

#[doc(hidden)]
pub use engine::events::BenchEventQueue;
pub use engine::{Engine, EngineCore, WorkloadSpec, KERNEL_TID};
pub use error::{ConfigError, EngineError, SchedError, Violation};
pub use faults::{FaultCounts, FaultPlan};
pub use ids::{CoreId, SfId, ThreadId};
pub use observe::TraceRingObserver;
pub use scheduler::{GlobalFifoScheduler, SchedEvent, Scheduler, SwitchReason};
pub use stats::{CategoryInstructions, CoreTime, SimStats};
pub use superfunction::{SfBody, SfState, SuperFunction};
pub use trace::{TraceEvent, TraceLog};
