//! Opt-in invariant sanitizer ([`crate::EngineConfig::sanitize`]).
//!
//! After every engine step (event or core quantum) the sanitizer checks
//! the conservation properties the simulation's correctness rests on:
//!
//! * **placement** — every live SuperFunction is in exactly one place:
//!   `Running` on exactly one core, `Preempted` on exactly one core's
//!   preempt stack, `Runnable` in exactly one scheduler queue (when the
//!   scheduler exposes its queues via
//!   [`crate::Scheduler::queued_sfs`]), never two places at once;
//! * **monotone virtual time** — global `now` and every core clock only
//!   move forward;
//! * **instruction conservation** — the per-category instruction
//!   counters equal the sum of instructions retired by live plus
//!   completed SuperFunctions (modulo the warm-up reset baseline);
//! * **no lost wakeups** — every `Waiting` SuperFunction has a pending
//!   device completion, an undelivered interrupt, or a live
//!   interrupt/bottom-half SuperFunction that will wake it.
//!
//! A failed check aborts the run with
//! [`crate::EngineError::InvariantViolation`]; the number of clean
//! passes is reported in [`crate::SimStats::sanitizer_checks`].

use crate::engine::{EngineCore, EventKind};
use crate::error::Violation;
use crate::ids::SfId;
use crate::scheduler::Scheduler;
use crate::superfunction::{SfBody, SfState};
use std::collections::{HashMap, HashSet};

/// Rolling sanitizer bookkeeping, owned by the engine when
/// [`crate::EngineConfig::sanitize`] is set.
#[derive(Debug)]
pub(crate) struct SanitizerState {
    last_now: u64,
    last_clocks: Vec<u64>,
    /// Offset absorbing the warm-up statistics reset: at rebaseline the
    /// counters restart from zero while SuperFunctions keep their
    /// lifetime totals.
    baseline: u64,
    pub(crate) checks: u64,
}

impl SanitizerState {
    pub(crate) fn new(num_cores: usize) -> Self {
        SanitizerState {
            last_now: 0,
            last_clocks: vec![0; num_cores],
            baseline: 0,
            checks: 0,
        }
    }

    /// The warm-up statistics reset just zeroed the counters.
    ///
    /// Instructions retired by already-reaped SuperFunctions live in
    /// [`EngineCore::retired_completed`], maintained unconditionally by
    /// the completion path so component code never needs a sanitizer
    /// handle.
    pub(crate) fn rebaseline(&mut self, core: &EngineCore) {
        let live: u64 = core.sfs.values().map(|s| s.instructions_retired).sum();
        self.baseline = live + core.retired_completed;
    }

    /// Runs one full pass; returns the first violation found.
    pub(crate) fn check(
        &mut self,
        core: &EngineCore,
        sched: &dyn Scheduler,
    ) -> Result<(), Violation> {
        let at_cycle = core.now;
        let fail = |check: &'static str, detail: String| -> Result<(), Violation> {
            Err(Violation {
                at_cycle,
                check,
                detail,
            })
        };

        // Monotone virtual time.
        if core.now < self.last_now {
            return fail(
                "monotone-time",
                format!("now went backwards: {} -> {}", self.last_now, core.now),
            );
        }
        self.last_now = core.now;
        for (i, cs) in core.cores.iter().enumerate() {
            if cs.clock < self.last_clocks[i] {
                return fail(
                    "monotone-time",
                    format!(
                        "core{i} clock went backwards: {} -> {}",
                        self.last_clocks[i], cs.clock
                    ),
                );
            }
            self.last_clocks[i] = cs.clock;
        }

        // Placement: each live SF in exactly one place.
        let mut seen: HashMap<SfId, String> = HashMap::new();
        let mut place = |sf: SfId, place: String| -> Result<(), Violation> {
            if let Some(prev) = seen.insert(sf, place.clone()) {
                return Err(Violation {
                    at_cycle,
                    check: "single-placement",
                    detail: format!("{sf} is both {prev} and {place}"),
                });
            }
            Ok(())
        };
        for (i, cs) in core.cores.iter().enumerate() {
            if let Some(cur) = cs.current {
                place(cur, format!("current on core{i}"))?;
            }
            for &p in &cs.preempt_stack {
                place(p, format!("preempted on core{i}"))?;
            }
        }
        let mut queued = Vec::new();
        let queues_known = sched.queued_sfs(&mut queued);
        if queues_known {
            for &q in &queued {
                place(q, "queued".to_string())?;
            }
        }

        // State/placement agreement for every live SF, and wakeup-holder
        // collection for the lost-wakeup check.
        let mut wakeup_holders: HashSet<SfId> = HashSet::new();
        let mut paused_parents: HashSet<SfId> = HashSet::new();
        for ev in core.events.iter() {
            if let EventKind::DeviceComplete { waiter, .. } = ev.kind {
                wakeup_holders.insert(waiter);
            }
        }
        for cs in &core.cores {
            for irq in &cs.pending_irqs {
                if let Some(w) = irq.waiter {
                    wakeup_holders.insert(w);
                }
            }
        }
        for sf in core.sfs.values() {
            match &sf.body {
                SfBody::Interrupt {
                    waiter: Some(w), ..
                } => {
                    wakeup_holders.insert(*w);
                }
                SfBody::BottomHalf { wake: Some(w), .. } => {
                    wakeup_holders.insert(*w);
                }
                _ => {}
            }
            if let Some(parent) = sf.parent {
                paused_parents.insert(parent);
            }
        }

        for sf in core.sfs.values() {
            let placement = seen.get(&sf.id).map(String::as_str);
            match sf.state {
                SfState::Running => {
                    if !placement.is_some_and(|p| p.starts_with("current")) {
                        return fail(
                            "single-placement",
                            format!("{} is Running but current on no core", sf.id),
                        );
                    }
                }
                SfState::Preempted => {
                    if !placement.is_some_and(|p| p.starts_with("preempted")) {
                        return fail(
                            "single-placement",
                            format!("{} is Preempted but on no preempt stack", sf.id),
                        );
                    }
                }
                SfState::Runnable => {
                    if queues_known && placement != Some("queued") {
                        return fail(
                            "single-placement",
                            format!(
                                "{} is Runnable but in no scheduler queue ({})",
                                sf.id,
                                placement.unwrap_or("nowhere")
                            ),
                        );
                    }
                    if !queues_known && placement.is_some() {
                        return fail(
                            "single-placement",
                            format!(
                                "{} is Runnable but placed as {}",
                                sf.id,
                                placement.unwrap_or("?")
                            ),
                        );
                    }
                }
                SfState::Waiting => {
                    if placement.is_some() {
                        return fail(
                            "single-placement",
                            format!(
                                "{} is Waiting but placed as {}",
                                sf.id,
                                placement.unwrap_or("?")
                            ),
                        );
                    }
                    if !wakeup_holders.contains(&sf.id) {
                        return fail(
                            "no-lost-wakeups",
                            format!("{} is Waiting with no pending wakeup path", sf.id),
                        );
                    }
                }
                SfState::PausedForChild => {
                    if placement.is_some() {
                        return fail(
                            "single-placement",
                            format!(
                                "{} is PausedForChild but placed as {}",
                                sf.id,
                                placement.unwrap_or("?")
                            ),
                        );
                    }
                    if !paused_parents.contains(&sf.id) {
                        return fail(
                            "no-lost-wakeups",
                            format!("{} is PausedForChild but no live child points at it", sf.id),
                        );
                    }
                }
                SfState::Done => {
                    return fail(
                        "single-placement",
                        format!("{} is Done but was not reaped", sf.id),
                    );
                }
            }
        }
        if queues_known {
            for &q in &queued {
                if !core.sfs.contains_key(&q) {
                    return fail(
                        "single-placement",
                        format!("scheduler queue holds unknown {q}"),
                    );
                }
            }
        }

        // Instruction conservation.
        let live: u64 = core.sfs.values().map(|s| s.instructions_retired).sum();
        let lhs = live + core.retired_completed;
        let rhs = core.stats.instructions.total_workload() + self.baseline;
        if lhs != rhs {
            return fail(
                "instruction-conservation",
                format!(
                    "retired by SuperFunctions = {lhs} but counters say {rhs} \
                     (live {live}, completed {}, baseline {})",
                    core.retired_completed, self.baseline
                ),
            );
        }

        self.checks += 1;
        Ok(())
    }
}
