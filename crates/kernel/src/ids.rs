//! Identifier newtypes and the paper's distributed superFuncID allocator.

use std::fmt;

/// A core index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A thread id (the `tid` field of a SuperFunction structure,
/// Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u64);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// A unique SuperFunction id (the `superFuncID` field, Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SfId(pub u64);

impl fmt::Display for SfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sf{}", self.0)
    }
}

/// Distributed superFuncID allocation, exactly as Section 3.3 specifies:
/// on an `n`-core system, core `i` assigns ids sequentially in the range
/// `[2⁶⁴·i/n, 2⁶⁴·(i+1)/n − 1]`, wrapping within its range if exhausted,
/// so that no global counter is ever shared (the Boyd-Wickizer
/// scalability argument).
///
/// # Examples
///
/// ```
/// use schedtask_kernel::ids::{CoreId, SfIdAllocator};
///
/// let mut alloc = SfIdAllocator::new(4);
/// let a = alloc.next(CoreId(0));
/// let b = alloc.next(CoreId(1));
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SfIdAllocator {
    /// Per-core (next, range_start, range_len).
    counters: Vec<(u64, u64, u64)>,
}

impl SfIdAllocator {
    /// Creates an allocator for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        let span = u64::MAX / num_cores as u64;
        let counters = (0..num_cores as u64)
            .map(|i| {
                let start = i * span;
                (start, start, span)
            })
            .collect();
        SfIdAllocator { counters }
    }

    /// Allocates the next id from `core`'s range.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn next(&mut self, core: CoreId) -> SfId {
        let (next, start, len) = &mut self.counters[core.0];
        let id = *next;
        *next += 1;
        if *next >= *start + *len {
            // Wrap around within the core's range, as the paper specifies.
            *next = *start;
        }
        SfId(id)
    }

    /// The core whose range contains `id`.
    pub fn owner_of(&self, id: SfId) -> CoreId {
        let span = self.counters[0].2;
        CoreId(((id.0 / span) as usize).min(self.counters.len() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_ranges_are_disjoint() {
        let mut alloc = SfIdAllocator::new(32);
        let mut seen = std::collections::HashSet::new();
        for core in 0..32 {
            for _ in 0..100 {
                let id = alloc.next(CoreId(core));
                assert!(seen.insert(id), "duplicate id {id}");
                assert_eq!(alloc.owner_of(id), CoreId(core));
            }
        }
    }

    #[test]
    fn ids_are_sequential_within_a_core() {
        let mut alloc = SfIdAllocator::new(4);
        let a = alloc.next(CoreId(2));
        let b = alloc.next(CoreId(2));
        assert_eq!(b.0, a.0 + 1);
    }

    #[test]
    fn range_start_matches_paper_formula() {
        let mut alloc = SfIdAllocator::new(4);
        let first_core1 = alloc.next(CoreId(1));
        assert_eq!(first_core1.0, u64::MAX / 4);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        SfIdAllocator::new(0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(ThreadId(7).to_string(), "tid7");
        assert_eq!(SfId(9).to_string(), "sf9");
    }
}
