//! The scheduler plug-in interface.
//!
//! Every technique the paper evaluates — the Linux baseline,
//! SelectiveOffload, FlexSC, DisAggregateOS, SLICC, and SchedTask itself —
//! is an implementation of [`Scheduler`]. The engine owns SuperFunction
//! lifecycle and timing; the scheduler owns runnable queues and placement
//! policy, exactly the paper's division between the machine and
//! TAlloc/TMigrate.

use crate::engine::EngineCore;
use crate::error::SchedError;
use crate::ids::{CoreId, SfId};

/// Scheduling events for which a technique may charge an instruction
/// overhead (executed as OS code on the core where the event occurs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedEvent {
    /// A new SuperFunction is started (the paper's `START_SUPER_FUNCTION`
    /// TMigrate request).
    SfStart,
    /// A SuperFunction completed (`STOP_SUPER_FUNCTION`).
    SfStop,
    /// A SuperFunction blocked (`PAUSE_SUPER_FUNCTION`).
    SfPause,
    /// A SuperFunction was woken (`WAKEUP_SUPER_FUNCTION`).
    SfWakeup,
    /// The per-epoch allocation pass (TAlloc).
    EpochAlloc,
    /// A full OS scheduler invocation (context switch through the Linux
    /// scheduler — what FlexSC pays on every syscall of a single-threaded
    /// application).
    FullReschedule,
}

/// Why a SuperFunction is being switched off a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// It finished.
    Completed,
    /// It blocked on a device.
    Blocked,
    /// An interrupt preempted it (it will resume on the same core).
    Preempted,
    /// It paused to let a child SuperFunction (a system call it invoked)
    /// run.
    PausedForChild,
}

/// A scheduling technique.
///
/// The engine calls these hooks; the implementation keeps whatever queues
/// and tables it needs. All methods receive the [`EngineCore`] context for
/// querying SuperFunction metadata, reading the hardware Page-heatmap
/// registers, and probing caches.
///
/// The queue-mutating hooks (`init`, `enqueue`, `pick_next`, `on_epoch`)
/// are fallible: an implementation that finds its own tables corrupt
/// returns a [`SchedError`] and the engine aborts that run with a
/// structured [`crate::EngineError::Scheduler`] instead of panicking —
/// sweep harnesses then record the diagnosis and continue with the next
/// cell.
///
/// The `Send` supertrait is a hard contract: the whole run pipeline
/// (engine + scheduler) moves onto worker threads in parallel sweeps, so
/// implementations must not hold thread-bound state such as
/// `Rc<RefCell<...>>` — use `Arc<Mutex<...>>` observers instead.
pub trait Scheduler: Send {
    /// Technique name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Called once before simulation starts, after all threads exist.
    fn init(&mut self, ctx: &mut EngineCore) -> Result<(), SchedError> {
        let _ = ctx;
        Ok(())
    }

    /// A SuperFunction became runnable (newly created or woken). The
    /// scheduler must record it in some queue; it will later hand it back
    /// from [`Scheduler::pick_next`]. `origin` is the core on which the
    /// triggering event happened (`None` for initial thread creation) —
    /// the paper runs SuperFunctions with no allocation-table entry on
    /// the local core.
    fn enqueue(
        &mut self,
        ctx: &mut EngineCore,
        sf: SfId,
        origin: Option<CoreId>,
    ) -> Result<(), SchedError>;

    /// The core is free; return the next SuperFunction it should run
    /// (possibly stolen from another queue), or `None` to idle.
    fn pick_next(&mut self, ctx: &mut EngineCore, core: CoreId)
        -> Result<Option<SfId>, SchedError>;

    /// `sf` is about to start or resume executing on `core`.
    fn on_dispatch(&mut self, ctx: &mut EngineCore, core: CoreId, sf: SfId) {
        let _ = (ctx, core, sf);
    }

    /// `sf` is leaving `core` for the given reason.
    fn on_switch_out(
        &mut self,
        ctx: &mut EngineCore,
        core: CoreId,
        sf: SfId,
        reason: SwitchReason,
    ) {
        let _ = (ctx, core, sf, reason);
    }

    /// `sf` completed (after the final switch-out).
    fn on_complete(&mut self, ctx: &mut EngineCore, sf: SfId) {
        let _ = (ctx, sf);
    }

    /// `sf` blocked on a device (after the switch-out).
    fn on_block(&mut self, ctx: &mut EngineCore, sf: SfId) {
        let _ = (ctx, sf);
    }

    /// An epoch boundary passed.
    fn on_epoch(&mut self, ctx: &mut EngineCore) -> Result<(), SchedError> {
        let _ = ctx;
        Ok(())
    }

    /// Appends every SuperFunction currently held runnable in the
    /// scheduler's queues to `out` (each exactly once) and returns
    /// `true`. The invariant sanitizer uses this to check conservation —
    /// every `Runnable` SuperFunction must sit in exactly one queue and
    /// on no core. Implementations that keep queues should override; the
    /// default returns `false`, which tells the sanitizer this scheduler
    /// does not expose its queues and queue-conservation checks must be
    /// skipped.
    fn queued_sfs(&self, out: &mut Vec<SfId>) -> bool {
        let _ = out;
        false
    }

    /// Which core should service interrupts with this IRQ id right now
    /// (the paper's programmable interrupt-controller routing; unrouted
    /// IRQs default to core 0).
    fn route_interrupt(&mut self, ctx: &mut EngineCore, irq: u64) -> CoreId {
        let _ = (ctx, irq);
        CoreId(0)
    }

    /// Which core should service the completion interrupt for an IO
    /// request that `waiter` is blocked on. The default steers the
    /// completion to the submitting thread's core (what blk-mq and
    /// RSS/XPS do), which also spreads the subsequent bottom-half work —
    /// funnelling every completion to one core livelocks it. Techniques
    /// that program the interrupt controller (SchedTask's TAlloc)
    /// override this.
    fn route_completion(&mut self, ctx: &mut EngineCore, irq: u64, waiter: SfId) -> CoreId {
        let tid = ctx.sf_tid(waiter);
        ctx.thread_last_core(tid)
            .unwrap_or_else(|| self.route_interrupt(ctx, irq))
    }

    /// Instruction overhead for a scheduling event, with full context —
    /// FlexSC, for example, charges a complete Linux-scheduler invocation
    /// when a single-threaded application starts a system call. The
    /// default defers to [`Scheduler::overhead_instructions`].
    fn overhead_for(&self, ctx: &EngineCore, event: SchedEvent, sf: Option<SfId>) -> u64 {
        let _ = (ctx, sf);
        self.overhead_instructions(event)
    }

    /// Instruction overhead charged for a scheduling event, executed as
    /// OS code on the core where the event happens. Defaults model a
    /// lightweight scheduler; techniques override to match the paper's
    /// observations (e.g. SchedTask's TMigrate ≈ 3.2 % of execution,
    /// TAlloc < 0.01 %).
    fn overhead_instructions(&self, event: SchedEvent) -> u64 {
        match event {
            SchedEvent::SfStart | SchedEvent::SfStop => 60,
            SchedEvent::SfPause | SchedEvent::SfWakeup => 40,
            SchedEvent::EpochAlloc => 0,
            SchedEvent::FullReschedule => 1_800,
        }
    }
}

/// A minimal reference scheduler: one global FIFO queue, any free core
/// takes the head. Used by the engine's own tests and as a sanity floor;
/// the real techniques live in `schedtask-baselines` and `schedtask`
/// (core).
#[derive(Debug, Default)]
pub struct GlobalFifoScheduler {
    queue: std::collections::VecDeque<SfId>,
}

impl GlobalFifoScheduler {
    /// Creates an empty FIFO scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for GlobalFifoScheduler {
    fn name(&self) -> &'static str {
        "GlobalFifo"
    }

    fn enqueue(
        &mut self,
        _ctx: &mut EngineCore,
        sf: SfId,
        _origin: Option<CoreId>,
    ) -> Result<(), SchedError> {
        self.queue.push_back(sf);
        Ok(())
    }

    fn pick_next(
        &mut self,
        _ctx: &mut EngineCore,
        _core: CoreId,
    ) -> Result<Option<SfId>, SchedError> {
        Ok(self.queue.pop_front())
    }

    fn queued_sfs(&self, out: &mut Vec<SfId>) -> bool {
        out.extend(self.queue.iter().copied());
        true
    }
}
