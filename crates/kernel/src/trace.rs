//! SuperFunction event tracing.
//!
//! The paper's methodology is trace-driven (Qemu collects a full-system
//! trace, Tejas replays it). This module provides the equivalent
//! observability for the synthetic engine: a bounded ring of
//! SuperFunction lifecycle events that experiments and tests can inspect
//! or dump, without affecting timing.

use crate::ids::{CoreId, SfId, ThreadId};
use schedtask_workload::SuperFuncType;
use std::collections::VecDeque;
use std::fmt;

/// One traced scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A SuperFunction was created.
    Created {
        /// Cycle of the event.
        at: u64,
        /// The SuperFunction.
        sf: SfId,
        /// Its type.
        sf_type: SuperFuncType,
        /// Its thread.
        tid: ThreadId,
    },
    /// A SuperFunction started or resumed on a core.
    Dispatched {
        /// Cycle of the event.
        at: u64,
        /// The SuperFunction.
        sf: SfId,
        /// The core it runs on.
        core: CoreId,
    },
    /// A SuperFunction blocked on a device.
    Blocked {
        /// Cycle of the event.
        at: u64,
        /// The SuperFunction.
        sf: SfId,
    },
    /// A SuperFunction completed.
    Completed {
        /// Cycle of the event.
        at: u64,
        /// The SuperFunction.
        sf: SfId,
    },
    /// A thread moved between cores.
    Migrated {
        /// Cycle of the event.
        at: u64,
        /// The thread.
        tid: ThreadId,
        /// Source core.
        from: CoreId,
        /// Destination core.
        to: CoreId,
    },
}

impl TraceEvent {
    /// The cycle this event happened at.
    pub fn at(&self) -> u64 {
        match *self {
            TraceEvent::Created { at, .. }
            | TraceEvent::Dispatched { at, .. }
            | TraceEvent::Blocked { at, .. }
            | TraceEvent::Completed { at, .. }
            | TraceEvent::Migrated { at, .. } => at,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Created {
                at,
                sf,
                sf_type,
                tid,
            } => {
                write!(f, "{at} CREATE {sf} type={sf_type} {tid}")
            }
            TraceEvent::Dispatched { at, sf, core } => {
                write!(f, "{at} DISPATCH {sf} on {core}")
            }
            TraceEvent::Blocked { at, sf } => write!(f, "{at} BLOCK {sf}"),
            TraceEvent::Completed { at, sf } => write!(f, "{at} COMPLETE {sf}"),
            TraceEvent::Migrated { at, tid, from, to } => {
                write!(f, "{at} MIGRATE {tid} {from}->{to}")
            }
        }
    }
}

/// A bounded ring of trace events. When full, the oldest events are
/// dropped (and counted), so tracing never grows unbounded.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceLog {
    /// Creates a log holding up to `capacity` events; a capacity of 0
    /// disables tracing entirely.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// True when tracing is disabled.
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained trace, one event per line (the textual
    /// format is stable enough for golden tests).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedtask_workload::SfCategory;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent::Completed { at, sf: SfId(at) }
    }

    #[test]
    fn ring_drops_oldest() {
        let mut log = TraceLog::new(3);
        for at in 0..5 {
            log.record(ev(at));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let first = log.events().next().unwrap().at();
        assert_eq!(first, 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut log = TraceLog::new(0);
        log.record(ev(1));
        assert!(log.is_disabled());
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::Created {
            at: 7,
            sf: SfId(1),
            sf_type: SuperFuncType::new(SfCategory::SystemCall, 3),
            tid: ThreadId(2),
        };
        assert_eq!(e.to_string(), "7 CREATE sf1 type=system call:3 tid2");
        let m = TraceEvent::Migrated {
            at: 9,
            tid: ThreadId(0),
            from: CoreId(1),
            to: CoreId(2),
        };
        assert_eq!(m.to_string(), "9 MIGRATE tid0 core1->core2");
    }

    #[test]
    fn dump_is_line_per_event() {
        let mut log = TraceLog::new(10);
        log.record(ev(1));
        log.record(ev(2));
        assert_eq!(log.dump().lines().count(), 2);
    }
}
