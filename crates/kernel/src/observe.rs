//! Kernel-side observability plumbing: the engine's observer fan-out
//! hub and the [`TraceRingObserver`] compatibility shim that keeps the
//! legacy [`TraceLog`] ring alive on top of the structured
//! [`schedtask_obs`] event stream.

use crate::ids::{CoreId, SfId, ThreadId};
use crate::trace::{TraceEvent, TraceLog};
use schedtask_obs::{ObsEvent, Observer, SfClass, SpanKind};
use schedtask_workload::{SfCategory, SuperFuncType};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Maps the workload crate's category onto the obs crate's
/// dependency-free class.
pub(crate) fn class_of(category: SfCategory) -> SfClass {
    match category {
        SfCategory::Application => SfClass::Application,
        SfCategory::SystemCall => SfClass::SystemCall,
        SfCategory::Interrupt => SfClass::Interrupt,
        SfCategory::BottomHalf => SfClass::BottomHalf,
    }
}

/// The set of observers attached to an engine, with a cached
/// "anything enabled?" flag.
///
/// This is the zero-overhead-when-disabled contract's enforcement
/// point: every emit helper checks the cached flag *before* running the
/// closure that constructs the event, so an unobserved engine pays one
/// predictable branch per hook site and never builds an event value.
#[derive(Default)]
pub(crate) struct ObserverSet {
    observers: Vec<Arc<dyn Observer>>,
    enabled: bool,
}

impl fmt::Debug for ObserverSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObserverSet")
            .field("observers", &self.observers.len())
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl ObserverSet {
    /// Attaches an observer; the cached enabled flag is the OR of every
    /// attached observer's [`Observer::enabled`].
    pub(crate) fn attach(&mut self, obs: Arc<dyn Observer>) {
        self.enabled |= obs.enabled();
        self.observers.push(obs);
    }

    /// True when at least one enabled observer is attached.
    #[inline]
    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Builds the event with `make` and fans it out — only when enabled.
    #[inline]
    pub(crate) fn emit(&self, make: impl FnOnce() -> ObsEvent) {
        if self.enabled {
            let ev = make();
            for obs in &self.observers {
                obs.event(&ev);
            }
        }
    }

    /// Fans out a span open (only when enabled).
    #[inline]
    pub(crate) fn span_enter(&self, core: Option<u32>, kind: SpanKind, at: u64) {
        if self.enabled {
            for obs in &self.observers {
                obs.span_enter(core, kind, at);
            }
        }
    }

    /// Fans out a span close (only when enabled).
    #[inline]
    pub(crate) fn span_exit(&self, core: Option<u32>, kind: SpanKind, at: u64) {
        if self.enabled {
            for obs in &self.observers {
                obs.span_exit(core, kind, at);
            }
        }
    }
}

/// Compatibility shim: an [`Observer`] that fills the legacy
/// [`TraceLog`] ring from the structured event stream.
///
/// The engine attaches one automatically when
/// [`EngineConfig::trace_capacity`] is non-zero, so code written against
/// the ring keeps working (via [`Engine::trace_snapshot`]) while the
/// engine itself no longer records trace events directly.
///
/// [`EngineConfig::trace_capacity`]: crate::EngineConfig::trace_capacity
/// [`Engine::trace_snapshot`]: crate::Engine::trace_snapshot
#[derive(Debug)]
pub struct TraceRingObserver {
    ring: Mutex<TraceLog>,
}

impl TraceRingObserver {
    /// A shim retaining up to `capacity` lifecycle events.
    pub fn new(capacity: usize) -> Self {
        TraceRingObserver {
            ring: Mutex::new(TraceLog::new(capacity)),
        }
    }

    /// A point-in-time copy of the ring.
    pub fn snapshot(&self) -> TraceLog {
        self.ring.lock().expect("trace ring poisoned").clone()
    }
}

impl Observer for TraceRingObserver {
    fn event(&self, ev: &ObsEvent) {
        // Only the five legacy lifecycle kinds reach the ring; the
        // richer structured events have no TraceEvent equivalent.
        let legacy = match *ev {
            ObsEvent::SfCreated {
                at,
                sf,
                sf_type,
                tid,
                ..
            } => Some(TraceEvent::Created {
                at,
                sf: SfId(sf),
                sf_type: SuperFuncType::from_raw(sf_type),
                tid: ThreadId(tid),
            }),
            ObsEvent::Dispatched { at, sf, core } => Some(TraceEvent::Dispatched {
                at,
                sf: SfId(sf),
                core: CoreId(core as usize),
            }),
            ObsEvent::Blocked { at, sf } => Some(TraceEvent::Blocked { at, sf: SfId(sf) }),
            ObsEvent::Completed { at, sf } => Some(TraceEvent::Completed { at, sf: SfId(sf) }),
            ObsEvent::Migrated { at, tid, from, to } => Some(TraceEvent::Migrated {
                at,
                tid: ThreadId(tid),
                from: CoreId(from as usize),
                to: CoreId(to as usize),
            }),
            _ => None,
        };
        if let Some(event) = legacy {
            self.ring.lock().expect("trace ring poisoned").record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shim_translates_lifecycle_events() {
        let shim = TraceRingObserver::new(16);
        let sf_type = SuperFuncType::new(SfCategory::SystemCall, 3);
        shim.event(&ObsEvent::SfCreated {
            at: 1,
            sf: 7,
            sf_type: sf_type.raw(),
            class: SfClass::SystemCall,
            tid: 2,
        });
        shim.event(&ObsEvent::Dispatched {
            at: 2,
            sf: 7,
            core: 1,
        });
        shim.event(&ObsEvent::EpochStart { at: 3 }); // no ring equivalent
        shim.event(&ObsEvent::Completed { at: 4, sf: 7 });
        let ring = shim.snapshot();
        assert_eq!(ring.len(), 3);
        let first = ring.events().next().expect("first event");
        assert!(matches!(first, TraceEvent::Created { sf: SfId(7), .. }));
    }

    #[test]
    fn observer_set_gates_on_enabled() {
        let mut set = ObserverSet::default();
        assert!(!set.is_enabled());
        set.emit(|| unreachable!("must not construct events when disabled"));
        set.attach(Arc::new(schedtask_obs::NoopObserver));
        assert!(set.is_enabled());
    }
}
