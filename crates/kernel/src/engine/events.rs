//! The events subsystem: the global timer/epoch/device event queue and
//! its deterministic ordering, plus the dispatch of popped events to the
//! interrupt and scheduling subsystems.
//!
//! The queue is a max-[`BinaryHeap`] over a reversed ordering, so the
//! *earliest* event pops first; ties break on insertion sequence, which
//! keeps runs bit-reproducible regardless of heap internals.

use super::Engine;
use crate::error::EngineError;
use crate::faults::FaultInjector;
use crate::ids::SfId;
use crate::scheduler::SchedEvent;
use schedtask_obs::{FaultKind, ObsEvent};
use schedtask_workload::DeviceKind;
use std::cmp::Ordering;

/// A simulation event: something that happens at an absolute cycle,
/// independent of any core's private clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A device finished the request `waiter` blocked on.
    DeviceComplete {
        /// Which device class completed.
        device: DeviceKind,
        /// The SuperFunction waiting for the completion.
        waiter: SfId,
    },
    /// A spontaneous external interrupt attributed to benchmark `bench`.
    ExternalIrq {
        /// Index of the benchmark whose device raises the interrupt.
        bench: usize,
    },
    /// The periodic per-core timer interrupt.
    TimerTick {
        /// Target core.
        core: usize,
    },
    /// The scheduler's TAlloc epoch boundary.
    Epoch,
}

/// An entry in the global event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HeapEvent {
    pub(super) time: u64,
    pub(super) seq: u64,
    pub(crate) kind: EventKind,
}

impl Ord for HeapEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl super::EngineCore {
    /// Enqueues `kind` at absolute cycle `time`.
    pub(super) fn schedule_event(&mut self, time: u64, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(HeapEvent {
            time,
            seq: self.event_seq,
            kind,
        });
    }
}

impl Engine {
    /// Seeds the queue with the recurring events every run starts from:
    /// staggered per-core timer ticks, the first TAlloc epoch, and each
    /// benchmark's spontaneous-interrupt stream.
    pub(super) fn prime_periodic_events(&mut self) {
        let tick = self.core.cfg.timer_tick_cycles;
        if tick > 0 {
            for c in 0..self.core.num_cores() {
                let stagger = tick / self.core.num_cores() as u64 * c as u64;
                self.core
                    .schedule_event(tick + stagger, EventKind::TimerTick { core: c });
            }
        }
        self.core
            .schedule_event(self.core.cfg.epoch_cycles, EventKind::Epoch);
        for bench in 0..self.core.instances.len() {
            if self.core.instances[bench].spec.spontaneous_irq.is_some() {
                let interval = self.core.irq_rate_interval[bench];
                self.core
                    .schedule_event(interval, EventKind::ExternalIrq { bench });
            }
        }
    }

    /// Pops the earliest event and dispatches it to the owning subsystem.
    pub(super) fn process_next_event(&mut self) -> Result<(), EngineError> {
        let ev = self
            .core
            .events
            .pop()
            .ok_or(EngineError::EventQueueUnderflow)?;
        self.core.now = ev.time;

        // Fault injection: the interrupt carried by this event is lost.
        // A dropped event is re-raised after the modelled retry delay
        // (hardware timeout / software re-poll), so wakeups are delayed —
        // never lost — and slowdown stays bounded.
        if !matches!(ev.kind, EventKind::Epoch) {
            if let Some(delay) = self
                .core
                .injector
                .as_mut()
                .and_then(FaultInjector::drop_irq)
            {
                self.core.schedule_event(ev.time + delay, ev.kind);
                self.core.obs.emit(|| ObsEvent::FaultInjected {
                    at: ev.time,
                    kind: FaultKind::DroppedIrq,
                });
                return Ok(());
            }
        }

        match ev.kind {
            EventKind::DeviceComplete { device, waiter } => {
                let irq_name = self.core.catalog.interrupt_for_device(device).name;
                let irq_id = self.core.catalog.interrupt_for_device(device).irq;
                let target = self
                    .scheduler
                    .route_completion(&mut self.core, irq_id, waiter);
                self.core.obs.emit(|| ObsEvent::IrqRouted {
                    at: ev.time,
                    irq: irq_id,
                    core: target.0 as u32,
                });
                self.deliver_irq(target.0, irq_name, Some(waiter), ev.time);
            }
            EventKind::ExternalIrq { bench } => {
                let Some((irq_name, _)) = self.core.instances[bench].spec.spontaneous_irq else {
                    return Err(EngineError::StateCorruption {
                        detail: format!(
                            "external irq scheduled for benchmark {bench} with no spontaneous rate"
                        ),
                    });
                };
                let irq_id = self
                    .core
                    .catalog
                    .try_interrupt(irq_name)
                    .ok_or_else(|| EngineError::UnknownService {
                        kind: "interrupt",
                        name: irq_name.to_string(),
                    })?
                    .irq;
                let target = self.scheduler.route_interrupt(&mut self.core, irq_id);
                self.core.obs.emit(|| ObsEvent::IrqRouted {
                    at: ev.time,
                    irq: irq_id,
                    core: target.0 as u32,
                });
                self.deliver_irq(target.0, irq_name, None, ev.time);
                // Re-arm with ±50 % jitter.
                let base = self.core.irq_rate_interval[bench];
                let jitter = {
                    use rand::Rng;
                    self.core.rng.gen_range(base / 2..=base + base / 2)
                };
                self.core
                    .schedule_event(ev.time + jitter.max(1), EventKind::ExternalIrq { bench });
            }
            EventKind::TimerTick { core } => {
                let irq_name = "timer_irq";
                self.deliver_irq(core, irq_name, None, ev.time);
                self.core.schedule_event(
                    ev.time + self.core.cfg.timer_tick_cycles,
                    EventKind::TimerTick { core },
                );
            }
            EventKind::Epoch => {
                self.core.obs.emit(|| ObsEvent::EpochStart { at: ev.time });
                let overhead =
                    self.scheduler
                        .overhead_for(&self.core, SchedEvent::EpochAlloc, None);
                self.core.charge_sched_overhead(0, overhead);
                self.scheduler.on_epoch(&mut self.core)?;
                if self.core.cfg.collect_epoch_breakups {
                    self.core.snapshot_epoch_breakup();
                }
                self.core
                    .schedule_event(ev.time + self.core.cfg.epoch_cycles, EventKind::Epoch);
            }
        }

        // Fault injection: a spurious interrupt (no waiting SuperFunction)
        // lands on a deterministic-random core.
        let num_cores = self.core.cores.len();
        let spurious = self
            .core
            .injector
            .as_mut()
            .and_then(|inj| inj.spurious_irq().then(|| inj.spurious_target(num_cores)));
        if let Some(target) = spurious {
            let at = self.core.now;
            self.core.obs.emit(|| ObsEvent::FaultInjected {
                at,
                kind: FaultKind::SpuriousIrq,
            });
            self.deliver_irq(target, "timer_irq", None, at);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_events_pop_in_time_order_with_seq_tiebreak() {
        let mut heap = BinaryHeap::new();
        heap.push(HeapEvent {
            time: 30,
            seq: 1,
            kind: EventKind::Epoch,
        });
        heap.push(HeapEvent {
            time: 10,
            seq: 3,
            kind: EventKind::Epoch,
        });
        heap.push(HeapEvent {
            time: 10,
            seq: 2,
            kind: EventKind::TimerTick { core: 0 },
        });
        heap.push(HeapEvent {
            time: 20,
            seq: 4,
            kind: EventKind::Epoch,
        });
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.time, e.seq))
            .collect();
        assert_eq!(order, vec![(10, 2), (10, 3), (20, 4), (30, 1)]);
    }
}
