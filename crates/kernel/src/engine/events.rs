//! The events subsystem: the global timer/epoch/device event queue and
//! its deterministic ordering.
//!
//! The queue pops the earliest event first; ties break on insertion
//! sequence, which keeps runs bit-reproducible regardless of container
//! internals. It is a calendar-style [`EventQueue`]: a ring of
//! near-future time buckets absorbs the common short-horizon events
//! (timer ticks, device completions) with O(1) pushes and an O(1)
//! cached-minimum peek, while a [`BinaryHeap`] holds the far-future
//! tail beyond the ring's window.
//!
//! Popped events are routed to the owning [`super::component::Component`]
//! by the engine driver in `mod.rs`; this module owns only the container
//! and its ordering contract.

use crate::ids::SfId;
use schedtask_workload::DeviceKind;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event: something that happens at an absolute cycle,
/// independent of any core's private clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A device finished the request `waiter` blocked on.
    DeviceComplete {
        /// Which device class completed.
        device: DeviceKind,
        /// The SuperFunction waiting for the completion.
        waiter: SfId,
    },
    /// A spontaneous external interrupt attributed to benchmark `bench`.
    ExternalIrq {
        /// Index of the benchmark whose device raises the interrupt.
        bench: usize,
    },
    /// The periodic per-core timer interrupt.
    TimerTick {
        /// Target core.
        core: usize,
    },
    /// The scheduler's TAlloc epoch boundary.
    Epoch,
    /// A DMA/NIC-style device model's next interrupt arrival
    /// ([`super::device::DmaDevice`]).
    DeviceTick {
        /// Index into the engine's configured device models.
        device: usize,
    },
}

/// An entry in the global event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HeapEvent {
    pub(super) time: u64,
    pub(super) seq: u64,
    pub(crate) kind: EventKind,
}

impl Ord for HeapEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// True when `a` fires strictly before `b` in the queue's total order
/// (ascending time, then ascending insertion sequence). Spelled out
/// rather than via `Ord`, which is reversed for the max-heap.
#[inline]
fn earlier(a: &HeapEvent, b: &HeapEvent) -> bool {
    (a.time, a.seq) < (b.time, b.seq)
}

/// log2 of the bucket width in cycles (131 072-cycle buckets).
const BUCKET_SHIFT: u32 = 17;
/// Ring size; must stay 64 so slot occupancy fits one `u64` word.
const NUM_BUCKETS: usize = 64;

/// Where the cached minimum currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MinLoc {
    /// In ring bucket `.0`.
    Ring(usize),
    /// At the top of the far-future heap.
    Far,
}

/// Calendar-queue event container preserving exact (time, seq) order.
///
/// Near-future events — bucket number `time >> BUCKET_SHIFT` within the
/// window `[base, base + 64)` — go into a 64-slot ring of unordered
/// vectors; everything later goes into the reversed-[`BinaryHeap`]
/// fallback. The minimum is cached, so `peek` is a field read; a pop
/// removes the minimum from its slot by `swap_remove` and rescans only
/// the first occupied bucket (found via one word of per-slot occupancy
/// bits) plus the heap top. Events behind the window start (possible
/// only transiently) are parked in the window's first slot, which the
/// rescan always visits first, so the total order never breaks.
#[derive(Debug)]
pub(crate) struct EventQueue {
    buckets: Vec<Vec<HeapEvent>>,
    /// Bit `s` set iff `buckets[s]` is non-empty.
    nonempty: u64,
    far: BinaryHeap<HeapEvent>,
    /// Bucket number the ring window starts at.
    base: u64,
    ring_len: usize,
    min: Option<(HeapEvent, MinLoc)>,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            buckets: vec![Vec::new(); NUM_BUCKETS],
            nonempty: 0,
            far: BinaryHeap::new(),
            base: 0,
            ring_len: 0,
            min: None,
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.ring_len + self.far.len()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The earliest event, if any (O(1): cached).
    pub(crate) fn peek(&self) -> Option<&HeapEvent> {
        self.min.as_ref().map(|(m, _)| m)
    }

    /// Visits every queued event in no particular order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &HeapEvent> {
        self.buckets.iter().flatten().chain(self.far.iter())
    }

    pub(crate) fn push(&mut self, ev: HeapEvent) {
        let bucket = ev.time >> BUCKET_SHIFT;
        let loc = if bucket < self.base + NUM_BUCKETS as u64 {
            // A bucket before the window start (a straggler) parks in
            // the window's first slot; the rescan starts there.
            let slot = (bucket.max(self.base) % NUM_BUCKETS as u64) as usize;
            self.buckets[slot].push(ev);
            self.nonempty |= 1 << slot;
            self.ring_len += 1;
            MinLoc::Ring(slot)
        } else {
            self.far.push(ev);
            MinLoc::Far
        };
        match &self.min {
            Some((m, _)) if !earlier(&ev, m) => {}
            _ => self.min = Some((ev, loc)),
        }
    }

    /// Removes and returns the earliest event.
    pub(crate) fn pop(&mut self) -> Option<HeapEvent> {
        let (m, loc) = self.min?;
        match loc {
            MinLoc::Ring(slot) => {
                let bucket = &mut self.buckets[slot];
                let pos = bucket
                    .iter()
                    .position(|e| e.seq == m.seq)
                    .expect("cached minimum must be present in its ring bucket");
                bucket.swap_remove(pos);
                if bucket.is_empty() {
                    self.nonempty &= !(1 << slot);
                }
                self.ring_len -= 1;
            }
            MinLoc::Far => {
                self.far.pop();
            }
        }
        self.recompute_min();
        Some(m)
    }

    /// Recomputes the cached minimum after a pop: advance the window to
    /// the first occupied bucket, min-scan that bucket, and compare with
    /// the far-heap top (which can undercut the ring once the window has
    /// advanced past an old far event's bucket).
    fn recompute_min(&mut self) {
        if self.ring_len == 0 {
            if self.far.is_empty() {
                self.min = None;
                return;
            }
            // Ring drained: jump the window to the earliest far event
            // and pull every far event that now fits. The heap yields
            // ascending times, so the in-window events are a prefix.
            let earliest = self.far.peek().expect("checked non-empty");
            self.base = earliest.time >> BUCKET_SHIFT;
            while let Some(e) = self.far.peek() {
                if (e.time >> BUCKET_SHIFT) >= self.base + NUM_BUCKETS as u64 {
                    break;
                }
                let e = self.far.pop().expect("peeked");
                let slot = ((e.time >> BUCKET_SHIFT) % NUM_BUCKETS as u64) as usize;
                self.buckets[slot].push(e);
                self.nonempty |= 1 << slot;
                self.ring_len += 1;
            }
        }
        let start = (self.base % NUM_BUCKETS as u64) as u32;
        let offset = self.nonempty.rotate_right(start).trailing_zeros();
        debug_assert!(offset < 64, "ring_len > 0 implies an occupied slot");
        self.base += u64::from(offset);
        let slot = ((start + offset) as usize) % NUM_BUCKETS;
        let bucket = &self.buckets[slot];
        let mut best = bucket[0];
        for e in &bucket[1..] {
            if earlier(e, &best) {
                best = *e;
            }
        }
        let mut loc = MinLoc::Ring(slot);
        if let Some(f) = self.far.peek() {
            if earlier(f, &best) {
                best = *f;
                loc = MinLoc::Far;
            }
        }
        self.min = Some((best, loc));
    }
}

impl super::EngineCore {
    /// Enqueues `kind` at absolute cycle `time`.
    pub(super) fn schedule_event(&mut self, time: u64, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(HeapEvent {
            time,
            seq: self.event_seq,
            kind,
        });
    }
}

/// Benchmark-only wrapper over the internal calendar [`EventQueue`],
/// exposed (hidden from docs) so `benches/hotpath.rs` can time push/pop
/// without making the queue itself part of the public API.
#[doc(hidden)]
pub struct BenchEventQueue {
    queue: EventQueue,
    seq: u64,
}

impl Default for BenchEventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl BenchEventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        BenchEventQueue {
            queue: EventQueue::new(),
            seq: 0,
        }
    }

    /// Enqueues a generic event at absolute cycle `time`.
    pub fn push(&mut self, time: u64) {
        self.seq += 1;
        self.queue.push(HeapEvent {
            time,
            seq: self.seq,
            kind: EventKind::Epoch,
        });
    }

    /// Pops the earliest event's time, if any.
    pub fn pop(&mut self) -> Option<u64> {
        self.queue.pop().map(|e| e.time)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, seq: u64) -> HeapEvent {
        HeapEvent {
            time,
            seq,
            kind: EventKind::Epoch,
        }
    }

    #[test]
    fn events_pop_in_time_order_with_seq_tiebreak() {
        let mut q = EventQueue::new();
        q.push(ev(30, 1));
        q.push(ev(10, 3));
        q.push(HeapEvent {
            time: 10,
            seq: 2,
            kind: EventKind::TimerTick { core: 0 },
        });
        q.push(ev(20, 4));
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek().map(|e| (e.time, e.seq)), Some((10, 2)));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.seq))
            .collect();
        assert_eq!(order, vec![(10, 2), (10, 3), (20, 4), (30, 1)]);
        assert!(q.is_empty());
        assert!(q.peek().is_none());
    }

    #[test]
    fn far_future_events_cross_the_window_boundary_in_order() {
        let window = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        let mut q = EventQueue::new();
        // One event per region: ring, just past the window (far), and
        // several windows out (far), interleaved with ring refills.
        q.push(ev(window * 3, 1));
        q.push(ev(5, 2));
        q.push(ev(window + 1, 3));
        assert_eq!(q.pop().map(|e| e.seq), Some(2));
        // After draining the ring the window jumps to the far events.
        q.push(ev(window + 2, 4));
        assert_eq!(q.pop().map(|e| e.seq), Some(3));
        assert_eq!(q.pop().map(|e| e.seq), Some(4));
        assert_eq!(q.pop().map(|e| e.seq), Some(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn straggler_behind_the_window_start_pops_first() {
        let mut q = EventQueue::new();
        // Advance the window far from zero.
        let t = 100u64 << BUCKET_SHIFT;
        q.push(ev(t, 1));
        q.push(ev(t + 7, 2));
        assert_eq!(q.pop().map(|e| e.seq), Some(1));
        // A push earlier than the window start must still pop next.
        q.push(ev(3, 3));
        assert_eq!(q.peek().map(|e| e.seq), Some(3));
        assert_eq!(q.pop().map(|e| e.seq), Some(3));
        assert_eq!(q.pop().map(|e| e.seq), Some(2));
    }

    #[test]
    fn iter_visits_ring_and_far_events() {
        let window = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        let mut q = EventQueue::new();
        q.push(ev(1, 1));
        q.push(ev(window * 2, 2));
        let mut seqs: Vec<u64> = q.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn matches_binary_heap_on_mixed_streams() {
        // Deterministic pseudo-random interleavings of pushes and pops,
        // spanning bucket boundaries and the far-future heap, checked
        // against the reference container the engine used to rely on.
        let mut rng = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut q = EventQueue::new();
        let mut reference = std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..20_000 {
            let r = next();
            if r % 5 < 3 || q.is_empty() {
                // Mostly-increasing schedule times with a heavy near tail
                // and occasional multi-window jumps, like the engine's.
                let delta = match r % 7 {
                    0 => (NUM_BUCKETS as u64) << (BUCKET_SHIFT + 2),
                    1..=3 => next() % (1 << BUCKET_SHIFT),
                    _ => next() % (4 << BUCKET_SHIFT),
                };
                seq += 1;
                let e = ev(now + delta, seq);
                q.push(e);
                reference.push(e);
            } else {
                let got = q.pop().expect("non-empty");
                let want = reference.pop().expect("same length");
                assert_eq!((got.time, got.seq), (want.time, want.seq));
                now = got.time;
            }
            assert_eq!(q.len(), reference.len());
            assert_eq!(
                q.peek().map(|e| (e.time, e.seq)),
                reference.peek().map(|e| (e.time, e.seq))
            );
        }
        while let Some(got) = q.pop() {
            let want = reference.pop().expect("same length");
            assert_eq!((got.time, got.seq), (want.time, want.seq));
        }
        assert!(reference.is_empty());
    }
}
