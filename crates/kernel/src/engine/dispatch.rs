//! The dispatch subsystem: the TMigrate/TAlloc hook sites.
//!
//! A core step is "service an interrupt, else ask the scheduler, else run
//! one quantum"; quantum boundaries (application burst end, blocking
//! system call, SuperFunction completion) land here, and every one of
//! them is a point where the paper's scheduler hooks fire — enqueue,
//! pick_next, on_switch_out, on_complete, and the overhead charges.

use super::machine::Boundary;
use super::{Engine, EngineCore, EventKind, KERNEL_TID};
use crate::error::EngineError;
use crate::faults::FaultInjector;
use crate::ids::{CoreId, SfId, ThreadId};
use crate::observe::class_of;
use crate::scheduler::{SchedEvent, SwitchReason};
use crate::superfunction::{SfBody, SfState, SuperFunction};
use schedtask_obs::{FaultKind, ObsEvent, SfClass, SpanKind};
use schedtask_workload::{DeviceKind, FootprintWalker, SfCategory, WalkParams};
use std::sync::Arc;

impl EngineCore {
    /// Marks `sf` running on core `c`, counting thread migrations and
    /// resampling the application burst if needed.
    pub(super) fn prepare_dispatch(&mut self, c: usize, sf_id: SfId) -> Result<(), EngineError> {
        let sf = self
            .sfs
            .get_mut(&sf_id)
            .ok_or(EngineError::UnknownSuperFunction(sf_id))?;
        debug_assert!(
            matches!(sf.state, SfState::Runnable | SfState::Preempted),
            "dispatching SF in state {:?}",
            sf.state
        );
        sf.state = SfState::Running;
        let tid = sf.tid;
        let category = sf.category();

        if let SfBody::Application { burst_left } = &mut sf.body {
            if *burst_left == 0 {
                let t = &mut self.threads[tid.0 as usize];
                let spec = &self.instances[t.benchmark].spec;
                *burst_left = spec.app_burst.sample(&mut t.rng).max(1);
            }
        }

        // Thread-migration accounting (Figure 10): application and
        // system-call SuperFunctions execute in thread context.
        if tid != KERNEL_TID && matches!(category, SfCategory::Application | SfCategory::SystemCall)
        {
            let t = &mut self.threads[tid.0 as usize];
            if let Some(prev) = t.last_core {
                if prev.0 != c {
                    self.stats.thread_migrations += 1;
                    let cost = self.cfg.migration_cost_cycles;
                    self.cores[c].clock += cost;
                    self.stats.core_time[c].busy_cycles += cost;
                    let at = self.cores[c].clock;
                    self.obs.emit(|| ObsEvent::Migrated {
                        at,
                        tid: tid.0,
                        from: prev.0 as u32,
                        to: c as u32,
                    });
                }
            }
            self.threads[tid.0 as usize].last_core = Some(CoreId(c));
        }

        self.cores[c].current = Some(sf_id);
        let at = self.cores[c].clock;
        self.obs.emit(|| ObsEvent::Dispatched {
            at,
            sf: sf_id.0,
            core: c as u32,
        });
        self.obs
            .span_enter(Some(c as u32), SpanKind::Sf(class_of(category)), at);
        Ok(())
    }

    /// Closes the SF execution-segment span open on core `c` (no-op on
    /// the unobserved fast path). `sf_id` must still exist.
    pub(super) fn span_exit_current(&self, c: usize, sf_id: SfId) {
        if self.obs.is_enabled() {
            let class = class_of(self.sf(sf_id).category());
            let at = self.cores[c].clock;
            self.obs.span_exit(Some(c as u32), SpanKind::Sf(class), at);
        }
    }

    /// Creates a system-call SuperFunction for `tid` on core `c`.
    pub(super) fn create_syscall_sf(
        &mut self,
        c: usize,
        tid: ThreadId,
        parent: SfId,
    ) -> Result<SfId, EngineError> {
        let t = &mut self.threads[tid.0 as usize];
        let inst = &self.instances[t.benchmark];
        let progress = self.syscalls_completed[t.benchmark];
        let name = inst.sample_syscall_at(&mut t.rng, progress);
        let spec = self
            .catalog
            .try_syscall(name)
            .ok_or_else(|| EngineError::UnknownService {
                kind: "syscall",
                name: name.to_string(),
            })?;
        let len = spec.len.sample(&mut t.rng).max(1);
        let block_mult = inst.spec.blocking_multiplier;
        let block = spec.blocking.and_then(|b| {
            use rand::Rng;
            if t.rng.gen_bool((b.probability * block_mult).clamp(0.0, 1.0)) {
                let at = (len as f64 * (1.0 - b.at_fraction)) as u64;
                Some((at.min(len - 1), b.device))
            } else {
                None
            }
        });
        let id = self.id_alloc.next(CoreId(c));
        let seed = self.cfg.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let walker = FootprintWalker::new(
            Arc::clone(&spec.code),
            Arc::clone(&spec.shared_data),
            Arc::clone(&t.private_data),
            WalkParams::default(),
            seed,
        );
        let sf_type = spec.super_func_type();
        let sf = SuperFunction {
            id,
            sf_type,
            parent: Some(parent),
            tid,
            state: SfState::Runnable,
            body: SfBody::Syscall {
                remaining: len,
                block,
            },
            walker,
            cycles_used: 0,
            instructions_retired: 0,
            runnable_since: self.cores[c].clock,
        };
        self.sfs.insert(id, sf);
        let at = self.cores[c].clock;
        self.obs.emit(|| ObsEvent::SfCreated {
            at,
            sf: id.0,
            sf_type: sf_type.raw(),
            class: SfClass::SystemCall,
            tid: tid.0,
        });
        Ok(id)
    }
}

impl Engine {
    /// Advances core `c` by one step: service an interrupt, else ask the
    /// scheduler for work, else execute one quantum and handle whatever
    /// boundary it reached.
    pub(super) fn step_core(&mut self, c: usize) -> Result<(), EngineError> {
        // 0. Fault injection: the core stalls (SMM excursion / frequency
        // dip). Queues and pending interrupts stay intact; time is lost.
        if let Some(stall) = self
            .core
            .injector
            .as_mut()
            .and_then(FaultInjector::stall_core)
        {
            self.core.cores[c].clock += stall;
            self.core.stats.core_time[c].idle_cycles += stall;
            let at = self.core.cores[c].clock;
            self.core.obs.emit(|| ObsEvent::FaultInjected {
                at,
                kind: FaultKind::CoreStall,
            });
            return Ok(());
        }

        // 1. Service a pending interrupt: preempt whatever runs.
        if self.service_pending_irq(c)? {
            return Ok(());
        }

        // 2. Nothing running? Ask the scheduler.
        if self.core.cores[c].current.is_none() {
            match self.scheduler.pick_next(&mut self.core, CoreId(c))? {
                Some(sf) => {
                    self.core.prepare_dispatch(c, sf)?;
                    self.scheduler.on_dispatch(&mut self.core, CoreId(c), sf);
                }
                None => self.core.go_idle(c),
            }
            return Ok(());
        }

        // 3. Execute one quantum.
        match self.core.execute_quantum(c)? {
            Boundary::None => Ok(()),
            Boundary::AppBurstEnd => self.on_app_burst_end(c),
            Boundary::Blocked(device) => self.on_blocked(c, device),
            Boundary::Completed => self.on_completed(c),
        }
    }

    fn on_app_burst_end(&mut self, c: usize) -> Result<(), EngineError> {
        let app_sf = self.core.cores[c]
            .current
            .take()
            .ok_or(EngineError::NoCurrentSf { core: CoreId(c) })?;
        let tid = self.core.try_sf(app_sf)?.tid;
        self.core.span_exit_current(c, app_sf);
        self.core
            .sfs
            .get_mut(&app_sf)
            .ok_or(EngineError::UnknownSuperFunction(app_sf))?
            .state = SfState::PausedForChild;
        self.scheduler.on_switch_out(
            &mut self.core,
            CoreId(c),
            app_sf,
            SwitchReason::PausedForChild,
        );

        let syscall_sf = self.core.create_syscall_sf(c, tid, app_sf)?;
        let overhead =
            self.scheduler
                .overhead_for(&self.core, SchedEvent::SfStart, Some(syscall_sf));
        self.core.charge_sched_overhead(c, overhead);
        self.scheduler
            .enqueue(&mut self.core, syscall_sf, Some(CoreId(c)))?;
        self.core.wake_all_idle();
        Ok(())
    }

    fn on_blocked(&mut self, c: usize, device: DeviceKind) -> Result<(), EngineError> {
        let sf = self.core.cores[c]
            .current
            .take()
            .ok_or(EngineError::NoCurrentSf { core: CoreId(c) })?;
        self.core.span_exit_current(c, sf);
        self.core.try_sf_mut(sf)?.state = SfState::Waiting;
        let at = self.core.cores[c].clock;
        self.core.obs.emit(|| ObsEvent::Blocked { at, sf: sf.0 });
        self.scheduler
            .on_switch_out(&mut self.core, CoreId(c), sf, SwitchReason::Blocked);
        self.scheduler.on_block(&mut self.core, sf);
        let overhead = self
            .scheduler
            .overhead_for(&self.core, SchedEvent::SfPause, Some(sf));
        self.core.charge_sched_overhead(c, overhead);

        let latency = match device {
            DeviceKind::Disk => self.core.cfg.disk_latency_cycles,
            DeviceKind::Network => self.core.cfg.network_latency_cycles,
            DeviceKind::Timer => self.core.cfg.timer_sleep_cycles,
        };
        let when = self.core.cores[c].clock + latency.max(1);
        self.core
            .schedule_event(when, EventKind::DeviceComplete { device, waiter: sf });
        Ok(())
    }

    fn on_completed(&mut self, c: usize) -> Result<(), EngineError> {
        let sf_id = self.core.cores[c]
            .current
            .take()
            .ok_or(EngineError::NoCurrentSf { core: CoreId(c) })?;
        self.core.span_exit_current(c, sf_id);
        let at = self.core.cores[c].clock;
        self.core
            .obs
            .emit(|| ObsEvent::Completed { at, sf: sf_id.0 });
        let overhead = self
            .scheduler
            .overhead_for(&self.core, SchedEvent::SfStop, Some(sf_id));
        self.core.charge_sched_overhead(c, overhead);
        self.core.try_sf_mut(sf_id)?.state = SfState::Done;
        self.scheduler
            .on_switch_out(&mut self.core, CoreId(c), sf_id, SwitchReason::Completed);
        self.scheduler.on_complete(&mut self.core, sf_id);

        let sf = self
            .core
            .sfs
            .remove(&sf_id)
            .ok_or(EngineError::UnknownSuperFunction(sf_id))?;
        if let Some(state) = self.sanitizer.as_mut() {
            state.note_completed(sf.instructions_retired);
        }
        match sf.body {
            SfBody::Syscall { .. } => {
                // Operation accounting: one application-level operation
                // per `op_syscalls` completed system calls of the
                // benchmark.
                let bench = self.core.threads[sf.tid.0 as usize].benchmark;
                self.core.op_progress[bench] += 1;
                self.core.syscalls_completed[bench] += 1;
                if self.core.op_progress[bench] >= self.core.instances[bench].spec.op_syscalls {
                    self.core.op_progress[bench] = 0;
                    self.core.stats.ops_per_benchmark[bench] += 1;
                }
                // Return to the parent (the paper's parentSuperFuncPtr
                // hand-off in TMigrate).
                let parent = sf.parent.ok_or_else(|| EngineError::StateCorruption {
                    detail: format!("syscall {sf_id} completed without a parent"),
                })?;
                let p = self
                    .core
                    .sfs
                    .get_mut(&parent)
                    .ok_or(EngineError::UnknownSuperFunction(parent))?;
                debug_assert_eq!(p.state, SfState::PausedForChild);
                p.state = SfState::Runnable;
                p.runnable_since = self.core.cores[c].clock;
                self.scheduler
                    .enqueue(&mut self.core, parent, Some(CoreId(c)))?;
            }
            SfBody::Interrupt {
                bottom_half,
                waiter,
                ..
            } => {
                if let Some(bh_name) = bottom_half {
                    let bh = self.core.create_bottom_half_sf(c, bh_name, waiter)?;
                    let overhead =
                        self.scheduler
                            .overhead_for(&self.core, SchedEvent::SfStart, Some(bh));
                    self.core.charge_sched_overhead(c, overhead);
                    self.scheduler
                        .enqueue(&mut self.core, bh, Some(CoreId(c)))?;
                } else if let Some(w) = waiter {
                    self.wake_sf(c, w)?;
                }
                // Resume whatever the interrupt preempted.
                if let Some(prev) = self.core.cores[c].preempt_stack.pop() {
                    self.core.prepare_dispatch(c, prev)?;
                    self.scheduler.on_dispatch(&mut self.core, CoreId(c), prev);
                }
            }
            SfBody::BottomHalf { wake, .. } => {
                if let Some(w) = wake {
                    self.wake_sf(c, w)?;
                }
            }
            SfBody::Application { .. } => {
                return Err(EngineError::StateCorruption {
                    detail: format!("application {sf_id} reached Completed boundary"),
                });
            }
        }
        self.core.wake_all_idle();
        Ok(())
    }

    fn wake_sf(&mut self, c: usize, sf: SfId) -> Result<(), EngineError> {
        let overhead = self
            .scheduler
            .overhead_for(&self.core, SchedEvent::SfWakeup, Some(sf));
        self.core.charge_sched_overhead(c, overhead);
        let clock = self.core.cores[c].clock;
        let s = self.core.try_sf_mut(sf)?;
        debug_assert_eq!(s.state, SfState::Waiting);
        s.state = SfState::Runnable;
        s.runnable_since = clock;
        self.scheduler
            .enqueue(&mut self.core, sf, Some(CoreId(c)))?;
        self.core.wake_all_idle();
        Ok(())
    }
}
