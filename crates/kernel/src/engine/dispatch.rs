//! The dispatch subsystem: the TMigrate/TAlloc hook sites.
//!
//! A core step is "service an interrupt, else ask the scheduler, else run
//! one quantum"; quantum boundaries (application burst end, blocking
//! system call, SuperFunction completion) land here, and every one of
//! them is a point where the paper's scheduler hooks fire — enqueue,
//! pick_next, on_switch_out, on_complete, and the overhead charges.

use super::machine::Boundary;
use super::{EngineCore, EventKind, KERNEL_TID};
use crate::error::EngineError;
use crate::faults::FaultInjector;
use crate::ids::{CoreId, SfId, ThreadId};
use crate::observe::class_of;
use crate::scheduler::{SchedEvent, Scheduler, SwitchReason};
use crate::superfunction::{SfBody, SfState, SuperFunction};
use schedtask_obs::{FaultKind, ObsEvent, SfClass, SpanKind};
use schedtask_workload::{DeviceKind, FootprintWalker, SfCategory, WalkParams};
use std::sync::Arc;

impl EngineCore {
    /// Marks `sf` running on core `c`, counting thread migrations and
    /// resampling the application burst if needed.
    pub(super) fn prepare_dispatch(&mut self, c: usize, sf_id: SfId) -> Result<(), EngineError> {
        let sf = self
            .sfs
            .get_mut(&sf_id)
            .ok_or(EngineError::UnknownSuperFunction(sf_id))?;
        debug_assert!(
            matches!(sf.state, SfState::Runnable | SfState::Preempted),
            "dispatching SF in state {:?}",
            sf.state
        );
        sf.state = SfState::Running;
        let tid = sf.tid;
        let category = sf.category();

        if let SfBody::Application { burst_left } = &mut sf.body {
            if *burst_left == 0 {
                let t = &mut self.threads[tid.0 as usize];
                let spec = &self.instances[t.benchmark].spec;
                *burst_left = spec.app_burst.sample(&mut t.rng).max(1);
            }
        }

        // Thread-migration accounting (Figure 10): application and
        // system-call SuperFunctions execute in thread context.
        if tid != KERNEL_TID && matches!(category, SfCategory::Application | SfCategory::SystemCall)
        {
            let t = &mut self.threads[tid.0 as usize];
            if let Some(prev) = t.last_core {
                if prev.0 != c {
                    self.stats.thread_migrations += 1;
                    let cost = self.cfg.migration_cost_cycles;
                    self.cores[c].clock += cost;
                    self.stats.core_time[c].busy_cycles += cost;
                    let at = self.cores[c].clock;
                    self.obs.emit(|| ObsEvent::Migrated {
                        at,
                        tid: tid.0,
                        from: prev.0 as u32,
                        to: c as u32,
                    });
                }
            }
            self.threads[tid.0 as usize].last_core = Some(CoreId(c));
        }

        self.cores[c].current = Some(sf_id);
        let at = self.cores[c].clock;
        self.obs.emit(|| ObsEvent::Dispatched {
            at,
            sf: sf_id.0,
            core: c as u32,
        });
        self.obs
            .span_enter(Some(c as u32), SpanKind::Sf(class_of(category)), at);
        Ok(())
    }

    /// Closes the SF execution-segment span open on core `c` (no-op on
    /// the unobserved fast path). `sf_id` must still exist.
    pub(super) fn span_exit_current(&self, c: usize, sf_id: SfId) {
        if self.obs.is_enabled() {
            let class = class_of(self.sf(sf_id).category());
            let at = self.cores[c].clock;
            self.obs.span_exit(Some(c as u32), SpanKind::Sf(class), at);
        }
    }

    /// Creates a system-call SuperFunction for `tid` on core `c`.
    pub(super) fn create_syscall_sf(
        &mut self,
        c: usize,
        tid: ThreadId,
        parent: SfId,
    ) -> Result<SfId, EngineError> {
        let t = &mut self.threads[tid.0 as usize];
        let inst = &self.instances[t.benchmark];
        let progress = self.syscalls_completed[t.benchmark];
        let name = inst.sample_syscall_at(&mut t.rng, progress);
        let spec = self
            .catalog
            .try_syscall(name)
            .ok_or_else(|| EngineError::UnknownService {
                kind: "syscall",
                name: name.to_string(),
            })?;
        let len = spec.len.sample(&mut t.rng).max(1);
        let block_mult = inst.spec.blocking_multiplier;
        let block = spec.blocking.and_then(|b| {
            use rand::Rng;
            if t.rng.gen_bool((b.probability * block_mult).clamp(0.0, 1.0)) {
                let at = (len as f64 * (1.0 - b.at_fraction)) as u64;
                Some((at.min(len - 1), b.device))
            } else {
                None
            }
        });
        let id = self.id_alloc.next(CoreId(c));
        let seed = self.cfg.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let walker = FootprintWalker::new(
            Arc::clone(&spec.code),
            Arc::clone(&spec.shared_data),
            Arc::clone(&t.private_data),
            WalkParams::default(),
            seed,
        );
        let sf_type = spec.super_func_type();
        let sf = SuperFunction {
            id,
            sf_type,
            parent: Some(parent),
            tid,
            state: SfState::Runnable,
            body: SfBody::Syscall {
                remaining: len,
                block,
            },
            walker,
            cycles_used: 0,
            instructions_retired: 0,
            runnable_since: self.cores[c].clock,
        };
        self.sfs.insert(id, sf);
        let at = self.cores[c].clock;
        self.obs.emit(|| ObsEvent::SfCreated {
            at,
            sf: id.0,
            sf_type: sf_type.raw(),
            class: SfClass::SystemCall,
            tid: tid.0,
        });
        Ok(id)
    }
}

/// Advances core `c` by one step: service an interrupt, else ask the
/// scheduler for work, else execute one quantum and handle whatever
/// boundary it reached.
///
/// A free function over `(EngineCore, Scheduler)` rather than an
/// `Engine` method so the [`super::component::Component`] tick path can
/// call it with the engine's fields split-borrowed.
pub(super) fn step_core(
    core: &mut EngineCore,
    sched: &mut dyn Scheduler,
    c: usize,
) -> Result<(), EngineError> {
    // 0. Fault injection: the core stalls (SMM excursion / frequency
    // dip). Queues and pending interrupts stay intact; time is lost.
    if let Some(stall) = core.injector.as_mut().and_then(FaultInjector::stall_core) {
        core.cores[c].clock += stall;
        core.stats.core_time[c].idle_cycles += stall;
        let at = core.cores[c].clock;
        core.obs.emit(|| ObsEvent::FaultInjected {
            at,
            kind: FaultKind::CoreStall,
        });
        return Ok(());
    }

    // 1. Service a pending interrupt: preempt whatever runs.
    if super::interrupts::service_pending_irq(core, sched, c)? {
        return Ok(());
    }

    // 2. Nothing running? Ask the scheduler.
    if core.cores[c].current.is_none() {
        match sched.pick_next(core, CoreId(c))? {
            Some(sf) => {
                core.prepare_dispatch(c, sf)?;
                sched.on_dispatch(core, CoreId(c), sf);
            }
            None => core.go_idle(c),
        }
        return Ok(());
    }

    // 3. Execute one quantum.
    match core.execute_quantum(c)? {
        Boundary::None => Ok(()),
        Boundary::AppBurstEnd => on_app_burst_end(core, sched, c),
        Boundary::Blocked(device) => on_blocked(core, sched, c, device),
        Boundary::Completed => on_completed(core, sched, c),
    }
}

fn on_app_burst_end(
    core: &mut EngineCore,
    sched: &mut dyn Scheduler,
    c: usize,
) -> Result<(), EngineError> {
    let app_sf = core.cores[c]
        .current
        .take()
        .ok_or(EngineError::NoCurrentSf { core: CoreId(c) })?;
    let tid = core.try_sf(app_sf)?.tid;
    core.span_exit_current(c, app_sf);
    core.sfs
        .get_mut(&app_sf)
        .ok_or(EngineError::UnknownSuperFunction(app_sf))?
        .state = SfState::PausedForChild;
    sched.on_switch_out(core, CoreId(c), app_sf, SwitchReason::PausedForChild);

    let syscall_sf = core.create_syscall_sf(c, tid, app_sf)?;
    let overhead = sched.overhead_for(core, SchedEvent::SfStart, Some(syscall_sf));
    core.charge_sched_overhead(c, overhead);
    sched.enqueue(core, syscall_sf, Some(CoreId(c)))?;
    core.wake_all_idle();
    Ok(())
}

fn on_blocked(
    core: &mut EngineCore,
    sched: &mut dyn Scheduler,
    c: usize,
    device: DeviceKind,
) -> Result<(), EngineError> {
    let sf = core.cores[c]
        .current
        .take()
        .ok_or(EngineError::NoCurrentSf { core: CoreId(c) })?;
    core.span_exit_current(c, sf);
    core.try_sf_mut(sf)?.state = SfState::Waiting;
    let at = core.cores[c].clock;
    core.obs.emit(|| ObsEvent::Blocked { at, sf: sf.0 });
    sched.on_switch_out(core, CoreId(c), sf, SwitchReason::Blocked);
    sched.on_block(core, sf);
    let overhead = sched.overhead_for(core, SchedEvent::SfPause, Some(sf));
    core.charge_sched_overhead(c, overhead);

    let latency = match device {
        DeviceKind::Disk => core.cfg.disk_latency_cycles,
        DeviceKind::Network => core.cfg.network_latency_cycles,
        DeviceKind::Timer => core.cfg.timer_sleep_cycles,
    };
    let when = core.cores[c].clock + latency.max(1);
    core.schedule_event(when, EventKind::DeviceComplete { device, waiter: sf });
    Ok(())
}

fn on_completed(
    core: &mut EngineCore,
    sched: &mut dyn Scheduler,
    c: usize,
) -> Result<(), EngineError> {
    let sf_id = core.cores[c]
        .current
        .take()
        .ok_or(EngineError::NoCurrentSf { core: CoreId(c) })?;
    core.span_exit_current(c, sf_id);
    let at = core.cores[c].clock;
    core.obs.emit(|| ObsEvent::Completed { at, sf: sf_id.0 });
    let overhead = sched.overhead_for(core, SchedEvent::SfStop, Some(sf_id));
    core.charge_sched_overhead(c, overhead);
    core.try_sf_mut(sf_id)?.state = SfState::Done;
    sched.on_switch_out(core, CoreId(c), sf_id, SwitchReason::Completed);
    sched.on_complete(core, sf_id);

    let sf = core
        .sfs
        .remove(&sf_id)
        .ok_or(EngineError::UnknownSuperFunction(sf_id))?;
    core.retired_completed += sf.instructions_retired;
    match sf.body {
        SfBody::Syscall { .. } => {
            // Operation accounting: one application-level operation
            // per `op_syscalls` completed system calls of the
            // benchmark.
            let bench = core.threads[sf.tid.0 as usize].benchmark;
            core.op_progress[bench] += 1;
            core.syscalls_completed[bench] += 1;
            if core.op_progress[bench] >= core.instances[bench].spec.op_syscalls {
                core.op_progress[bench] = 0;
                core.stats.ops_per_benchmark[bench] += 1;
            }
            // Return to the parent (the paper's parentSuperFuncPtr
            // hand-off in TMigrate).
            let parent = sf.parent.ok_or_else(|| EngineError::StateCorruption {
                detail: format!("syscall {sf_id} completed without a parent"),
            })?;
            let p = core
                .sfs
                .get_mut(&parent)
                .ok_or(EngineError::UnknownSuperFunction(parent))?;
            debug_assert_eq!(p.state, SfState::PausedForChild);
            p.state = SfState::Runnable;
            p.runnable_since = core.cores[c].clock;
            sched.enqueue(core, parent, Some(CoreId(c)))?;
        }
        SfBody::Interrupt {
            bottom_half,
            waiter,
            ..
        } => {
            if let Some(bh_name) = bottom_half {
                let bh = core.create_bottom_half_sf(c, bh_name, waiter)?;
                let overhead = sched.overhead_for(core, SchedEvent::SfStart, Some(bh));
                core.charge_sched_overhead(c, overhead);
                sched.enqueue(core, bh, Some(CoreId(c)))?;
            } else if let Some(w) = waiter {
                wake_sf(core, sched, c, w)?;
            }
            // Resume whatever the interrupt preempted.
            if let Some(prev) = core.cores[c].preempt_stack.pop() {
                core.prepare_dispatch(c, prev)?;
                sched.on_dispatch(core, CoreId(c), prev);
            }
        }
        SfBody::BottomHalf { wake, .. } => {
            if let Some(w) = wake {
                wake_sf(core, sched, c, w)?;
            }
        }
        SfBody::Application { .. } => {
            return Err(EngineError::StateCorruption {
                detail: format!("application {sf_id} reached Completed boundary"),
            });
        }
    }
    core.wake_all_idle();
    Ok(())
}

fn wake_sf(
    core: &mut EngineCore,
    sched: &mut dyn Scheduler,
    c: usize,
    sf: SfId,
) -> Result<(), EngineError> {
    let overhead = sched.overhead_for(core, SchedEvent::SfWakeup, Some(sf));
    core.charge_sched_overhead(c, overhead);
    let clock = core.cores[c].clock;
    let s = core.try_sf_mut(sf)?;
    debug_assert_eq!(s.state, SfState::Waiting);
    s.state = SfState::Runnable;
    s.runnable_since = clock;
    sched.enqueue(core, sf, Some(CoreId(c)))?;
    core.wake_all_idle();
    Ok(())
}
