//! The interrupts subsystem: the device/IRQ/bottom-half model.
//!
//! Interrupts are delivered to a core's pending queue ([`PendingIrq`])
//! and serviced at the next core step by preempting whatever runs; the
//! interrupt and deferred-work (bottom-half) SuperFunctions are minted
//! here from the OS service catalog.

use super::{EngineCore, KERNEL_TID};
use crate::error::EngineError;
use crate::ids::{CoreId, SfId};
use crate::scheduler::{SchedEvent, Scheduler, SwitchReason};
use crate::superfunction::{SfBody, SfState, SuperFunction};
use schedtask_obs::{ObsEvent, SfClass};
use schedtask_workload::{Footprint, FootprintWalker, WalkParams};
use std::sync::Arc;

/// An interrupt delivered to a core but not yet serviced.
#[derive(Debug, Clone)]
pub(crate) struct PendingIrq {
    pub(super) name: &'static str,
    pub(crate) waiter: Option<SfId>,
    pub(super) raised_at: u64,
}

impl EngineCore {
    /// Creates an interrupt SuperFunction on core `c`.
    pub(super) fn create_interrupt_sf(
        &mut self,
        c: usize,
        irq_name: &'static str,
        waiter: Option<SfId>,
    ) -> Result<SfId, EngineError> {
        let spec =
            self.catalog
                .try_interrupt(irq_name)
                .ok_or_else(|| EngineError::UnknownService {
                    kind: "interrupt",
                    name: irq_name.to_string(),
                })?;
        let len = spec.len.sample(&mut self.rng).max(1);
        let id = self.id_alloc.next(CoreId(c));
        let seed = self.cfg.seed ^ id.0.wrapping_mul(0xD134_2543_DE82_EF95);
        let tid = match waiter {
            Some(w) => self.try_sf(w)?.tid,
            None => KERNEL_TID,
        };
        let walker = FootprintWalker::new(
            Arc::clone(&spec.code),
            Arc::clone(&spec.shared_data),
            Arc::new(Footprint::new()),
            WalkParams::default(),
            seed,
        );
        let sf = SuperFunction {
            id,
            sf_type: spec.super_func_type(),
            parent: None,
            tid,
            state: SfState::Runnable,
            body: SfBody::Interrupt {
                remaining: len,
                bottom_half: spec.bottom_half,
                waiter,
            },
            walker,
            cycles_used: 0,
            instructions_retired: 0,
            runnable_since: self.cores[c].clock,
        };
        let sf_type = sf.sf_type;
        self.sfs.insert(id, sf);
        let at = self.cores[c].clock;
        self.obs.emit(|| ObsEvent::SfCreated {
            at,
            sf: id.0,
            sf_type: sf_type.raw(),
            class: SfClass::Interrupt,
            tid: tid.0,
        });
        Ok(id)
    }

    /// Creates a bottom-half SuperFunction on core `c`.
    pub(super) fn create_bottom_half_sf(
        &mut self,
        c: usize,
        name: &'static str,
        wake: Option<SfId>,
    ) -> Result<SfId, EngineError> {
        let spec =
            self.catalog
                .try_bottom_half(name)
                .ok_or_else(|| EngineError::UnknownService {
                    kind: "bottom half",
                    name: name.to_string(),
                })?;
        let len = spec.len.sample(&mut self.rng).max(1);
        let id = self.id_alloc.next(CoreId(c));
        let seed = self.cfg.seed ^ id.0.wrapping_mul(0xA076_1D64_78BD_642F);
        let tid = match wake {
            Some(w) => self.try_sf(w)?.tid,
            None => KERNEL_TID,
        };
        let walker = FootprintWalker::new(
            Arc::clone(&spec.code),
            Arc::clone(&spec.shared_data),
            Arc::new(Footprint::new()),
            WalkParams::default(),
            seed,
        );
        let sf = SuperFunction {
            id,
            sf_type: spec.super_func_type(),
            parent: None,
            tid,
            state: SfState::Runnable,
            body: SfBody::BottomHalf {
                remaining: len,
                wake,
            },
            walker,
            cycles_used: 0,
            instructions_retired: 0,
            runnable_since: self.cores[c].clock,
        };
        let sf_type = sf.sf_type;
        self.sfs.insert(id, sf);
        let at = self.cores[c].clock;
        self.obs.emit(|| ObsEvent::SfCreated {
            at,
            sf: id.0,
            sf_type: sf_type.raw(),
            class: SfClass::BottomHalf,
            tid: tid.0,
        });
        Ok(id)
    }
}

/// Queues an interrupt on core `c` and wakes the core if idle.
///
/// Free function (not an `Engine` method) so device components can
/// deliver interrupts through a split-borrowed [`EngineCore`].
pub(super) fn deliver_irq(
    core: &mut EngineCore,
    c: usize,
    name: &'static str,
    waiter: Option<SfId>,
    raised_at: u64,
) {
    core.cores[c].pending_irqs.push_back(PendingIrq {
        name,
        waiter,
        raised_at,
    });
    core.wake_core(c);
}

/// Services the head of core `c`'s pending-interrupt queue, if any:
/// preempts the current SuperFunction, mints the interrupt
/// SuperFunction, and dispatches it. Returns `true` when an
/// interrupt was serviced (the core step is then complete).
pub(super) fn service_pending_irq(
    core: &mut EngineCore,
    sched: &mut dyn Scheduler,
    c: usize,
) -> Result<bool, EngineError> {
    let Some(pending) = core.cores[c].pending_irqs.pop_front() else {
        return Ok(false);
    };
    if let Some(cur) = core.cores[c].current.take() {
        core.span_exit_current(c, cur);
        let at = core.cores[c].clock;
        core.obs.emit(|| ObsEvent::Preempted {
            at,
            sf: cur.0,
            core: c as u32,
        });
        core.sfs
            .get_mut(&cur)
            .ok_or(EngineError::UnknownSuperFunction(cur))?
            .state = SfState::Preempted;
        core.cores[c].preempt_stack.push(cur);
        sched.on_switch_out(core, CoreId(c), cur, SwitchReason::Preempted);
    }
    let clock = core.cores[c].clock;
    core.stats.interrupts_delivered += 1;
    core.stats.interrupt_latency_cycles += clock.saturating_sub(pending.raised_at);
    let sf = core.create_interrupt_sf(c, pending.name, pending.waiter)?;
    let overhead = sched.overhead_for(core, SchedEvent::SfStart, Some(sf));
    core.charge_sched_overhead(c, overhead);
    core.prepare_dispatch(c, sf)?;
    sched.on_dispatch(core, CoreId(c), sf);
    Ok(true)
}
