//! The machine subsystem: per-core execution state (private clocks,
//! preempt stacks, the hardware Page-heatmap registers of Section 5.4),
//! the [`EngineCore`] context handed to every scheduler hook, and
//! quantum execution through the modelled cache hierarchy.
//!
//! Narrow API to the other subsystems: sibling modules read and update
//! `pub(super)` state through [`EngineCore`], but everything that touches
//! the memory system, the heatmap registers, or the per-quantum
//! instruction walk lives here.

use super::events::EventQueue;
use super::interrupts::PendingIrq;
use super::KERNEL_TID;
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::faults::FaultInjector;
use crate::ids::{CoreId, SfId, SfIdAllocator, ThreadId};
use crate::observe::ObserverSet;
use crate::stats::SimStats;
use crate::superfunction::{SfBody, SfState, SuperFunction};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schedtask_obs::{FaultKind, ObsEvent, Observer};
use schedtask_sim::{CodeDomain, GshareBranchPredictor, MemorySystem, PageHeatmap};
use schedtask_workload::{
    BenchmarkInstance, BenchmarkSpec, Footprint, FootprintWalker, PageAllocator, ServiceCatalog,
    SfCategory, SuperFuncType, WalkParams, LINES_PER_PAGE,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// One simulated thread (or single-threaded process instance).
#[derive(Debug)]
pub(super) struct Thread {
    pub(super) benchmark: usize,
    pub(super) app_sf: SfId,
    #[allow(dead_code)] // keeps the private footprint alive for walkers
    pub(super) private_data: Arc<Footprint>,
    pub(super) rng: SmallRng,
    pub(super) last_core: Option<CoreId>,
}

/// Per-core execution state.
#[derive(Debug)]
pub(crate) struct CoreState {
    pub(crate) clock: u64,
    pub(crate) current: Option<SfId>,
    pub(crate) preempt_stack: Vec<SfId>,
    pub(crate) pending_irqs: VecDeque<PendingIrq>,
    pub(super) idle: bool,
    /// Clock divider: every cycle this core charges is multiplied by
    /// this factor, modelling a core running at `1/divider` of the
    /// reference clock (the seed of ROADMAP item 4's big.LITTLE
    /// support). `1` everywhere is the homogeneous default.
    pub(super) divider: u64,
    /// The hardware Page-heatmap register (Section 5.4), if armed.
    heatmap: Option<PageHeatmap>,
    /// Exact page collection (Figure 11's ideal-ranking baseline).
    exact_pages: Option<HashSet<u64>>,
    sched_walker: FootprintWalker,
    /// Explicit branch predictor, when the machine models branches.
    branch_predictor: Option<GshareBranchPredictor>,
}

/// What ended an execution quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum Boundary {
    None,
    AppBurstEnd,
    Blocked(schedtask_workload::DeviceKind),
    Completed,
}

/// The engine's state, passed to every scheduler hook as the context.
///
/// Schedulers use this to query SuperFunction metadata, read the hardware
/// Page-heatmap registers, probe i-caches (SLICC's remote-tag search), and
/// inspect workload structure.
#[derive(Debug)]
pub struct EngineCore {
    pub(super) cfg: EngineConfig,
    pub(super) mem: MemorySystem,
    pub(super) catalog: ServiceCatalog,
    pub(super) instances: Vec<BenchmarkInstance>,
    pub(super) threads: Vec<Thread>,
    pub(crate) sfs: HashMap<SfId, SuperFunction>,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) events: EventQueue,
    pub(super) event_seq: u64,
    pub(super) id_alloc: SfIdAllocator,
    pub(crate) stats: SimStats,
    pub(super) rng: SmallRng,
    pub(crate) now: u64,
    pub(super) measure_start: u64,
    pub(super) warmed_up: bool,
    epoch_prev: crate::stats::CategoryInstructions,
    pub(super) irq_rate_interval: Vec<u64>,
    pub(super) obs: ObserverSet,
    /// Completed system calls per benchmark since the last whole
    /// operation (operations are counted benchmark-wide: every
    /// `op_syscalls` completed system calls is one application-level
    /// operation).
    pub(super) op_progress: Vec<u32>,
    /// Total completed system calls per benchmark (drives workload phase
    /// shifts).
    pub(super) syscalls_completed: Vec<u64>,
    /// Deterministic fault injector, when the configuration has a
    /// [`crate::faults::FaultPlan`].
    pub(super) injector: Option<FaultInjector>,
    /// Instructions retired by SuperFunctions that completed and were
    /// reaped (they no longer appear in [`EngineCore::sfs`]).
    /// Maintained unconditionally by the completion path; read by the
    /// opt-in sanitizer's instruction-conservation check.
    pub(crate) retired_completed: u64,
}

impl EngineCore {
    // ---- Public query API (for schedulers) ---------------------------

    /// Current simulated time in cycles (the time of the event or core
    /// step being processed).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The OS service catalog in use.
    pub fn catalog(&self) -> &ServiceCatalog {
        &self.catalog
    }

    /// The benchmark instances in this workload.
    pub fn benchmarks(&self) -> &[BenchmarkInstance] {
        &self.instances
    }

    /// SuperFunction type.
    ///
    /// # Panics
    ///
    /// Panics if the SuperFunction does not exist.
    pub fn sf_type(&self, sf: SfId) -> SuperFuncType {
        self.sf(sf).sf_type
    }

    /// SuperFunction state.
    pub fn sf_state(&self, sf: SfId) -> SfState {
        self.sf(sf).state
    }

    /// SuperFunction parent (`parentSuperFuncPtr`).
    pub fn sf_parent(&self, sf: SfId) -> Option<SfId> {
        self.sf(sf).parent
    }

    /// Owning thread id.
    pub fn sf_tid(&self, sf: SfId) -> ThreadId {
        self.sf(sf).tid
    }

    /// Cycles the SuperFunction has consumed so far.
    pub fn sf_cycles(&self, sf: SfId) -> u64 {
        self.sf(sf).cycles_used
    }

    /// Instructions the SuperFunction has retired so far.
    pub fn sf_instructions(&self, sf: SfId) -> u64 {
        self.sf(sf).instructions_retired
    }

    /// The physical code pages the SuperFunction executes from (models
    /// hardware that can observe the upcoming fetch stream, as SLICC's
    /// migration unit does).
    pub fn sf_code_pages(&self, sf: SfId) -> Vec<u64> {
        self.sf(sf).walker.code().pages().to_vec()
    }

    /// True if the SuperFunction's thread belongs to a single-threaded
    /// benchmark (Find/Iscp/Oscp) — FlexSC's behaviour differs for these.
    pub fn sf_is_single_threaded_app(&self, sf: SfId) -> bool {
        let tid = self.sf_tid(sf);
        if tid == KERNEL_TID {
            return false;
        }
        let t = &self.threads[tid.0 as usize];
        self.instances[t.benchmark].spec.single_threaded
    }

    /// The core the thread last executed on, if any.
    pub fn thread_last_core(&self, tid: ThreadId) -> Option<CoreId> {
        if tid == KERNEL_TID {
            return None;
        }
        self.threads[tid.0 as usize].last_core
    }

    /// Number of threads in the workload.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Non-destructively checks whether `core`'s L1 i-cache holds `line`
    /// (SLICC's zero-cost remote tag search, Table 3).
    pub fn probe_icache(&self, core: CoreId, line: u64) -> bool {
        self.mem.probe_icache(core.0, line)
    }

    /// Loads the hardware Page-heatmap register of `core` (the paper's
    /// special load instruction). Subsequent committed instruction pages
    /// set bits in it.
    pub fn heatmap_load(&mut self, core: CoreId, heatmap: PageHeatmap) {
        self.cores[core.0].heatmap = Some(heatmap);
    }

    /// Stores the Page-heatmap register out of `core` (the paper's
    /// special store instruction), disarming collection.
    pub fn heatmap_take(&mut self, core: CoreId) -> Option<PageHeatmap> {
        let taken = self.cores[core.0].heatmap.take();
        if let Some(hm) = &taken {
            let at = self.cores[core.0].clock;
            let popcount = if self.obs.is_enabled() {
                hm.popcount()
            } else {
                0
            };
            self.obs.emit(|| ObsEvent::HeatmapStored {
                at,
                core: core.0 as u32,
                popcount,
            });
        }
        taken
    }

    /// Enables exact page-set collection on every core (used only to
    /// compute Figure 11's ideal ranking; real hardware has no such
    /// facility).
    pub fn exact_pages_enable(&mut self, enabled: bool) {
        for c in &mut self.cores {
            c.exact_pages = if enabled { Some(HashSet::new()) } else { None };
        }
    }

    /// Takes and clears the exact page set collected on `core`.
    pub fn exact_pages_take(&mut self, core: CoreId) -> HashSet<u64> {
        let taken = match self.cores[core.0].exact_pages.as_mut() {
            Some(set) => std::mem::take(set),
            None => HashSet::new(),
        };
        if !taken.is_empty() {
            let at = self.cores[core.0].clock;
            let pages = taken.len() as u64;
            self.obs.emit(|| ObsEvent::ExactPagesStored {
                at,
                core: core.0 as u32,
                pages,
            });
        }
        taken
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// True when at least one enabled [`Observer`] is attached.
    ///
    /// Schedulers can use this to skip expensive event preparation; the
    /// engine's own emit helpers already check it.
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_enabled()
    }

    /// Emits a structured observability event to every attached sink.
    ///
    /// The closure runs only when an enabled observer is attached, so
    /// callers may compute event fields inside it without paying
    /// anything on the unobserved fast path.
    pub fn emit_obs(&self, make: impl FnOnce() -> ObsEvent) {
        self.obs.emit(make);
    }

    /// Attaches an observer (normally called through
    /// [`super::Engine::add_observer`] before the run starts).
    pub(crate) fn attach_observer(&mut self, obs: std::sync::Arc<dyn Observer>) {
        self.obs.attach(obs);
    }

    // ---- Internal helpers (shared with sibling subsystems) -----------

    pub(super) fn sf(&self, id: SfId) -> &SuperFunction {
        self.sfs
            .get(&id)
            .unwrap_or_else(|| panic!("unknown SuperFunction {id}"))
    }

    pub(super) fn try_sf(&self, id: SfId) -> Result<&SuperFunction, EngineError> {
        self.sfs
            .get(&id)
            .ok_or(EngineError::UnknownSuperFunction(id))
    }

    pub(super) fn try_sf_mut(&mut self, id: SfId) -> Result<&mut SuperFunction, EngineError> {
        self.sfs
            .get_mut(&id)
            .ok_or(EngineError::UnknownSuperFunction(id))
    }

    pub(super) fn wake_core(&mut self, c: usize) {
        let now = self.now;
        let core = &mut self.cores[c];
        if core.idle {
            if now > core.clock {
                self.stats.core_time[c].idle_cycles += now - core.clock;
                core.clock = now;
            }
            core.idle = false;
        }
    }

    pub(super) fn wake_all_idle(&mut self) {
        for c in 0..self.cores.len() {
            self.wake_core(c);
        }
    }

    pub(super) fn go_idle(&mut self, c: usize) {
        self.cores[c].idle = true;
    }

    /// Executes `n` scheduler-code instructions on core `c` (OS domain),
    /// charging cycles and counting them in the scheduler bucket.
    pub(super) fn charge_sched_overhead(&mut self, c: usize, n: u64) {
        if n == 0 {
            return;
        }
        let base_cpi = self.cfg.system.base_cpi;
        let core = &mut self.cores[c];
        let mut cycles = 0u64;
        let mut executed = 0u64;
        while executed < n {
            let block = core.sched_walker.next_block();
            cycles += self.mem.fetch_code(c, block.line, CodeDomain::Os);
            if let Some(d) = block.data_ref {
                cycles += self.mem.access_data(c, d.line, d.write, CodeDomain::Os);
            }
            executed += block.instructions as u64;
        }
        cycles += (executed as f64 * base_cpi).round() as u64;
        cycles = cycles.saturating_mul(core.divider);
        core.clock += cycles;
        self.stats.core_time[c].busy_cycles += cycles;
        self.stats.instructions.scheduler += executed;
    }

    /// Runs one quantum of the core's current SuperFunction. Returns the
    /// boundary reached, if any.
    pub(super) fn execute_quantum(&mut self, c: usize) -> Result<Boundary, EngineError> {
        let sf_id = self.cores[c]
            .current
            .ok_or(EngineError::NoCurrentSf { core: CoreId(c) })?;
        let base_cpi = self.cfg.system.base_cpi;
        let quantum = self.cfg.quantum_instructions;

        let sf = self
            .sfs
            .get_mut(&sf_id)
            .ok_or(EngineError::UnknownSuperFunction(sf_id))?;
        let domain = if sf.category() == SfCategory::Application {
            CodeDomain::Application
        } else {
            CodeDomain::Os
        };
        let boundary_in = sf.instructions_until_boundary();
        let target = boundary_in.min(quantum).max(1);

        let core = &mut self.cores[c];
        let mispredict_penalty = self.cfg.system.branch_predictor.map(|(_, p)| p);
        let mut cycles = 0u64;
        let mut executed = 0u64;
        let mut branches = 0u64;
        let mut mispredicts = 0u64;
        let lines_per_page = LINES_PER_PAGE;
        while executed < target {
            let block = sf.walker.next_block();
            cycles += self.mem.fetch_code(c, block.line, domain);
            let page = block.line / lines_per_page;
            if let Some(hm) = core.heatmap.as_mut() {
                hm.insert_pfn(page);
            }
            if let Some(set) = core.exact_pages.as_mut() {
                set.insert(page);
            }
            if let Some(d) = block.data_ref {
                cycles += self.mem.access_data(c, d.line, d.write, domain);
            }
            if let (Some(penalty), Some(bp)) = (mispredict_penalty, core.branch_predictor.as_mut())
            {
                branches += 1;
                if !bp.predict_and_train(block.line, block.branch_taken) {
                    mispredicts += 1;
                    cycles += penalty;
                }
            }
            executed += block.instructions as u64;
        }
        self.stats.branches += branches;
        self.stats.branch_mispredictions += mispredicts;
        cycles += (executed as f64 * base_cpi).round() as u64;
        cycles = cycles.saturating_mul(core.divider);

        core.clock += cycles;
        sf.cycles_used += cycles;
        sf.instructions_retired += executed;
        self.stats.core_time[c].busy_cycles += cycles;
        self.stats.instructions.add(sf.category(), executed);

        // Per-thread accounting for thread-context SuperFunctions.
        if sf.tid != KERNEL_TID
            && matches!(
                sf.category(),
                SfCategory::Application | SfCategory::SystemCall
            )
        {
            let idx = sf.tid.0 as usize;
            if self.stats.per_thread_instructions.len() <= idx {
                self.stats.per_thread_instructions.resize(idx + 1, 0);
            }
            self.stats.per_thread_instructions[idx] += executed;
        }

        // Advance the body and detect boundaries.
        let mut boundary = match &mut sf.body {
            SfBody::Application { burst_left } => {
                *burst_left = burst_left.saturating_sub(executed);
                if *burst_left == 0 {
                    Boundary::AppBurstEnd
                } else {
                    Boundary::None
                }
            }
            SfBody::Syscall { remaining, block } => {
                *remaining = remaining.saturating_sub(executed);
                match block {
                    Some((at, dev)) if *remaining <= *at => {
                        let dev = *dev;
                        *block = None;
                        Boundary::Blocked(dev)
                    }
                    _ => {
                        if *remaining == 0 {
                            Boundary::Completed
                        } else {
                            Boundary::None
                        }
                    }
                }
            }
            SfBody::Interrupt { remaining, .. } | SfBody::BottomHalf { remaining, .. } => {
                *remaining = remaining.saturating_sub(executed);
                if *remaining == 0 {
                    Boundary::Completed
                } else {
                    Boundary::None
                }
            }
        };

        // Fault injection: an SRAM soft error toggles one heatmap bit.
        // The roll is consumed every quantum so the injector's stream
        // stays aligned with fault opportunities across techniques.
        if let Some(bit) = self
            .injector
            .as_mut()
            .and_then(FaultInjector::heatmap_bit_flip)
        {
            if let Some(hm) = self.cores[c].heatmap.as_mut() {
                hm.toggle_bit(bit);
            }
            let at = self.cores[c].clock;
            self.obs.emit(|| ObsEvent::FaultInjected {
                at,
                kind: FaultKind::HeatmapBitFlip,
            });
        }

        // Fault injection: a slow device path delays an OS
        // SuperFunction's completion by a burst of extra instructions.
        if boundary == Boundary::Completed {
            if let Some(extra) = self
                .injector
                .as_mut()
                .and_then(FaultInjector::delay_completion)
            {
                let sf = self
                    .sfs
                    .get_mut(&sf_id)
                    .ok_or(EngineError::UnknownSuperFunction(sf_id))?;
                match &mut sf.body {
                    SfBody::Syscall { remaining, .. }
                    | SfBody::Interrupt { remaining, .. }
                    | SfBody::BottomHalf { remaining, .. } => *remaining += extra,
                    SfBody::Application { .. } => {}
                }
                boundary = Boundary::None;
                let at = self.cores[c].clock;
                self.obs.emit(|| ObsEvent::FaultInjected {
                    at,
                    kind: FaultKind::DelayedCompletion,
                });
            }
        }

        Ok(boundary)
    }

    pub(super) fn snapshot_epoch_breakup(&mut self) {
        let cur = self.stats.instructions;
        let delta = crate::stats::CategoryInstructions {
            application: cur.application - self.epoch_prev.application,
            syscall: cur.syscall - self.epoch_prev.syscall,
            interrupt: cur.interrupt - self.epoch_prev.interrupt,
            bottom_half: cur.bottom_half - self.epoch_prev.bottom_half,
            scheduler: cur.scheduler - self.epoch_prev.scheduler,
        };
        self.epoch_prev = cur;
        self.stats.epoch_breakups.push(delta.breakup_percent());
    }

    pub(super) fn reset_for_measurement(&mut self) {
        let num_cores = self.cores.len();
        let num_bench = self.instances.len();
        let breakups = std::mem::take(&mut self.stats.epoch_breakups);
        self.stats = SimStats::new(num_cores, num_bench);
        self.stats.epoch_breakups = breakups; // epoch history spans warm-up
        self.stats.per_thread_instructions = vec![0; self.threads.len()];
        self.mem.reset_stats();
        self.epoch_prev = self.stats.instructions;
        self.measure_start = self.now;
        self.warmed_up = true;
    }

    // ---- Construction -------------------------------------------------

    /// Builds the machine: memory system, cores, benchmark instances,
    /// threads, and their application SuperFunctions. The caller
    /// ([`super::Engine::new`]) has already validated `cfg` and checked
    /// the workload is non-empty.
    pub(super) fn build(cfg: EngineConfig, workload: &super::WorkloadSpec) -> EngineCore {
        let mut alloc = PageAllocator::new();
        let catalog = ServiceCatalog::standard(&mut alloc);
        let num_cores = cfg.system.num_cores;
        let mem = MemorySystem::new(&cfg.system);
        let mut id_alloc = SfIdAllocator::new(num_cores);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Instantiate benchmarks and threads.
        let mut instances = Vec::new();
        let mut threads: Vec<Thread> = Vec::new();
        let mut sfs = HashMap::new();
        let mut irq_rate_interval = Vec::new();
        let all_specs: Vec<(BenchmarkSpec, f64)> = workload
            .parts
            .iter()
            .map(|&(kind, scale)| (BenchmarkSpec::for_kind(kind), scale))
            .chain(workload.custom.iter().cloned())
            .collect();
        for (pi, (spec, scale)) in all_specs.into_iter().enumerate() {
            let inst = BenchmarkInstance::new(spec, &mut alloc);
            let n_threads = inst.spec.threads(cfg.workload_reference_cores, scale);
            // Spontaneous interrupt pacing for this benchmark.
            let interval = match inst.spec.spontaneous_irq {
                Some((_, per_core_per_mcycle)) if per_core_per_mcycle > 0.0 => {
                    (1_000_000.0 / (per_core_per_mcycle * num_cores as f64)) as u64
                }
                _ => 0,
            };
            irq_rate_interval.push(interval.max(1));

            for t in 0..n_threads {
                let tid = ThreadId(threads.len() as u64);
                let home = CoreId(threads.len() % num_cores);
                let private = Arc::new(inst.private_data(&mut alloc, &format!("b{pi}t{t}")));
                let app_params = WalkParams {
                    hot_fraction: inst.spec.app_hot_fraction,
                    ..WalkParams::default()
                };
                let seed = cfg
                    .seed
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(tid.0);
                let walker = FootprintWalker::new(
                    Arc::clone(&inst.app_code),
                    Arc::clone(&inst.app_shared_data),
                    Arc::clone(&private),
                    app_params,
                    seed,
                );
                let mut t_rng = SmallRng::seed_from_u64(seed ^ 0xABCD_EF01);
                let first_burst = inst.spec.app_burst.sample(&mut t_rng).max(1);
                let sf_id = id_alloc.next(home);
                let sf = SuperFunction {
                    id: sf_id,
                    sf_type: inst.app_super_func_type,
                    parent: None,
                    tid,
                    state: SfState::Runnable,
                    body: SfBody::Application {
                        burst_left: first_burst,
                    },
                    walker,
                    cycles_used: 0,
                    instructions_retired: 0,
                    runnable_since: 0,
                };
                sfs.insert(sf_id, sf);
                threads.push(Thread {
                    benchmark: pi,
                    app_sf: sf_id,
                    private_data: private,
                    rng: t_rng,
                    last_core: None,
                });
            }
            instances.push(inst);
        }

        // Per-core scheduler-code walkers (the scheduler pollutes the
        // i-cache like any other kernel code).
        let sched_region = alloc.region("k:sched", 4);
        let sched_data = alloc.region("kd:sched", 3);
        let sched_code = Arc::new(Footprint::from_regions([&sched_region]));
        let sched_shared = Arc::new(Footprint::from_regions([&sched_data]));
        let cores = (0..num_cores)
            .map(|c| CoreState {
                clock: 0,
                current: None,
                preempt_stack: Vec::new(),
                pending_irqs: VecDeque::new(),
                idle: false,
                divider: cfg.core_clock_dividers.get(c).copied().unwrap_or(1),
                heatmap: None,
                exact_pages: None,
                sched_walker: FootprintWalker::new(
                    Arc::clone(&sched_code),
                    Arc::clone(&sched_shared),
                    Arc::new(Footprint::new()),
                    WalkParams::default(),
                    rng.gen::<u64>() ^ c as u64,
                ),
                branch_predictor: cfg
                    .system
                    .branch_predictor
                    .map(|(entries, _)| GshareBranchPredictor::new(entries)),
            })
            .collect();

        let num_benchmarks = instances.len();
        let num_threads = threads.len();
        let mut stats = SimStats::new(num_cores, num_benchmarks);
        stats.per_thread_instructions = vec![0; num_threads];

        let injector = cfg.faults.clone().map(FaultInjector::new);
        EngineCore {
            cfg,
            mem,
            catalog,
            instances,
            threads,
            sfs,
            cores,
            events: EventQueue::new(),
            event_seq: 0,
            id_alloc,
            stats,
            rng,
            now: 0,
            measure_start: 0,
            warmed_up: false,
            epoch_prev: crate::stats::CategoryInstructions::default(),
            irq_rate_interval,
            obs: ObserverSet::default(),
            op_progress: vec![0; num_benchmarks],
            syscalls_completed: vec![0; num_benchmarks],
            injector,
            retired_completed: 0,
        }
    }
}
