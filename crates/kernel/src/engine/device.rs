//! The DMA/NIC-style device model: a [`Component`] that injects
//! realistic interrupt traffic at jittered inter-arrival times.
//!
//! Each device owns a private RNG (decoupled from the engine RNG so
//! adding a device never perturbs existing event streams) and schedules
//! its next [`EventKind::DeviceTick`] one delta ahead. In cycle-box
//! mode the barrier plan phase pre-samples a window's worth of deltas on
//! a *clone* of the RNG; the commit phase consumes pre-sampled deltas
//! FIFO before touching the live RNG, so the consumed delta sequence
//! equals the RNG output stream in order regardless of how many were
//! precomputed — planning is a performance knob, never a correctness
//! one, even when a `drop_irq` fault delays a tick past the window.

use super::component::{Component, ComponentPlan};
use super::{interrupts, EngineCore, EventKind};
use crate::config::DeviceModelConfig;
use crate::error::EngineError;
use crate::scheduler::Scheduler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schedtask_obs::{ComponentClass, ObsEvent, SpanKind};
use std::collections::VecDeque;

/// Upper bound on deltas pre-sampled per plan window (keeps a huge
/// window from ballooning the pending queue; correctness is unaffected).
const MAX_PLANNED_DELTAS: u64 = 64;

/// One interrupt-injecting device model.
#[derive(Debug)]
pub(crate) struct DmaDevice {
    /// Index into [`crate::EngineConfig::devices`] (and the tail of the
    /// engine's component vector).
    index: usize,
    cfg: DeviceModelConfig,
    /// Private arrival RNG; never shared with the engine RNG.
    rng: SmallRng,
    /// Pre-sampled inter-arrival deltas installed by the cycle-box plan
    /// phase, consumed FIFO before the live RNG.
    pending: VecDeque<u64>,
}

impl DmaDevice {
    pub(super) fn new(index: usize, cfg: DeviceModelConfig, engine_seed: u64) -> Self {
        let seed = engine_seed
            ^ (index as u64).wrapping_mul(0xA24B_AED4_963E_E407)
            ^ 0x0D15_EA5E_0D15_EA5E;
        DmaDevice {
            index,
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            pending: VecDeque::new(),
        }
    }

    /// One inter-arrival delta: the configured period with ±50 % jitter.
    fn draw(rng: &mut SmallRng, period: u64) -> u64 {
        let base = period.max(1);
        rng.gen_range(base / 2..=base + base / 2).max(1)
    }

    /// The next delta in stream order: pre-sampled if available, else
    /// drawn live.
    fn sample_delta(&mut self) -> u64 {
        match self.pending.pop_front() {
            Some(d) => d,
            None => Self::draw(&mut self.rng, self.cfg.period_cycles),
        }
    }
}

impl Component for DmaDevice {
    fn name(&self) -> &'static str {
        "dma_device"
    }

    fn class(&self) -> ComponentClass {
        ComponentClass::DmaDevice
    }

    fn next_tick(&self, _ctx: &EngineCore) -> Option<u64> {
        // Event-driven: arrivals ride the global queue as DeviceTick
        // events, keeping the (time, seq) total order authoritative.
        None
    }

    fn prime(&mut self, ctx: &mut EngineCore) {
        // The first arrival comes off the private RNG before any plan
        // phase can run, so both driving modes consume it identically.
        let first = Self::draw(&mut self.rng, self.cfg.period_cycles);
        ctx.schedule_event(first, EventKind::DeviceTick { device: self.index });
    }

    fn handle_event(
        &mut self,
        ctx: &mut EngineCore,
        sched: &mut dyn Scheduler,
        kind: EventKind,
    ) -> Result<(), EngineError> {
        let EventKind::DeviceTick { device } = kind else {
            return Err(EngineError::StateCorruption {
                detail: format!("dma device {} received {kind:?}", self.index),
            });
        };
        if device != self.index {
            return Err(EngineError::StateCorruption {
                detail: format!(
                    "dma device {} received tick for device {device}",
                    self.index
                ),
            });
        }
        let at = ctx.now;
        let component = self.index as u32;
        ctx.obs.span_enter(
            Some(component),
            SpanKind::Component(ComponentClass::DmaDevice),
            at,
        );
        let spec = ctx.catalog.interrupt_for_device(self.cfg.kind);
        let irq_name = spec.name;
        let irq_id = spec.irq;
        let target = sched.route_interrupt(ctx, irq_id);
        ctx.obs.emit(|| ObsEvent::IrqRouted {
            at,
            irq: irq_id,
            core: target.0 as u32,
        });
        interrupts::deliver_irq(ctx, target.0, irq_name, None, at);
        ctx.obs.emit(|| ObsEvent::ComponentTick {
            at,
            component,
            class: ComponentClass::DmaDevice,
            irqs: 1,
        });
        let delta = self.sample_delta();
        ctx.schedule_event(at + delta, EventKind::DeviceTick { device: self.index });
        ctx.obs.span_exit(
            Some(component),
            SpanKind::Component(ComponentClass::DmaDevice),
            at,
        );
        Ok(())
    }

    fn plan(&self, now: u64, window_end: u64) -> Option<ComponentPlan> {
        // Pure precomputation on a clone of the live RNG: sample enough
        // deltas to cover the window. The commit phase appends them after
        // any still-pending deltas, preserving exact stream order.
        let mut rng = self.rng.clone();
        let period = self.cfg.period_cycles.max(1);
        let span = window_end.saturating_sub(now);
        let want = (span / period).min(MAX_PLANNED_DELTAS) as usize + 1;
        let mut deltas = Vec::with_capacity(want);
        for _ in 0..want {
            deltas.push(Self::draw(&mut rng, self.cfg.period_cycles));
        }
        Some(ComponentPlan::DeviceArrivals {
            deltas,
            rng_after: rng,
        })
    }

    fn install_plan(&mut self, plan: ComponentPlan) {
        let ComponentPlan::DeviceArrivals { deltas, rng_after } = plan;
        self.pending.extend(deltas);
        self.rng = rng_after;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedtask_workload::DeviceKind;

    fn device() -> DmaDevice {
        DmaDevice::new(
            0,
            DeviceModelConfig {
                kind: DeviceKind::Network,
                period_cycles: 10_000,
            },
            42,
        )
    }

    #[test]
    fn planned_deltas_match_the_live_stream_exactly() {
        // Whatever mix of plan windows is installed, the consumed delta
        // sequence must equal the stream a plan-free device produces.
        let mut live = device();
        let reference: Vec<u64> = (0..40).map(|_| live.sample_delta()).collect();

        let mut planned = device();
        let mut consumed = Vec::new();
        // Window 1: plan, install, consume a few (fewer than planned).
        let p = planned.plan(0, 35_000).expect("device plans");
        planned.install_plan(p);
        for _ in 0..2 {
            consumed.push(planned.sample_delta());
        }
        // Window 2: plan again with leftovers pending.
        let p = planned.plan(35_000, 150_000).expect("device plans");
        planned.install_plan(p);
        while consumed.len() < 40 {
            consumed.push(planned.sample_delta());
        }
        assert_eq!(consumed, reference);
    }

    #[test]
    fn deltas_are_jittered_around_the_period() {
        let mut d = device();
        for _ in 0..100 {
            let delta = d.sample_delta();
            assert!(
                (5_000..=15_000).contains(&delta),
                "delta {delta} out of band"
            );
        }
    }
}
