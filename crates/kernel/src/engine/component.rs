//! The component subsystem: everything that evolves over simulated time
//! behind one trait, plus the two driving modes that advance it.
//!
//! A [`Component`] either *ticks* on its own clock (`next_tick` returns
//! the next cycle it wants to advance — the per-core machines) or is
//! *event-driven* (it fires when the global queue pops an event routed
//! to it — the timer/epoch/IRQ sources, the device-completion bank, and
//! the DMA device models in [`super::device`]). The engine drives the
//! same component set in two modes:
//!
//! * **Discrete-event** — the classic loop: repeatedly pick the global
//!   earliest action (lowest-clock busy core vs. queue head, events
//!   winning ties) and execute it.
//! * **Cycle-box (epoch-barrier)** — time is cut into fixed windows. At
//!   each barrier every component's [`Component::plan`] runs as *pure
//!   precomputation* fanned out across `scoped_pool` threads (nothing
//!   touches shared state); the window body then executes the identical
//!   serial micro-step loop, consuming the precomputed plans. Because
//!   planning never changes what the commit phase does — a device's
//!   pre-sampled arrival deltas are consumed FIFO in exactly RNG-stream
//!   order no matter how many were precomputed — both modes produce
//!   bit-identical statistics and observability streams.
//!
//! Per-component clock dividers ([`Component::clock_divider`]) also land
//! here: a core machine at divider `D` charges every cycle `D`-fold,
//! modelling a core at `1/D` of the reference clock (the seed of
//! big.LITTLE support).

use super::{dispatch, interrupts, Engine, EngineCore, EventKind};
use crate::config::DrivingMode;
use crate::error::EngineError;
use crate::faults::FaultInjector;
use crate::scheduler::{SchedEvent, Scheduler};
use rand::rngs::SmallRng;
use schedtask_obs::{ComponentClass, FaultKind, ObsEvent};

/// The precomputed result of a component's parallel plan phase,
/// installed serially at the next barrier.
#[derive(Debug)]
pub(crate) enum ComponentPlan {
    /// Pre-sampled inter-arrival deltas for a DMA device model, plus the
    /// RNG state after sampling them. Deltas are consumed FIFO before
    /// the live RNG, so the consumed stream equals the RNG output stream
    /// regardless of how many were precomputed.
    DeviceArrivals {
        /// Inter-arrival deltas in sampling order.
        deltas: Vec<u64>,
        /// The device RNG after drawing `deltas`.
        rng_after: SmallRng,
    },
}

/// One time-evolving piece of the simulated machine.
///
/// `Send + Sync` because the cycle-box plan phase shares `&self` across
/// `scoped_pool` worker threads.
pub(crate) trait Component: Send + Sync + std::fmt::Debug {
    /// Stable snake_case name (observability vocabulary).
    fn name(&self) -> &'static str;

    /// The observability class of this component.
    fn class(&self) -> ComponentClass;

    /// The next absolute cycle at which this component wants a
    /// time-driven tick, or `None` when it is idle or purely
    /// event-driven.
    fn next_tick(&self, ctx: &EngineCore) -> Option<u64>;

    /// Time-driven advance. Called with `ctx.now` equal to the value
    /// this component returned from [`Component::next_tick`].
    fn tick(&mut self, ctx: &mut EngineCore, sched: &mut dyn Scheduler) -> Result<(), EngineError> {
        let _ = (ctx, sched);
        Err(EngineError::StateCorruption {
            detail: format!("component {} does not take time-driven ticks", self.name()),
        })
    }

    /// Event-driven advance: the queue popped `kind`, routed here.
    fn handle_event(
        &mut self,
        ctx: &mut EngineCore,
        sched: &mut dyn Scheduler,
        kind: EventKind,
    ) -> Result<(), EngineError> {
        let _ = (ctx, sched);
        Err(EngineError::StateCorruption {
            detail: format!(
                "component {} received unroutable event {kind:?}",
                self.name()
            ),
        })
    }

    /// This component's clock divider: every cycle it charges is
    /// multiplied by this factor (`1` = reference clock).
    fn clock_divider(&self) -> u64 {
        1
    }

    /// Seeds the component's recurring event stream before the run
    /// starts. Runs in component index order, which fixes queue
    /// sequence numbers deterministically.
    fn prime(&mut self, ctx: &mut EngineCore) {
        let _ = ctx;
    }

    /// Cycle-box barrier phase: pure precomputation for the window
    /// `[now, window_end)`. Must not rely on anything but `&self` —
    /// it runs concurrently with other components' plans.
    fn plan(&self, now: u64, window_end: u64) -> Option<ComponentPlan> {
        let _ = (now, window_end);
        None
    }

    /// Installs the matching [`Component::plan`] result (serial, in
    /// component index order).
    fn install_plan(&mut self, plan: ComponentPlan) {
        let _ = plan;
    }
}

/// Routing table from [`EventKind`] to the owning component's index in
/// [`Engine::components`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ComponentIndex {
    timer: usize,
    epoch: usize,
    irq: usize,
    bank: usize,
    dma_base: usize,
}

impl ComponentIndex {
    fn route(&self, kind: EventKind) -> usize {
        match kind {
            EventKind::TimerTick { .. } => self.timer,
            EventKind::Epoch => self.epoch,
            EventKind::ExternalIrq { .. } => self.irq,
            EventKind::DeviceComplete { .. } => self.bank,
            EventKind::DeviceTick { device } => self.dma_base + device,
        }
    }
}

/// Builds the deterministic component set for `core`: per-core machines
/// (component index == core index), timer source, epoch source, IRQ
/// source, device-completion bank, then one DMA model per configured
/// device.
pub(super) fn build_components(core: &EngineCore) -> (Vec<Box<dyn Component>>, ComponentIndex) {
    let n = core.num_cores();
    let mut components: Vec<Box<dyn Component>> =
        Vec::with_capacity(n + 4 + core.cfg.devices.len());
    for c in 0..n {
        components.push(Box::new(CoreMachine {
            core: c,
            divider: core.cores[c].divider,
        }));
    }
    let timer = components.len();
    components.push(Box::new(TimerSource));
    let epoch = components.len();
    components.push(Box::new(EpochSource));
    let irq = components.len();
    components.push(Box::new(IrqSource));
    let bank = components.len();
    components.push(Box::new(DeviceBank));
    let dma_base = components.len();
    for (i, dev) in core.cfg.devices.iter().enumerate() {
        components.push(Box::new(super::device::DmaDevice::new(
            i,
            *dev,
            core.cfg.seed,
        )));
    }
    (
        components,
        ComponentIndex {
            timer,
            epoch,
            irq,
            bank,
            dma_base,
        },
    )
}

/// One simulated core as a component: ticks whenever it is busy, at its
/// private clock.
#[derive(Debug)]
struct CoreMachine {
    core: usize,
    divider: u64,
}

impl Component for CoreMachine {
    fn name(&self) -> &'static str {
        "core_machine"
    }
    fn class(&self) -> ComponentClass {
        ComponentClass::CoreMachine
    }
    fn next_tick(&self, ctx: &EngineCore) -> Option<u64> {
        let cs = &ctx.cores[self.core];
        (!cs.idle).then_some(cs.clock)
    }
    fn tick(&mut self, ctx: &mut EngineCore, sched: &mut dyn Scheduler) -> Result<(), EngineError> {
        dispatch::step_core(ctx, sched, self.core)
    }
    fn clock_divider(&self) -> u64 {
        self.divider
    }
}

/// The per-core periodic timer interrupt stream.
#[derive(Debug)]
struct TimerSource;

impl Component for TimerSource {
    fn name(&self) -> &'static str {
        "timer_source"
    }
    fn class(&self) -> ComponentClass {
        ComponentClass::TimerSource
    }
    fn next_tick(&self, _ctx: &EngineCore) -> Option<u64> {
        None
    }
    fn prime(&mut self, ctx: &mut EngineCore) {
        let tick = ctx.cfg.timer_tick_cycles;
        if tick > 0 {
            for c in 0..ctx.num_cores() {
                let stagger = tick / ctx.num_cores() as u64 * c as u64;
                ctx.schedule_event(tick + stagger, EventKind::TimerTick { core: c });
            }
        }
    }
    fn handle_event(
        &mut self,
        ctx: &mut EngineCore,
        _sched: &mut dyn Scheduler,
        kind: EventKind,
    ) -> Result<(), EngineError> {
        let EventKind::TimerTick { core } = kind else {
            return Err(EngineError::StateCorruption {
                detail: format!("timer source received {kind:?}"),
            });
        };
        let at = ctx.now;
        interrupts::deliver_irq(ctx, core, "timer_irq", None, at);
        ctx.schedule_event(
            at + ctx.cfg.timer_tick_cycles,
            EventKind::TimerTick { core },
        );
        Ok(())
    }
}

/// The scheduler's TAlloc epoch boundary.
#[derive(Debug)]
struct EpochSource;

impl Component for EpochSource {
    fn name(&self) -> &'static str {
        "epoch_source"
    }
    fn class(&self) -> ComponentClass {
        ComponentClass::EpochSource
    }
    fn next_tick(&self, _ctx: &EngineCore) -> Option<u64> {
        None
    }
    fn prime(&mut self, ctx: &mut EngineCore) {
        ctx.schedule_event(ctx.cfg.epoch_cycles, EventKind::Epoch);
    }
    fn handle_event(
        &mut self,
        ctx: &mut EngineCore,
        sched: &mut dyn Scheduler,
        kind: EventKind,
    ) -> Result<(), EngineError> {
        if !matches!(kind, EventKind::Epoch) {
            return Err(EngineError::StateCorruption {
                detail: format!("epoch source received {kind:?}"),
            });
        }
        let at = ctx.now;
        ctx.obs.emit(|| ObsEvent::EpochStart { at });
        let overhead = sched.overhead_for(ctx, SchedEvent::EpochAlloc, None);
        ctx.charge_sched_overhead(0, overhead);
        sched.on_epoch(ctx)?;
        if ctx.cfg.collect_epoch_breakups {
            ctx.snapshot_epoch_breakup();
        }
        ctx.schedule_event(at + ctx.cfg.epoch_cycles, EventKind::Epoch);
        Ok(())
    }
}

/// Each benchmark's spontaneous external-interrupt stream.
#[derive(Debug)]
struct IrqSource;

impl Component for IrqSource {
    fn name(&self) -> &'static str {
        "irq_source"
    }
    fn class(&self) -> ComponentClass {
        ComponentClass::IrqSource
    }
    fn next_tick(&self, _ctx: &EngineCore) -> Option<u64> {
        None
    }
    fn prime(&mut self, ctx: &mut EngineCore) {
        for bench in 0..ctx.instances.len() {
            if ctx.instances[bench].spec.spontaneous_irq.is_some() {
                let interval = ctx.irq_rate_interval[bench];
                ctx.schedule_event(interval, EventKind::ExternalIrq { bench });
            }
        }
    }
    fn handle_event(
        &mut self,
        ctx: &mut EngineCore,
        sched: &mut dyn Scheduler,
        kind: EventKind,
    ) -> Result<(), EngineError> {
        let EventKind::ExternalIrq { bench } = kind else {
            return Err(EngineError::StateCorruption {
                detail: format!("irq source received {kind:?}"),
            });
        };
        let at = ctx.now;
        let Some((irq_name, _)) = ctx.instances[bench].spec.spontaneous_irq else {
            return Err(EngineError::StateCorruption {
                detail: format!(
                    "external irq scheduled for benchmark {bench} with no spontaneous rate"
                ),
            });
        };
        let irq_id = ctx
            .catalog
            .try_interrupt(irq_name)
            .ok_or_else(|| EngineError::UnknownService {
                kind: "interrupt",
                name: irq_name.to_string(),
            })?
            .irq;
        let target = sched.route_interrupt(ctx, irq_id);
        ctx.obs.emit(|| ObsEvent::IrqRouted {
            at,
            irq: irq_id,
            core: target.0 as u32,
        });
        interrupts::deliver_irq(ctx, target.0, irq_name, None, at);
        // Re-arm with ±50 % jitter.
        let base = ctx.irq_rate_interval[bench];
        let jitter = {
            use rand::Rng;
            ctx.rng.gen_range(base / 2..=base + base / 2)
        };
        ctx.schedule_event(at + jitter.max(1), EventKind::ExternalIrq { bench });
        Ok(())
    }
}

/// The device-completion bank: turns blocked-I/O completion events into
/// routed interrupts carrying the waiting SuperFunction.
#[derive(Debug)]
struct DeviceBank;

impl Component for DeviceBank {
    fn name(&self) -> &'static str {
        "device_bank"
    }
    fn class(&self) -> ComponentClass {
        ComponentClass::DeviceBank
    }
    fn next_tick(&self, _ctx: &EngineCore) -> Option<u64> {
        None
    }
    fn handle_event(
        &mut self,
        ctx: &mut EngineCore,
        sched: &mut dyn Scheduler,
        kind: EventKind,
    ) -> Result<(), EngineError> {
        let EventKind::DeviceComplete { device, waiter } = kind else {
            return Err(EngineError::StateCorruption {
                detail: format!("device bank received {kind:?}"),
            });
        };
        let at = ctx.now;
        let irq_name = ctx.catalog.interrupt_for_device(device).name;
        let irq_id = ctx.catalog.interrupt_for_device(device).irq;
        let target = sched.route_completion(ctx, irq_id, waiter);
        ctx.obs.emit(|| ObsEvent::IrqRouted {
            at,
            irq: irq_id,
            core: target.0 as u32,
        });
        interrupts::deliver_irq(ctx, target.0, irq_name, Some(waiter), at);
        Ok(())
    }
}

/// What one serial micro-step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// No busy core and no queued event: the simulation is drained.
    Done,
    /// One action (event or core quantum) executed.
    Progressed,
    /// The earliest action lies at or beyond the horizon; nothing ran.
    Horizon,
}

impl Engine {
    /// Runs the configured driving mode to completion (until drained or
    /// a stop condition from [`Engine::post_step`]).
    pub(super) fn drive(&mut self) -> Result<(), EngineError> {
        match self.core.cfg.driving {
            DrivingMode::DiscreteEvent => self.drive_discrete_event(),
            DrivingMode::CycleBox {
                window_cycles,
                shards,
            } => self.drive_cycle_box(window_cycles, shards),
        }
    }

    fn drive_discrete_event(&mut self) -> Result<(), EngineError> {
        loop {
            match self.step_once(u64::MAX)? {
                Step::Done | Step::Horizon => return Ok(()),
                Step::Progressed => {
                    if self.post_step()? {
                        return Ok(());
                    }
                }
            }
        }
    }

    fn drive_cycle_box(&mut self, window: u64, shards: usize) -> Result<(), EngineError> {
        let mut window_end = window;
        loop {
            // Barrier phase: pure per-component precomputation, fanned
            // out across worker threads (serial when shards <= 1).
            // Nothing here reads or writes shared engine state.
            let now = self.core.now;
            let plans =
                scoped_pool::scoped_map(&self.components, shards, move |c| c.plan(now, window_end));
            // Install serially in component index order: deterministic.
            for (i, plan) in plans.into_iter().enumerate() {
                if let Some(p) = plan {
                    self.components[i].install_plan(p);
                }
            }
            // Window body: the identical serial micro-step loop, bounded
            // by the barrier.
            loop {
                match self.step_once(window_end)? {
                    Step::Done => return Ok(()),
                    Step::Progressed => {
                        if self.post_step()? {
                            return Ok(());
                        }
                    }
                    Step::Horizon => break,
                }
            }
            if window_end == u64::MAX {
                // Nothing below u64::MAX remained; the queue can only
                // hold unreachable far-future work.
                return Ok(());
            }
            // Skip ahead: jump the next barrier past the earliest
            // pending action so fully idle windows cost nothing.
            let comp_next = self
                .components
                .iter()
                .filter_map(|c| c.next_tick(&self.core))
                .min();
            let event_next = self.core.events.peek().map(|e| e.time);
            let Some(next) = comp_next.into_iter().chain(event_next).min() else {
                return Ok(());
            };
            window_end = (next / window + 1).saturating_mul(window);
        }
    }

    /// One serial micro-step: pick the global earliest action — the
    /// lowest-(clock, index) busy component tick or the queue head, the
    /// queue winning ties — and execute it, unless it lies at or beyond
    /// `horizon`.
    fn step_once(&mut self, horizon: u64) -> Result<Step, EngineError> {
        let mut comp_next: Option<(u64, usize)> = None;
        for (i, comp) in self.components.iter().enumerate() {
            if let Some(t) = comp.next_tick(&self.core) {
                if comp_next.is_none_or(|(bt, bi)| (t, i) < (bt, bi)) {
                    comp_next = Some((t, i));
                }
            }
        }
        let event_next = self.core.events.peek().map(|e| e.time);
        let (time, tick_idx) = match (comp_next, event_next) {
            (None, None) => return Ok(Step::Done),
            (Some((ct, i)), Some(et)) => {
                if et <= ct {
                    (et, None)
                } else {
                    (ct, Some(i))
                }
            }
            (Some((ct, i)), None) => (ct, Some(i)),
            (None, Some(et)) => (et, None),
        };
        if time >= horizon {
            return Ok(Step::Horizon);
        }
        match tick_idx {
            Some(i) => {
                self.core.now = time;
                self.components[i].tick(&mut self.core, self.scheduler.as_mut())?;
            }
            None => self.process_next_event()?,
        }
        Ok(Step::Progressed)
    }

    /// Pops the earliest event and routes it to the owning component,
    /// wrapped in the engine-level fault-injection checks (dropped and
    /// spurious interrupts), which stay here so every component sees the
    /// same injector stream the monolithic engine produced.
    fn process_next_event(&mut self) -> Result<(), EngineError> {
        let ev = self
            .core
            .events
            .pop()
            .ok_or(EngineError::EventQueueUnderflow)?;
        self.core.now = ev.time;

        // Fault injection: the interrupt carried by this event is lost.
        // A dropped event is re-raised after the modelled retry delay
        // (hardware timeout / software re-poll), so wakeups are delayed —
        // never lost — and slowdown stays bounded.
        if !matches!(ev.kind, EventKind::Epoch) {
            if let Some(delay) = self
                .core
                .injector
                .as_mut()
                .and_then(FaultInjector::drop_irq)
            {
                self.core.schedule_event(ev.time + delay, ev.kind);
                self.core.obs.emit(|| ObsEvent::FaultInjected {
                    at: ev.time,
                    kind: FaultKind::DroppedIrq,
                });
                return Ok(());
            }
        }

        let idx = self.comp_idx.route(ev.kind);
        self.components[idx].handle_event(&mut self.core, self.scheduler.as_mut(), ev.kind)?;

        // Fault injection: a spurious interrupt (no waiting SuperFunction)
        // lands on a deterministic-random core.
        let num_cores = self.core.cores.len();
        let spurious = self
            .core
            .injector
            .as_mut()
            .and_then(|inj| inj.spurious_irq().then(|| inj.spurious_target(num_cores)));
        if let Some(target) = spurious {
            let at = self.core.now;
            self.core.obs.emit(|| ObsEvent::FaultInjected {
                at,
                kind: FaultKind::SpuriousIrq,
            });
            interrupts::deliver_irq(&mut self.core, target, "timer_irq", None, at);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Engine, WorkloadSpec};
    use crate::config::{DeviceModelConfig, EngineConfig};
    use crate::scheduler::GlobalFifoScheduler;
    use schedtask_workload::{BenchmarkKind, DeviceKind};

    fn engine_with(cfg: EngineConfig) -> Engine {
        Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(GlobalFifoScheduler::new()),
        )
        .expect("engine builds")
    }

    fn base_cfg() -> EngineConfig {
        EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(60_000)
    }

    fn dev(kind: DeviceKind, period_cycles: u64) -> DeviceModelConfig {
        DeviceModelConfig {
            kind,
            period_cycles,
        }
    }

    fn run_stats(cfg: EngineConfig) -> crate::stats::SimStats {
        engine_with(cfg).run().expect("run succeeds").clone()
    }

    #[test]
    fn component_set_matches_machine_shape() {
        let engine = engine_with(base_cfg().with_device(dev(DeviceKind::Network, 40_000)));
        // 2 cores + timer + epoch + irq + bank + 1 device.
        assert_eq!(engine.components.len(), 2 + 4 + 1);
        let names: Vec<&str> = engine.components.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "core_machine",
                "core_machine",
                "timer_source",
                "epoch_source",
                "irq_source",
                "device_bank",
                "dma_device"
            ]
        );
    }

    #[test]
    fn clock_dividers_land_in_the_trait_and_slow_the_core() {
        let cfg = base_cfg().with_core_clock_dividers(vec![1, 4]);
        let engine = engine_with(cfg.clone());
        let dividers: Vec<u64> = engine
            .components
            .iter()
            .take(2)
            .map(|c| c.clock_divider())
            .collect();
        assert_eq!(dividers, vec![1, 4]);

        let slow = run_stats(cfg);
        let even = run_stats(base_cfg());
        assert!(
            slow.final_cycle > even.final_cycle,
            "a divided core must stretch wall-clock: {} vs {}",
            slow.final_cycle,
            even.final_cycle
        );
    }

    #[test]
    fn cycle_box_serial_is_bit_identical_to_discrete_event() {
        let de = run_stats(base_cfg());
        let cb = run_stats(
            base_cfg().with_driving(crate::config::DrivingMode::CycleBox {
                window_cycles: 50_000,
                shards: 1,
            }),
        );
        assert_eq!(de.to_canonical_json(), cb.to_canonical_json());
    }

    #[test]
    fn cycle_box_sharded_is_bit_identical_with_devices_and_faults() {
        let cfg = || {
            base_cfg()
                .with_device(dev(DeviceKind::Network, 30_000))
                .with_device(dev(DeviceKind::Disk, 90_000))
                .with_faults(crate::faults::FaultPlan::light(11))
        };
        let de = run_stats(cfg());
        let cb = run_stats(cfg().with_driving(crate::config::DrivingMode::CycleBox {
            window_cycles: 20_000,
            shards: 4,
        }));
        assert_eq!(de.to_canonical_json(), cb.to_canonical_json());
        assert!(de.interrupts_delivered > 0);
    }

    #[test]
    fn device_component_injects_interrupt_traffic() {
        let quiet = run_stats(base_cfg());
        let noisy = run_stats(base_cfg().with_device(dev(DeviceKind::Network, 25_000)));
        assert!(
            noisy.interrupts_delivered > quiet.interrupts_delivered,
            "device model must add interrupts: {} vs {}",
            noisy.interrupts_delivered,
            quiet.interrupts_delivered
        );
    }
}
