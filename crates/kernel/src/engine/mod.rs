//! The discrete-event simulation engine, decomposed into subsystems.
//!
//! The engine owns the machine ([`schedtask_sim::MemorySystem`] plus
//! per-core state including the hardware Page-heatmap registers), the OS
//! object model (threads, SuperFunctions, devices, the interrupt
//! controller), and global time. The scheduling *policy* is a plug-in
//! ([`crate::Scheduler`]); the engine invokes it at exactly the points
//! where the paper's TMigrate/TAlloc hooks run.
//!
//! Cores advance private clocks; the engine always processes whichever is
//! earliest — the next device/timer/epoch event or the lowest-clock busy
//! core — so execution is deterministic and causally consistent to within
//! one quantum.
//!
//! # Subsystem layering
//!
//! This module is an orchestrator over six subsystems, each behind a
//! narrow internal API. Everything that evolves over simulated time is a
//! `component::Component` — the per-core machines, the timer/epoch/IRQ
//! sources, the device-completion bank, and optional DMA device models —
//! and the engine drives the same component set in either of two modes
//! ([`crate::DrivingMode`]): classic discrete-event, or cycle-box
//! "epoch-barrier" execution that fans a pure per-component plan phase
//! across threads between barriers while keeping the commit phase
//! serial, so both modes are bit-identical.
//!
//! * `machine` — per-core execution state (clocks, preempt stacks, the
//!   hardware Page-heatmap registers), the [`EngineCore`] context passed
//!   to every scheduler hook, and quantum execution through the cache
//!   hierarchy;
//! * `events` — the global timer/epoch/device event queue and its
//!   deterministic ordering;
//! * `interrupts` — the device/IRQ/bottom-half model: delivery,
//!   pending queues, and interrupt/bottom-half SuperFunction creation;
//! * `dispatch` — the TMigrate/TAlloc hook sites: quantum boundaries,
//!   system-call creation, blocking, completion, and wakeups;
//! * `component` — the `Component` trait (`next_tick`/`tick`,
//!   event routing, clock dividers, plan/install for the barrier mode)
//!   and the two driving-mode loops;
//! * `device` — the DMA/NIC-style interrupt-injecting device model.
//!
//! Everything in the pipeline is [`Send`]: an [`Engine`] can be built on
//! one thread and run on another, which is what lets sweep harnesses run
//! independent (technique × benchmark) cells on worker threads while
//! keeping every cell's statistics bit-identical to a serial run.

pub(crate) mod component;
pub(crate) mod device;
pub(crate) mod dispatch;
pub(crate) mod events;
pub(crate) mod interrupts;
pub(crate) mod machine;

pub use machine::EngineCore;

pub(crate) use events::EventKind;

use crate::config::EngineConfig;
use crate::error::{ConfigError, EngineError};
use crate::ids::ThreadId;
use crate::observe::TraceRingObserver;
use crate::sanitizer::SanitizerState;
use crate::scheduler::Scheduler;
use crate::stats::SimStats;
use crate::trace::TraceLog;
use schedtask_obs::{ObsEvent, Observer};
use schedtask_workload::{BenchmarkKind, BenchmarkSpec, MultiProgrammedWorkload};
use std::sync::Arc;

/// The `tid` used for kernel contexts that no thread created (external
/// interrupts and their bottom halves).
pub const KERNEL_TID: ThreadId = ThreadId(u64::MAX);

/// What benchmarks run, and at which per-benchmark scale (Section 6.3's
/// 1X/2X/... and the appendix's multi-programmed bags).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadSpec {
    /// (benchmark, scale) pairs.
    pub parts: Vec<(BenchmarkKind, f64)>,
    /// Fully custom benchmark specs (e.g. phase-shifted variants built
    /// with [`BenchmarkSpec::with_phase_shift`]), each with a scale.
    pub custom: Vec<(BenchmarkSpec, f64)>,
}

impl WorkloadSpec {
    /// A single benchmark at the given scale.
    pub fn single(kind: BenchmarkKind, scale: f64) -> Self {
        WorkloadSpec {
            parts: vec![(kind, scale)],
            custom: Vec::new(),
        }
    }

    /// A single custom benchmark spec at the given scale.
    pub fn custom(spec: BenchmarkSpec, scale: f64) -> Self {
        WorkloadSpec {
            parts: Vec::new(),
            custom: vec![(spec, scale)],
        }
    }
}

impl From<&MultiProgrammedWorkload> for WorkloadSpec {
    fn from(w: &MultiProgrammedWorkload) -> Self {
        WorkloadSpec {
            parts: w.parts.clone(),
            custom: Vec::new(),
        }
    }
}

/// Watchdog bookkeeping for one run.
#[derive(Debug)]
struct WatchState {
    /// Engine steps processed (events plus core quanta).
    steps: u64,
    /// Workload-instruction total at the last observed progress.
    last_instr: u64,
    /// Simulated cycle of the last observed progress.
    last_progress_cycle: u64,
    /// Wall-clock start of the run.
    started: std::time::Instant,
}

/// The simulation engine: an [`EngineCore`] plus the scheduling policy.
pub struct Engine {
    pub(crate) core: EngineCore,
    pub(crate) scheduler: Box<dyn Scheduler>,
    /// Every time-evolving piece of the machine in deterministic order:
    /// per-core machines first (component index == core index), then the
    /// timer/epoch/IRQ sources, the device-completion bank, and any
    /// configured DMA device models.
    pub(crate) components: Vec<Box<dyn component::Component>>,
    /// Routing table from [`EventKind`] to the owning component index.
    pub(crate) comp_idx: component::ComponentIndex,
    finished: bool,
    pub(crate) sanitizer: Option<SanitizerState>,
    watch: WatchState,
    /// The legacy-trace compatibility shim, attached automatically when
    /// [`EngineConfig::trace_capacity`] is non-zero.
    trace_ring: Option<Arc<TraceRingObserver>>,
}

// The whole run pipeline is `Send` by contract: a sweep harness moves
// each cell's engine onto a worker thread. Compile-time proof, so a
// non-`Send` field can never sneak back in.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Engine>();
    assert_send::<EngineCore>();
    assert_send::<Box<dyn Scheduler>>();
};

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("scheduler", &self.scheduler.name())
            .field("now", &self.core.now)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine for `workload` under `scheduler`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when the configuration fails
    /// [`EngineConfig::validate`] or the workload is empty.
    pub fn new(
        cfg: EngineConfig,
        workload: &WorkloadSpec,
        scheduler: Box<dyn Scheduler>,
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        if workload.parts.is_empty() && workload.custom.is_empty() {
            return Err(ConfigError::EmptyWorkload.into());
        }
        let sanitize = cfg.sanitize;
        let trace_capacity = cfg.trace_capacity;
        let mut core = EngineCore::build(cfg, workload);
        let sanitizer = sanitize.then(|| SanitizerState::new(core.num_cores()));
        // The legacy TraceEvent ring now rides on the Observer stream:
        // when tracing is configured, attach the shim that fills it.
        let trace_ring = (trace_capacity > 0).then(|| {
            let ring = Arc::new(TraceRingObserver::new(trace_capacity));
            core.attach_observer(Arc::clone(&ring) as Arc<dyn Observer>);
            ring
        });
        let (components, comp_idx) = component::build_components(&core);
        Ok(Engine {
            core,
            scheduler,
            components,
            comp_idx,
            finished: false,
            sanitizer,
            watch: WatchState {
                steps: 0,
                last_instr: 0,
                last_progress_cycle: 0,
                started: std::time::Instant::now(),
            },
            trace_ring,
        })
    }

    /// Attaches a structured-observability sink for the upcoming run.
    ///
    /// Observers see the whole run, warm-up included; attach before
    /// calling [`Engine::run`]. Multiple observers fan out in attach
    /// order. An observer whose [`Observer::enabled`] is `false` leaves
    /// the engine on its unobserved fast path.
    pub fn add_observer(&mut self, obs: Arc<dyn Observer>) {
        self.core.attach_observer(obs);
    }

    /// A point-in-time copy of the legacy SuperFunction lifecycle trace
    /// (empty unless [`EngineConfig::trace_capacity`] is set).
    pub fn trace_snapshot(&self) -> TraceLog {
        self.trace_ring
            .as_ref()
            .map(|ring| ring.snapshot())
            .unwrap_or_else(|| TraceLog::new(0))
    }

    /// Access to the engine state (for inspection in tests and
    /// experiments).
    pub fn engine_core(&self) -> &EngineCore {
        &self.core
    }

    /// The scheduling technique's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// The component inventory in driving order: `(name, class, clock
    /// divider)` per component. Core machines come first (component
    /// index == core index), then the timer/epoch/IRQ sources, the
    /// device-completion bank, and any configured device models.
    pub fn components(&self) -> Vec<(&'static str, schedtask_obs::ComponentClass, u64)> {
        self.components
            .iter()
            .map(|c| (c.name(), c.class(), c.clock_divider()))
            .collect()
    }

    /// Runs the simulation to completion and returns the statistics.
    ///
    /// # Errors
    ///
    /// Returns a typed [`EngineError`] instead of panicking: scheduler
    /// failures, state corruption, watchdog trips (livelock, event or
    /// wall-clock budget), and — with [`EngineConfig::sanitize`] —
    /// invariant violations. Calling it a second time returns
    /// [`EngineError::AlreadyRan`].
    pub fn run(&mut self) -> Result<&SimStats, EngineError> {
        if self.finished {
            return Err(EngineError::AlreadyRan);
        }
        self.finished = true;
        self.watch.started = std::time::Instant::now();

        let start = self.core.now;
        self.core.obs.emit(|| ObsEvent::RunStart { at: start });

        self.scheduler.init(&mut self.core)?;

        // Enqueue every application SuperFunction.
        let app_sfs: Vec<_> = self.core.threads.iter().map(|t| t.app_sf).collect();
        for sf in app_sfs {
            self.scheduler.enqueue(&mut self.core, sf, None)?;
        }

        // Prime every component in index order: recurring event streams
        // (timer ticks, the first epoch, spontaneous-interrupt and device
        // arrivals) are seeded with deterministic queue sequence numbers.
        for i in 0..self.components.len() {
            self.components[i].prime(&mut self.core);
        }

        // Hand control to the configured driving mode; both modes run
        // the identical serial micro-step and are bit-identical.
        self.drive()?;

        self.finalize();
        Ok(&self.core.stats)
    }

    /// Sanitizer, watchdog, warm-up, and stop checks after one progressed
    /// step (an event or a core quantum). Returns `true` when the run
    /// should stop.
    pub(crate) fn post_step(&mut self) -> Result<bool, EngineError> {
        // Invariant sanitizer (opt-in): conservation must hold after
        // every step.
        if let Some(state) = self.sanitizer.as_mut() {
            state
                .check(&self.core, self.scheduler.as_ref())
                .map_err(EngineError::InvariantViolation)?;
        }

        self.watchdog_check()?;

        // Warm-up and stop conditions. After the warm-up reset the
        // counters restart, so the stop check must not see the stale
        // pre-reset count.
        let workload_instr = self.core.stats.instructions.total_workload();
        if !self.core.warmed_up {
            if workload_instr >= self.core.cfg.warmup_instructions {
                self.core.reset_for_measurement();
                if let Some(state) = self.sanitizer.as_mut() {
                    state.rebaseline(&self.core);
                }
            }
        } else if workload_instr >= self.core.cfg.max_instructions {
            return Ok(true);
        }
        if self.core.now >= self.core.cfg.max_cycles {
            return Ok(true);
        }
        Ok(false)
    }

    /// Watchdog: convert livelock and runaway runs into structured
    /// errors.
    fn watchdog_check(&mut self) -> Result<(), EngineError> {
        self.watch.steps += 1;
        let instr_now = self.core.stats.instructions.total_workload();
        if instr_now != self.watch.last_instr {
            self.watch.last_instr = instr_now;
            self.watch.last_progress_cycle = self.core.now;
        } else {
            let max_stall = self.core.cfg.watchdog.max_stall_cycles;
            let stalled = self.core.now.saturating_sub(self.watch.last_progress_cycle);
            if max_stall > 0 && stalled > max_stall {
                return Err(EngineError::Livelock {
                    at_cycle: self.core.now,
                    stalled_cycles: stalled,
                    events_processed: self.watch.steps,
                });
            }
        }
        let max_events = self.core.cfg.watchdog.max_events;
        if max_events > 0 && self.watch.steps > max_events {
            return Err(EngineError::EventBudgetExceeded {
                events_processed: self.watch.steps,
            });
        }
        let max_wall_ms = self.core.cfg.watchdog.max_wall_ms;
        if max_wall_ms > 0
            && self.watch.steps.is_multiple_of(1024)
            && self.watch.started.elapsed().as_millis() as u64 > max_wall_ms
        {
            return Err(EngineError::WallClockExceeded {
                limit_ms: max_wall_ms,
            });
        }
        Ok(())
    }

    fn finalize(&mut self) {
        if !self.core.warmed_up {
            // Tiny runs may never hit the warm-up threshold; measure all.
            self.core.measure_start = 0;
        }
        let end = self
            .core
            .cores
            .iter()
            .map(|c| c.clock)
            .max()
            .unwrap_or(self.core.now)
            .max(self.core.now);
        for c in 0..self.core.cores.len() {
            let core = &mut self.core.cores[c];
            if core.idle && end > core.clock {
                self.core.stats.core_time[c].idle_cycles += end - core.clock;
                core.clock = end;
            }
        }
        self.core.obs.emit(|| ObsEvent::RunEnd { at: end });
        self.core.stats.final_cycle = end.saturating_sub(self.core.measure_start).max(1);
        self.core.stats.mem = self.core.mem.stats().clone();
        if let Some(inj) = &self.core.injector {
            self.core.stats.faults = inj.counts();
        }
        if let Some(state) = &self.sanitizer {
            self.core.stats.sanitizer_checks = state.checks;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CoreId, SfId};
    use schedtask_workload::BenchmarkKind;

    #[test]
    fn workload_spec_constructors() {
        let w = WorkloadSpec::single(BenchmarkKind::Find, 2.0);
        assert_eq!(w.parts, vec![(BenchmarkKind::Find, 2.0)]);
        assert!(w.custom.is_empty());

        let spec = BenchmarkSpec::for_kind(BenchmarkKind::Apache);
        let w = WorkloadSpec::custom(spec.clone(), 1.5);
        assert!(w.parts.is_empty());
        assert_eq!(w.custom.len(), 1);
        assert_eq!(w.custom[0].1, 1.5);

        let bag = MultiProgrammedWorkload::by_name("MPW-B").expect("exists");
        let w = WorkloadSpec::from(&bag);
        assert_eq!(w.parts.len(), 2);
    }

    #[test]
    fn empty_workload_rejected() {
        let cfg = EngineConfig::fast();
        let err = Engine::new(
            cfg,
            &WorkloadSpec::default(),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        )
        .expect_err("empty workload must be rejected");
        assert_eq!(
            err,
            EngineError::Config(crate::error::ConfigError::EmptyWorkload)
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = EngineConfig::fast().with_max_instructions(0);
        let err = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        )
        .expect_err("zero instruction budget must be rejected");
        assert!(matches!(err, EngineError::Config(_)));
    }

    #[test]
    fn kernel_tid_is_reserved() {
        assert_eq!(KERNEL_TID, ThreadId(u64::MAX));
    }

    #[test]
    fn engine_debug_shows_scheduler_name() {
        let cfg =
            EngineConfig::fast().with_system(schedtask_sim::SystemConfig::table2().with_cores(2));
        let engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        )
        .expect("engine builds");
        let dbg = format!("{engine:?}");
        assert!(dbg.contains("GlobalFifo"));
    }

    #[test]
    fn engine_cannot_run_twice() {
        let cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(20_000);
        let mut engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        )
        .expect("engine builds");
        engine.run().expect("first run succeeds");
        assert_eq!(
            engine.run().expect_err("second run rejected"),
            EngineError::AlreadyRan
        );
    }

    fn small_engine(cfg: EngineConfig) -> Engine {
        Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        )
        .expect("engine builds")
    }

    #[test]
    fn engine_runs_to_completion_on_another_thread() {
        // The `Send` contract in action: build here, run on a worker.
        let cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(30_000);
        let mut engine = small_engine(cfg);
        let total = std::thread::spawn(move || {
            engine
                .run()
                .expect("run succeeds off-thread")
                .total_instructions()
        })
        .join()
        .expect("worker thread survives");
        assert!(total > 0);
    }

    #[test]
    fn sanitized_run_is_clean_and_counts_checks() {
        let cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(50_000)
            .with_sanitizer();
        let mut engine = small_engine(cfg);
        let stats = engine.run().expect("sanitized run stays clean");
        assert!(stats.sanitizer_checks > 0, "sanitizer must actually run");
        assert_eq!(stats.faults.total(), 0);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = || {
            let cfg = EngineConfig::fast()
                .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
                .with_max_instructions(80_000)
                .with_faults(crate::faults::FaultPlan::heavy(7));
            let mut engine = small_engine(cfg);
            let stats = engine
                .run()
                .expect("faulty run degrades gracefully")
                .clone();
            (
                stats.instructions.total_workload(),
                stats.final_cycle,
                stats.faults,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed + plan must give identical stats");
        assert!(a.2.total() > 0, "heavy plan must inject something");
    }

    #[test]
    fn faulty_run_with_sanitizer_keeps_invariants() {
        let cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(50_000)
            .with_faults(crate::faults::FaultPlan::light(3))
            .with_sanitizer();
        let mut engine = small_engine(cfg);
        let stats = engine
            .run()
            .expect("fault injection must not break invariants");
        assert!(stats.sanitizer_checks > 0);
    }

    /// A scheduler that accepts SuperFunctions and never hands one back:
    /// time advances through timer ticks but no instructions retire, the
    /// canonical livelock.
    #[derive(Debug)]
    struct BlackHoleScheduler;

    impl crate::scheduler::Scheduler for BlackHoleScheduler {
        fn name(&self) -> &'static str {
            "BlackHole"
        }
        fn enqueue(
            &mut self,
            _ctx: &mut EngineCore,
            _sf: SfId,
            _origin: Option<CoreId>,
        ) -> Result<(), crate::error::SchedError> {
            Ok(())
        }
        fn pick_next(
            &mut self,
            _ctx: &mut EngineCore,
            _core: CoreId,
        ) -> Result<Option<SfId>, crate::error::SchedError> {
            Ok(None)
        }
    }

    #[test]
    fn watchdog_flags_livelock() {
        let mut cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(50_000);
        cfg.watchdog.max_stall_cycles = 200_000;
        let mut engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(BlackHoleScheduler),
        )
        .expect("engine builds");
        let err = engine
            .run()
            .expect_err("black-hole scheduler must livelock");
        assert!(
            matches!(err, EngineError::Livelock { .. }),
            "expected livelock, got {err}"
        );
    }

    #[test]
    fn watchdog_event_budget() {
        let mut cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(u64::MAX / 4);
        cfg.watchdog.max_events = 100;
        let mut engine = small_engine(cfg);
        let err = engine.run().expect_err("budget of 100 steps must trip");
        assert_eq!(
            err,
            EngineError::EventBudgetExceeded {
                events_processed: 101
            }
        );
    }

    #[test]
    fn scheduler_error_propagates() {
        #[derive(Debug)]
        struct FailingScheduler;
        impl crate::scheduler::Scheduler for FailingScheduler {
            fn name(&self) -> &'static str {
                "Failing"
            }
            fn enqueue(
                &mut self,
                _ctx: &mut EngineCore,
                _sf: SfId,
                _origin: Option<CoreId>,
            ) -> Result<(), crate::error::SchedError> {
                Err(crate::error::SchedError::CorruptQueue {
                    core: CoreId(0),
                    detail: "synthetic".to_string(),
                })
            }
            fn pick_next(
                &mut self,
                _ctx: &mut EngineCore,
                _core: CoreId,
            ) -> Result<Option<SfId>, crate::error::SchedError> {
                Ok(None)
            }
        }
        let cfg =
            EngineConfig::fast().with_system(schedtask_sim::SystemConfig::table2().with_cores(2));
        let mut engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(FailingScheduler),
        )
        .expect("engine builds");
        let err = engine.run().expect_err("enqueue failure must propagate");
        assert!(matches!(err, EngineError::Scheduler(_)));
    }
}
