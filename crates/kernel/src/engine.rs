//! The discrete-event simulation engine.
//!
//! The engine owns the machine ([`schedtask_sim::MemorySystem`] plus
//! per-core state including the hardware Page-heatmap registers), the OS
//! object model (threads, SuperFunctions, devices, the interrupt
//! controller), and global time. The scheduling *policy* is a plug-in
//! ([`crate::Scheduler`]); the engine invokes it at exactly the points
//! where the paper's TMigrate/TAlloc hooks run.
//!
//! Cores advance private clocks; the engine always processes whichever is
//! earliest — the next device/timer/epoch event or the lowest-clock busy
//! core — so execution is deterministic and causally consistent to within
//! one quantum.

use crate::config::EngineConfig;
use crate::error::{ConfigError, EngineError};
use crate::faults::FaultInjector;
use crate::ids::{CoreId, SfId, SfIdAllocator, ThreadId};
use crate::sanitizer::SanitizerState;
use crate::scheduler::{SchedEvent, Scheduler, SwitchReason};
use crate::stats::SimStats;
use crate::superfunction::{SfBody, SfState, SuperFunction};
use crate::trace::{TraceEvent, TraceLog};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schedtask_sim::{CodeDomain, GshareBranchPredictor, MemorySystem, PageHeatmap};
use schedtask_workload::{
    BenchmarkInstance, BenchmarkKind, BenchmarkSpec, DeviceKind, Footprint, FootprintWalker,
    MultiProgrammedWorkload, PageAllocator, ServiceCatalog, SfCategory, SuperFuncType, WalkParams,
    LINES_PER_PAGE,
};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// The `tid` used for kernel contexts that no thread created (external
/// interrupts and their bottom halves).
pub const KERNEL_TID: ThreadId = ThreadId(u64::MAX);

/// What benchmarks run, and at which per-benchmark scale (Section 6.3's
/// 1X/2X/... and the appendix's multi-programmed bags).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadSpec {
    /// (benchmark, scale) pairs.
    pub parts: Vec<(BenchmarkKind, f64)>,
    /// Fully custom benchmark specs (e.g. phase-shifted variants built
    /// with [`BenchmarkSpec::with_phase_shift`]), each with a scale.
    pub custom: Vec<(BenchmarkSpec, f64)>,
}

impl WorkloadSpec {
    /// A single benchmark at the given scale.
    pub fn single(kind: BenchmarkKind, scale: f64) -> Self {
        WorkloadSpec {
            parts: vec![(kind, scale)],
            custom: Vec::new(),
        }
    }

    /// A single custom benchmark spec at the given scale.
    pub fn custom(spec: BenchmarkSpec, scale: f64) -> Self {
        WorkloadSpec {
            parts: Vec::new(),
            custom: vec![(spec, scale)],
        }
    }
}

impl From<&MultiProgrammedWorkload> for WorkloadSpec {
    fn from(w: &MultiProgrammedWorkload) -> Self {
        WorkloadSpec {
            parts: w.parts.clone(),
            custom: Vec::new(),
        }
    }
}

/// One simulated thread (or single-threaded process instance).
#[derive(Debug)]
struct Thread {
    benchmark: usize,
    app_sf: SfId,
    private_data: Arc<Footprint>,
    rng: SmallRng,
    last_core: Option<CoreId>,
}

/// An interrupt delivered to a core but not yet serviced.
#[derive(Debug, Clone)]
pub(crate) struct PendingIrq {
    name: &'static str,
    pub(crate) waiter: Option<SfId>,
    raised_at: u64,
}

/// Per-core execution state.
#[derive(Debug)]
pub(crate) struct CoreState {
    pub(crate) clock: u64,
    pub(crate) current: Option<SfId>,
    pub(crate) preempt_stack: Vec<SfId>,
    pub(crate) pending_irqs: VecDeque<PendingIrq>,
    idle: bool,
    /// The hardware Page-heatmap register (Section 5.4), if armed.
    heatmap: Option<PageHeatmap>,
    /// Exact page collection (Figure 11's ideal-ranking baseline).
    exact_pages: Option<HashSet<u64>>,
    sched_walker: FootprintWalker,
    /// Explicit branch predictor, when the machine models branches.
    branch_predictor: Option<GshareBranchPredictor>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    DeviceComplete { device: DeviceKind, waiter: SfId },
    ExternalIrq { bench: usize },
    TimerTick { core: usize },
    Epoch,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HeapEvent {
    time: u64,
    seq: u64,
    pub(crate) kind: EventKind,
}

impl Ord for HeapEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// What ended an execution quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Boundary {
    None,
    AppBurstEnd,
    Blocked(DeviceKind),
    Completed,
}

/// The engine's state, passed to every scheduler hook as the context.
///
/// Schedulers use this to query SuperFunction metadata, read the hardware
/// Page-heatmap registers, probe i-caches (SLICC's remote-tag search), and
/// inspect workload structure.
#[derive(Debug)]
pub struct EngineCore {
    cfg: EngineConfig,
    mem: MemorySystem,
    catalog: ServiceCatalog,
    instances: Vec<BenchmarkInstance>,
    threads: Vec<Thread>,
    pub(crate) sfs: HashMap<SfId, SuperFunction>,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) events: BinaryHeap<HeapEvent>,
    event_seq: u64,
    id_alloc: SfIdAllocator,
    pub(crate) stats: SimStats,
    rng: SmallRng,
    pub(crate) now: u64,
    measure_start: u64,
    warmed_up: bool,
    epoch_prev: crate::stats::CategoryInstructions,
    irq_rate_interval: Vec<u64>,
    trace: TraceLog,
    /// Completed system calls per benchmark since the last whole
    /// operation (operations are counted benchmark-wide: every
    /// `op_syscalls` completed system calls is one application-level
    /// operation).
    op_progress: Vec<u32>,
    /// Total completed system calls per benchmark (drives workload phase
    /// shifts).
    syscalls_completed: Vec<u64>,
    /// Deterministic fault injector, when the configuration has a
    /// [`crate::faults::FaultPlan`].
    injector: Option<FaultInjector>,
}

impl EngineCore {
    // ---- Public query API (for schedulers) ---------------------------

    /// Current simulated time in cycles (the time of the event or core
    /// step being processed).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The OS service catalog in use.
    pub fn catalog(&self) -> &ServiceCatalog {
        &self.catalog
    }

    /// The benchmark instances in this workload.
    pub fn benchmarks(&self) -> &[BenchmarkInstance] {
        &self.instances
    }

    /// SuperFunction type.
    ///
    /// # Panics
    ///
    /// Panics if the SuperFunction does not exist.
    pub fn sf_type(&self, sf: SfId) -> SuperFuncType {
        self.sf(sf).sf_type
    }

    /// SuperFunction state.
    pub fn sf_state(&self, sf: SfId) -> SfState {
        self.sf(sf).state
    }

    /// SuperFunction parent (`parentSuperFuncPtr`).
    pub fn sf_parent(&self, sf: SfId) -> Option<SfId> {
        self.sf(sf).parent
    }

    /// Owning thread id.
    pub fn sf_tid(&self, sf: SfId) -> ThreadId {
        self.sf(sf).tid
    }

    /// Cycles the SuperFunction has consumed so far.
    pub fn sf_cycles(&self, sf: SfId) -> u64 {
        self.sf(sf).cycles_used
    }

    /// Instructions the SuperFunction has retired so far.
    pub fn sf_instructions(&self, sf: SfId) -> u64 {
        self.sf(sf).instructions_retired
    }

    /// The physical code pages the SuperFunction executes from (models
    /// hardware that can observe the upcoming fetch stream, as SLICC's
    /// migration unit does).
    pub fn sf_code_pages(&self, sf: SfId) -> Vec<u64> {
        self.sf(sf).walker.code().pages().to_vec()
    }

    /// True if the SuperFunction's thread belongs to a single-threaded
    /// benchmark (Find/Iscp/Oscp) — FlexSC's behaviour differs for these.
    pub fn sf_is_single_threaded_app(&self, sf: SfId) -> bool {
        let tid = self.sf_tid(sf);
        if tid == KERNEL_TID {
            return false;
        }
        let t = &self.threads[tid.0 as usize];
        self.instances[t.benchmark].spec.single_threaded
    }

    /// The core the thread last executed on, if any.
    pub fn thread_last_core(&self, tid: ThreadId) -> Option<CoreId> {
        if tid == KERNEL_TID {
            return None;
        }
        self.threads[tid.0 as usize].last_core
    }

    /// Number of threads in the workload.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Non-destructively checks whether `core`'s L1 i-cache holds `line`
    /// (SLICC's zero-cost remote tag search, Table 3).
    pub fn probe_icache(&self, core: CoreId, line: u64) -> bool {
        self.mem.probe_icache(core.0, line)
    }

    /// Loads the hardware Page-heatmap register of `core` (the paper's
    /// special load instruction). Subsequent committed instruction pages
    /// set bits in it.
    pub fn heatmap_load(&mut self, core: CoreId, heatmap: PageHeatmap) {
        self.cores[core.0].heatmap = Some(heatmap);
    }

    /// Stores the Page-heatmap register out of `core` (the paper's
    /// special store instruction), disarming collection.
    pub fn heatmap_take(&mut self, core: CoreId) -> Option<PageHeatmap> {
        self.cores[core.0].heatmap.take()
    }

    /// Enables exact page-set collection on every core (used only to
    /// compute Figure 11's ideal ranking; real hardware has no such
    /// facility).
    pub fn exact_pages_enable(&mut self, enabled: bool) {
        for c in &mut self.cores {
            c.exact_pages = if enabled { Some(HashSet::new()) } else { None };
        }
    }

    /// Takes and clears the exact page set collected on `core`.
    pub fn exact_pages_take(&mut self, core: CoreId) -> HashSet<u64> {
        match self.cores[core.0].exact_pages.as_mut() {
            Some(set) => std::mem::take(set),
            None => HashSet::new(),
        }
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The SuperFunction lifecycle trace (empty unless
    /// [`EngineConfig::trace_capacity`] is set).
    ///
    /// [`EngineConfig::trace_capacity`]: crate::EngineConfig::trace_capacity
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    // ---- Internal helpers ---------------------------------------------

    fn sf(&self, id: SfId) -> &SuperFunction {
        self.sfs
            .get(&id)
            .unwrap_or_else(|| panic!("unknown SuperFunction {id}"))
    }

    fn try_sf(&self, id: SfId) -> Result<&SuperFunction, EngineError> {
        self.sfs
            .get(&id)
            .ok_or(EngineError::UnknownSuperFunction(id))
    }

    fn try_sf_mut(&mut self, id: SfId) -> Result<&mut SuperFunction, EngineError> {
        self.sfs
            .get_mut(&id)
            .ok_or(EngineError::UnknownSuperFunction(id))
    }

    fn schedule_event(&mut self, time: u64, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(HeapEvent {
            time,
            seq: self.event_seq,
            kind,
        });
    }

    fn wake_core(&mut self, c: usize) {
        let now = self.now;
        let core = &mut self.cores[c];
        if core.idle {
            if now > core.clock {
                self.stats.core_time[c].idle_cycles += now - core.clock;
                core.clock = now;
            }
            core.idle = false;
        }
    }

    fn wake_all_idle(&mut self) {
        for c in 0..self.cores.len() {
            self.wake_core(c);
        }
    }

    fn go_idle(&mut self, c: usize) {
        self.cores[c].idle = true;
    }

    /// Executes `n` scheduler-code instructions on core `c` (OS domain),
    /// charging cycles and counting them in the scheduler bucket.
    fn charge_sched_overhead(&mut self, c: usize, n: u64) {
        if n == 0 {
            return;
        }
        let base_cpi = self.cfg.system.base_cpi;
        let core = &mut self.cores[c];
        let mut cycles = 0u64;
        let mut executed = 0u64;
        while executed < n {
            let block = core.sched_walker.next_block();
            cycles += self.mem.fetch_code(c, block.line, CodeDomain::Os);
            if let Some(d) = block.data_ref {
                cycles += self.mem.access_data(c, d.line, d.write, CodeDomain::Os);
            }
            executed += block.instructions as u64;
        }
        cycles += (executed as f64 * base_cpi).round() as u64;
        core.clock += cycles;
        self.stats.core_time[c].busy_cycles += cycles;
        self.stats.instructions.scheduler += executed;
    }

    /// Runs one quantum of the core's current SuperFunction. Returns the
    /// boundary reached, if any.
    fn execute_quantum(&mut self, c: usize) -> Result<Boundary, EngineError> {
        let sf_id = self.cores[c]
            .current
            .ok_or(EngineError::NoCurrentSf { core: CoreId(c) })?;
        let base_cpi = self.cfg.system.base_cpi;
        let quantum = self.cfg.quantum_instructions;

        let sf = self
            .sfs
            .get_mut(&sf_id)
            .ok_or(EngineError::UnknownSuperFunction(sf_id))?;
        let domain = if sf.category() == SfCategory::Application {
            CodeDomain::Application
        } else {
            CodeDomain::Os
        };
        let boundary_in = sf.instructions_until_boundary();
        let target = boundary_in.min(quantum).max(1);

        let core = &mut self.cores[c];
        let mispredict_penalty = self.cfg.system.branch_predictor.map(|(_, p)| p);
        let mut cycles = 0u64;
        let mut executed = 0u64;
        let mut branches = 0u64;
        let mut mispredicts = 0u64;
        let lines_per_page = LINES_PER_PAGE;
        while executed < target {
            let block = sf.walker.next_block();
            cycles += self.mem.fetch_code(c, block.line, domain);
            let page = block.line / lines_per_page;
            if let Some(hm) = core.heatmap.as_mut() {
                hm.insert_pfn(page);
            }
            if let Some(set) = core.exact_pages.as_mut() {
                set.insert(page);
            }
            if let Some(d) = block.data_ref {
                cycles += self.mem.access_data(c, d.line, d.write, domain);
            }
            if let (Some(penalty), Some(bp)) = (mispredict_penalty, core.branch_predictor.as_mut())
            {
                branches += 1;
                if !bp.predict_and_train(block.line, block.branch_taken) {
                    mispredicts += 1;
                    cycles += penalty;
                }
            }
            executed += block.instructions as u64;
        }
        self.stats.branches += branches;
        self.stats.branch_mispredictions += mispredicts;
        cycles += (executed as f64 * base_cpi).round() as u64;

        core.clock += cycles;
        sf.cycles_used += cycles;
        sf.instructions_retired += executed;
        self.stats.core_time[c].busy_cycles += cycles;
        self.stats.instructions.add(sf.category(), executed);

        // Per-thread accounting for thread-context SuperFunctions.
        if sf.tid != KERNEL_TID
            && matches!(
                sf.category(),
                SfCategory::Application | SfCategory::SystemCall
            )
        {
            let idx = sf.tid.0 as usize;
            if self.stats.per_thread_instructions.len() <= idx {
                self.stats.per_thread_instructions.resize(idx + 1, 0);
            }
            self.stats.per_thread_instructions[idx] += executed;
        }

        // Advance the body and detect boundaries.
        let mut boundary = match &mut sf.body {
            SfBody::Application { burst_left } => {
                *burst_left = burst_left.saturating_sub(executed);
                if *burst_left == 0 {
                    Boundary::AppBurstEnd
                } else {
                    Boundary::None
                }
            }
            SfBody::Syscall { remaining, block } => {
                *remaining = remaining.saturating_sub(executed);
                match block {
                    Some((at, dev)) if *remaining <= *at => {
                        let dev = *dev;
                        *block = None;
                        Boundary::Blocked(dev)
                    }
                    _ => {
                        if *remaining == 0 {
                            Boundary::Completed
                        } else {
                            Boundary::None
                        }
                    }
                }
            }
            SfBody::Interrupt { remaining, .. } | SfBody::BottomHalf { remaining, .. } => {
                *remaining = remaining.saturating_sub(executed);
                if *remaining == 0 {
                    Boundary::Completed
                } else {
                    Boundary::None
                }
            }
        };

        // Fault injection: an SRAM soft error toggles one heatmap bit.
        // The roll is consumed every quantum so the injector's stream
        // stays aligned with fault opportunities across techniques.
        if let Some(bit) = self
            .injector
            .as_mut()
            .and_then(FaultInjector::heatmap_bit_flip)
        {
            if let Some(hm) = self.cores[c].heatmap.as_mut() {
                hm.toggle_bit(bit);
            }
        }

        // Fault injection: a slow device path delays an OS
        // SuperFunction's completion by a burst of extra instructions.
        if boundary == Boundary::Completed {
            if let Some(extra) = self
                .injector
                .as_mut()
                .and_then(FaultInjector::delay_completion)
            {
                let sf = self
                    .sfs
                    .get_mut(&sf_id)
                    .ok_or(EngineError::UnknownSuperFunction(sf_id))?;
                match &mut sf.body {
                    SfBody::Syscall { remaining, .. }
                    | SfBody::Interrupt { remaining, .. }
                    | SfBody::BottomHalf { remaining, .. } => *remaining += extra,
                    SfBody::Application { .. } => {}
                }
                boundary = Boundary::None;
            }
        }

        Ok(boundary)
    }

    /// Marks `sf` running on core `c`, counting thread migrations and
    /// resampling the application burst if needed.
    fn prepare_dispatch(&mut self, c: usize, sf_id: SfId) -> Result<(), EngineError> {
        let sf = self
            .sfs
            .get_mut(&sf_id)
            .ok_or(EngineError::UnknownSuperFunction(sf_id))?;
        debug_assert!(
            matches!(sf.state, SfState::Runnable | SfState::Preempted),
            "dispatching SF in state {:?}",
            sf.state
        );
        sf.state = SfState::Running;
        let tid = sf.tid;
        let category = sf.category();

        if let SfBody::Application { burst_left } = &mut sf.body {
            if *burst_left == 0 {
                let t = &mut self.threads[tid.0 as usize];
                let spec = &self.instances[t.benchmark].spec;
                *burst_left = spec.app_burst.sample(&mut t.rng).max(1);
            }
        }

        // Thread-migration accounting (Figure 10): application and
        // system-call SuperFunctions execute in thread context.
        if tid != KERNEL_TID && matches!(category, SfCategory::Application | SfCategory::SystemCall)
        {
            let t = &mut self.threads[tid.0 as usize];
            if let Some(prev) = t.last_core {
                if prev.0 != c {
                    self.stats.thread_migrations += 1;
                    let cost = self.cfg.migration_cost_cycles;
                    self.cores[c].clock += cost;
                    self.stats.core_time[c].busy_cycles += cost;
                    let at = self.cores[c].clock;
                    self.trace.record(TraceEvent::Migrated {
                        at,
                        tid,
                        from: prev,
                        to: CoreId(c),
                    });
                }
            }
            self.threads[tid.0 as usize].last_core = Some(CoreId(c));
        }

        self.cores[c].current = Some(sf_id);
        let at = self.cores[c].clock;
        self.trace.record(TraceEvent::Dispatched {
            at,
            sf: sf_id,
            core: CoreId(c),
        });
        Ok(())
    }

    /// Creates a system-call SuperFunction for `tid` on core `c`.
    fn create_syscall_sf(
        &mut self,
        c: usize,
        tid: ThreadId,
        parent: SfId,
    ) -> Result<SfId, EngineError> {
        let t = &mut self.threads[tid.0 as usize];
        let inst = &self.instances[t.benchmark];
        let progress = self.syscalls_completed[t.benchmark];
        let name = inst.sample_syscall_at(&mut t.rng, progress);
        let spec = self
            .catalog
            .try_syscall(name)
            .ok_or_else(|| EngineError::UnknownService {
                kind: "syscall",
                name: name.to_string(),
            })?;
        let len = spec.len.sample(&mut t.rng).max(1);
        let block_mult = inst.spec.blocking_multiplier;
        let block = spec.blocking.and_then(|b| {
            if t.rng.gen_bool((b.probability * block_mult).clamp(0.0, 1.0)) {
                let at = (len as f64 * (1.0 - b.at_fraction)) as u64;
                Some((at.min(len - 1), b.device))
            } else {
                None
            }
        });
        let id = self.id_alloc.next(CoreId(c));
        let seed = self.cfg.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let walker = FootprintWalker::new(
            Arc::clone(&spec.code),
            Arc::clone(&spec.shared_data),
            Arc::clone(&t.private_data),
            WalkParams::default(),
            seed,
        );
        let sf_type = spec.super_func_type();
        let sf = SuperFunction {
            id,
            sf_type,
            parent: Some(parent),
            tid,
            state: SfState::Runnable,
            body: SfBody::Syscall {
                remaining: len,
                block,
            },
            walker,
            cycles_used: 0,
            instructions_retired: 0,
            runnable_since: self.cores[c].clock,
        };
        self.sfs.insert(id, sf);
        let at = self.cores[c].clock;
        self.trace.record(TraceEvent::Created {
            at,
            sf: id,
            sf_type,
            tid,
        });
        Ok(id)
    }

    /// Creates an interrupt SuperFunction on core `c`.
    fn create_interrupt_sf(
        &mut self,
        c: usize,
        irq_name: &'static str,
        waiter: Option<SfId>,
    ) -> Result<SfId, EngineError> {
        let spec =
            self.catalog
                .try_interrupt(irq_name)
                .ok_or_else(|| EngineError::UnknownService {
                    kind: "interrupt",
                    name: irq_name.to_string(),
                })?;
        let len = spec.len.sample(&mut self.rng).max(1);
        let id = self.id_alloc.next(CoreId(c));
        let seed = self.cfg.seed ^ id.0.wrapping_mul(0xD134_2543_DE82_EF95);
        let tid = match waiter {
            Some(w) => self.try_sf(w)?.tid,
            None => KERNEL_TID,
        };
        let walker = FootprintWalker::new(
            Arc::clone(&spec.code),
            Arc::clone(&spec.shared_data),
            Arc::new(Footprint::new()),
            WalkParams::default(),
            seed,
        );
        let sf = SuperFunction {
            id,
            sf_type: spec.super_func_type(),
            parent: None,
            tid,
            state: SfState::Runnable,
            body: SfBody::Interrupt {
                remaining: len,
                bottom_half: spec.bottom_half,
                waiter,
            },
            walker,
            cycles_used: 0,
            instructions_retired: 0,
            runnable_since: self.cores[c].clock,
        };
        self.sfs.insert(id, sf);
        Ok(id)
    }

    /// Creates a bottom-half SuperFunction on core `c`.
    fn create_bottom_half_sf(
        &mut self,
        c: usize,
        name: &'static str,
        wake: Option<SfId>,
    ) -> Result<SfId, EngineError> {
        let spec =
            self.catalog
                .try_bottom_half(name)
                .ok_or_else(|| EngineError::UnknownService {
                    kind: "bottom half",
                    name: name.to_string(),
                })?;
        let len = spec.len.sample(&mut self.rng).max(1);
        let id = self.id_alloc.next(CoreId(c));
        let seed = self.cfg.seed ^ id.0.wrapping_mul(0xA076_1D64_78BD_642F);
        let tid = match wake {
            Some(w) => self.try_sf(w)?.tid,
            None => KERNEL_TID,
        };
        let walker = FootprintWalker::new(
            Arc::clone(&spec.code),
            Arc::clone(&spec.shared_data),
            Arc::new(Footprint::new()),
            WalkParams::default(),
            seed,
        );
        let sf = SuperFunction {
            id,
            sf_type: spec.super_func_type(),
            parent: None,
            tid,
            state: SfState::Runnable,
            body: SfBody::BottomHalf {
                remaining: len,
                wake,
            },
            walker,
            cycles_used: 0,
            instructions_retired: 0,
            runnable_since: self.cores[c].clock,
        };
        self.sfs.insert(id, sf);
        Ok(id)
    }

    fn snapshot_epoch_breakup(&mut self) {
        let cur = self.stats.instructions;
        let delta = crate::stats::CategoryInstructions {
            application: cur.application - self.epoch_prev.application,
            syscall: cur.syscall - self.epoch_prev.syscall,
            interrupt: cur.interrupt - self.epoch_prev.interrupt,
            bottom_half: cur.bottom_half - self.epoch_prev.bottom_half,
            scheduler: cur.scheduler - self.epoch_prev.scheduler,
        };
        self.epoch_prev = cur;
        self.stats.epoch_breakups.push(delta.breakup_percent());
    }

    fn reset_for_measurement(&mut self) {
        let num_cores = self.cores.len();
        let num_bench = self.instances.len();
        let breakups = std::mem::take(&mut self.stats.epoch_breakups);
        self.stats = SimStats::new(num_cores, num_bench);
        self.stats.epoch_breakups = breakups; // epoch history spans warm-up
        self.stats.per_thread_instructions = vec![0; self.threads.len()];
        self.mem.reset_stats();
        self.epoch_prev = self.stats.instructions;
        self.measure_start = self.now;
        self.warmed_up = true;
    }
}

/// Watchdog bookkeeping for one run.
#[derive(Debug)]
struct WatchState {
    /// Engine steps processed (events plus core quanta).
    steps: u64,
    /// Workload-instruction total at the last observed progress.
    last_instr: u64,
    /// Simulated cycle of the last observed progress.
    last_progress_cycle: u64,
    /// Wall-clock start of the run.
    started: std::time::Instant,
}

/// The simulation engine: an [`EngineCore`] plus the scheduling policy.
pub struct Engine {
    core: EngineCore,
    scheduler: Box<dyn Scheduler>,
    finished: bool,
    sanitizer: Option<SanitizerState>,
    watch: WatchState,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("scheduler", &self.scheduler.name())
            .field("now", &self.core.now)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine for `workload` under `scheduler`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when the configuration fails
    /// [`EngineConfig::validate`] or the workload is empty.
    pub fn new(
        cfg: EngineConfig,
        workload: &WorkloadSpec,
        scheduler: Box<dyn Scheduler>,
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        if workload.parts.is_empty() && workload.custom.is_empty() {
            return Err(ConfigError::EmptyWorkload.into());
        }
        let mut alloc = PageAllocator::new();
        let catalog = ServiceCatalog::standard(&mut alloc);
        let num_cores = cfg.system.num_cores;
        let mem = MemorySystem::new(&cfg.system);
        let mut id_alloc = SfIdAllocator::new(num_cores);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Instantiate benchmarks and threads.
        let mut instances = Vec::new();
        let mut threads: Vec<Thread> = Vec::new();
        let mut sfs = HashMap::new();
        let mut irq_rate_interval = Vec::new();
        let all_specs: Vec<(BenchmarkSpec, f64)> = workload
            .parts
            .iter()
            .map(|&(kind, scale)| (BenchmarkSpec::for_kind(kind), scale))
            .chain(workload.custom.iter().cloned())
            .collect();
        for (pi, (spec, scale)) in all_specs.into_iter().enumerate() {
            let inst = BenchmarkInstance::new(spec, &mut alloc);
            let n_threads = inst.spec.threads(cfg.workload_reference_cores, scale);
            // Spontaneous interrupt pacing for this benchmark.
            let interval = match inst.spec.spontaneous_irq {
                Some((_, per_core_per_mcycle)) if per_core_per_mcycle > 0.0 => {
                    (1_000_000.0 / (per_core_per_mcycle * num_cores as f64)) as u64
                }
                _ => 0,
            };
            irq_rate_interval.push(interval.max(1));

            for t in 0..n_threads {
                let tid = ThreadId(threads.len() as u64);
                let home = CoreId(threads.len() % num_cores);
                let private = Arc::new(inst.private_data(&mut alloc, &format!("b{pi}t{t}")));
                let app_params = WalkParams {
                    hot_fraction: inst.spec.app_hot_fraction,
                    ..WalkParams::default()
                };
                let seed = cfg
                    .seed
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(tid.0);
                let walker = FootprintWalker::new(
                    Arc::clone(&inst.app_code),
                    Arc::clone(&inst.app_shared_data),
                    Arc::clone(&private),
                    app_params,
                    seed,
                );
                let mut t_rng = SmallRng::seed_from_u64(seed ^ 0xABCD_EF01);
                let first_burst = inst.spec.app_burst.sample(&mut t_rng).max(1);
                let sf_id = id_alloc.next(home);
                let sf = SuperFunction {
                    id: sf_id,
                    sf_type: inst.app_super_func_type,
                    parent: None,
                    tid,
                    state: SfState::Runnable,
                    body: SfBody::Application {
                        burst_left: first_burst,
                    },
                    walker,
                    cycles_used: 0,
                    instructions_retired: 0,
                    runnable_since: 0,
                };
                sfs.insert(sf_id, sf);
                threads.push(Thread {
                    benchmark: pi,
                    app_sf: sf_id,
                    private_data: private,
                    rng: t_rng,
                    last_core: None,
                });
            }
            instances.push(inst);
        }

        // Per-core scheduler-code walkers (the scheduler pollutes the
        // i-cache like any other kernel code).
        let sched_region = alloc.region("k:sched", 4);
        let sched_data = alloc.region("kd:sched", 3);
        let sched_code = Arc::new(Footprint::from_regions([&sched_region]));
        let sched_shared = Arc::new(Footprint::from_regions([&sched_data]));
        let cores = (0..num_cores)
            .map(|c| CoreState {
                clock: 0,
                current: None,
                preempt_stack: Vec::new(),
                pending_irqs: VecDeque::new(),
                idle: false,
                heatmap: None,
                exact_pages: None,
                sched_walker: FootprintWalker::new(
                    Arc::clone(&sched_code),
                    Arc::clone(&sched_shared),
                    Arc::new(Footprint::new()),
                    WalkParams::default(),
                    rng.gen::<u64>() ^ c as u64,
                ),
                branch_predictor: cfg
                    .system
                    .branch_predictor
                    .map(|(entries, _)| GshareBranchPredictor::new(entries)),
            })
            .collect();

        let num_benchmarks = instances.len();
        let num_threads = threads.len();
        let mut stats = SimStats::new(num_cores, num_benchmarks);
        stats.per_thread_instructions = vec![0; num_threads];

        let cfg_trace_capacity = cfg.trace_capacity;
        let injector = cfg.faults.clone().map(FaultInjector::new);
        let sanitizer = cfg.sanitize.then(|| SanitizerState::new(num_cores));
        Ok(Engine {
            core: EngineCore {
                cfg,
                mem,
                catalog,
                instances,
                threads,
                sfs,
                cores,
                events: BinaryHeap::new(),
                event_seq: 0,
                id_alloc,
                stats,
                rng,
                now: 0,
                measure_start: 0,
                warmed_up: false,
                epoch_prev: crate::stats::CategoryInstructions::default(),
                irq_rate_interval,
                trace: TraceLog::new(cfg_trace_capacity),
                op_progress: vec![0; num_benchmarks],
                syscalls_completed: vec![0; num_benchmarks],
                injector,
            },
            scheduler,
            finished: false,
            sanitizer,
            watch: WatchState {
                steps: 0,
                last_instr: 0,
                last_progress_cycle: 0,
                started: std::time::Instant::now(),
            },
        })
    }

    /// Access to the engine state (for inspection in tests and
    /// experiments).
    pub fn engine_core(&self) -> &EngineCore {
        &self.core
    }

    /// The scheduling technique's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Runs the simulation to completion and returns the statistics.
    ///
    /// # Errors
    ///
    /// Returns a typed [`EngineError`] instead of panicking: scheduler
    /// failures, state corruption, watchdog trips (livelock, event or
    /// wall-clock budget), and — with [`EngineConfig::sanitize`] —
    /// invariant violations. Calling it a second time returns
    /// [`EngineError::AlreadyRan`].
    pub fn run(&mut self) -> Result<&SimStats, EngineError> {
        if self.finished {
            return Err(EngineError::AlreadyRan);
        }
        self.finished = true;
        self.watch.started = std::time::Instant::now();

        self.scheduler.init(&mut self.core)?;

        // Enqueue every application SuperFunction.
        let app_sfs: Vec<SfId> = self.core.threads.iter().map(|t| t.app_sf).collect();
        for sf in app_sfs {
            self.scheduler.enqueue(&mut self.core, sf, None)?;
        }

        // Prime periodic events.
        let tick = self.core.cfg.timer_tick_cycles;
        if tick > 0 {
            for c in 0..self.core.num_cores() {
                let stagger = tick / self.core.num_cores() as u64 * c as u64;
                self.core
                    .schedule_event(tick + stagger, EventKind::TimerTick { core: c });
            }
        }
        self.core
            .schedule_event(self.core.cfg.epoch_cycles, EventKind::Epoch);
        for bench in 0..self.core.instances.len() {
            if self.core.instances[bench].spec.spontaneous_irq.is_some() {
                let interval = self.core.irq_rate_interval[bench];
                self.core
                    .schedule_event(interval, EventKind::ExternalIrq { bench });
            }
        }

        // Main loop.
        loop {
            let core_next = self
                .core
                .cores
                .iter()
                .enumerate()
                .filter(|(_, cs)| !cs.idle)
                .min_by_key(|(i, cs)| (cs.clock, *i))
                .map(|(i, cs)| (cs.clock, i));
            let event_next = self.core.events.peek().map(|e| e.time);

            match (core_next, event_next) {
                (None, None) => break,
                (Some((ct, c)), Some(et)) => {
                    if et <= ct {
                        self.process_next_event()?;
                    } else {
                        self.core.now = ct;
                        self.step_core(c)?;
                    }
                }
                (Some((ct, c)), None) => {
                    self.core.now = ct;
                    self.step_core(c)?;
                }
                (None, Some(_)) => {
                    self.process_next_event()?;
                }
            }

            // Invariant sanitizer (opt-in): conservation must hold after
            // every step.
            if let Some(state) = self.sanitizer.as_mut() {
                state
                    .check(&self.core, self.scheduler.as_ref())
                    .map_err(EngineError::InvariantViolation)?;
            }

            // Watchdog: convert livelock and runaway runs into structured
            // errors.
            self.watch.steps += 1;
            let instr_now = self.core.stats.instructions.total_workload();
            if instr_now != self.watch.last_instr {
                self.watch.last_instr = instr_now;
                self.watch.last_progress_cycle = self.core.now;
            } else {
                let max_stall = self.core.cfg.watchdog.max_stall_cycles;
                let stalled = self.core.now.saturating_sub(self.watch.last_progress_cycle);
                if max_stall > 0 && stalled > max_stall {
                    return Err(EngineError::Livelock {
                        at_cycle: self.core.now,
                        stalled_cycles: stalled,
                        events_processed: self.watch.steps,
                    });
                }
            }
            let max_events = self.core.cfg.watchdog.max_events;
            if max_events > 0 && self.watch.steps > max_events {
                return Err(EngineError::EventBudgetExceeded {
                    events_processed: self.watch.steps,
                });
            }
            let max_wall_ms = self.core.cfg.watchdog.max_wall_ms;
            if max_wall_ms > 0
                && self.watch.steps.is_multiple_of(1024)
                && self.watch.started.elapsed().as_millis() as u64 > max_wall_ms
            {
                return Err(EngineError::WallClockExceeded {
                    limit_ms: max_wall_ms,
                });
            }

            // Warm-up and stop conditions. After the warm-up reset the
            // counters restart, so the stop check must not see the stale
            // pre-reset count.
            let workload_instr = self.core.stats.instructions.total_workload();
            if !self.core.warmed_up {
                if workload_instr >= self.core.cfg.warmup_instructions {
                    self.core.reset_for_measurement();
                    if let Some(state) = self.sanitizer.as_mut() {
                        state.rebaseline(&self.core);
                    }
                }
            } else if workload_instr >= self.core.cfg.max_instructions {
                break;
            }
            if self.core.now >= self.core.cfg.max_cycles {
                break;
            }
        }

        self.finalize();
        Ok(&self.core.stats)
    }

    fn finalize(&mut self) {
        if !self.core.warmed_up {
            // Tiny runs may never hit the warm-up threshold; measure all.
            self.core.measure_start = 0;
        }
        let end = self
            .core
            .cores
            .iter()
            .map(|c| c.clock)
            .max()
            .unwrap_or(self.core.now)
            .max(self.core.now);
        for c in 0..self.core.cores.len() {
            let core = &mut self.core.cores[c];
            if core.idle && end > core.clock {
                self.core.stats.core_time[c].idle_cycles += end - core.clock;
                core.clock = end;
            }
        }
        self.core.stats.final_cycle = end.saturating_sub(self.core.measure_start).max(1);
        self.core.stats.mem = self.core.mem.stats().clone();
        if let Some(inj) = &self.core.injector {
            self.core.stats.faults = inj.counts();
        }
        if let Some(state) = &self.sanitizer {
            self.core.stats.sanitizer_checks = state.checks;
        }
    }

    fn process_next_event(&mut self) -> Result<(), EngineError> {
        let ev = self
            .core
            .events
            .pop()
            .ok_or(EngineError::EventQueueUnderflow)?;
        self.core.now = ev.time;

        // Fault injection: the interrupt carried by this event is lost.
        // A dropped event is re-raised after the modelled retry delay
        // (hardware timeout / software re-poll), so wakeups are delayed —
        // never lost — and slowdown stays bounded.
        if !matches!(ev.kind, EventKind::Epoch) {
            if let Some(delay) = self
                .core
                .injector
                .as_mut()
                .and_then(FaultInjector::drop_irq)
            {
                self.core.schedule_event(ev.time + delay, ev.kind);
                return Ok(());
            }
        }

        match ev.kind {
            EventKind::DeviceComplete { device, waiter } => {
                let irq_name = self.core.catalog.interrupt_for_device(device).name;
                let irq_id = self.core.catalog.interrupt_for_device(device).irq;
                let target = self
                    .scheduler
                    .route_completion(&mut self.core, irq_id, waiter);
                self.deliver_irq(target.0, irq_name, Some(waiter), ev.time);
            }
            EventKind::ExternalIrq { bench } => {
                let Some((irq_name, _)) = self.core.instances[bench].spec.spontaneous_irq else {
                    return Err(EngineError::StateCorruption {
                        detail: format!(
                            "external irq scheduled for benchmark {bench} with no spontaneous rate"
                        ),
                    });
                };
                let irq_id = self
                    .core
                    .catalog
                    .try_interrupt(irq_name)
                    .ok_or_else(|| EngineError::UnknownService {
                        kind: "interrupt",
                        name: irq_name.to_string(),
                    })?
                    .irq;
                let target = self.scheduler.route_interrupt(&mut self.core, irq_id);
                self.deliver_irq(target.0, irq_name, None, ev.time);
                // Re-arm with ±50 % jitter.
                let base = self.core.irq_rate_interval[bench];
                let jitter = self.core.rng.gen_range(base / 2..=base + base / 2);
                self.core
                    .schedule_event(ev.time + jitter.max(1), EventKind::ExternalIrq { bench });
            }
            EventKind::TimerTick { core } => {
                let irq_name = "timer_irq";
                self.deliver_irq(core, irq_name, None, ev.time);
                self.core.schedule_event(
                    ev.time + self.core.cfg.timer_tick_cycles,
                    EventKind::TimerTick { core },
                );
            }
            EventKind::Epoch => {
                let overhead =
                    self.scheduler
                        .overhead_for(&self.core, SchedEvent::EpochAlloc, None);
                self.core.charge_sched_overhead(0, overhead);
                self.scheduler.on_epoch(&mut self.core)?;
                if self.core.cfg.collect_epoch_breakups {
                    self.core.snapshot_epoch_breakup();
                }
                self.core
                    .schedule_event(ev.time + self.core.cfg.epoch_cycles, EventKind::Epoch);
            }
        }

        // Fault injection: a spurious interrupt (no waiting SuperFunction)
        // lands on a deterministic-random core.
        let num_cores = self.core.cores.len();
        let spurious = self
            .core
            .injector
            .as_mut()
            .and_then(|inj| inj.spurious_irq().then(|| inj.spurious_target(num_cores)));
        if let Some(target) = spurious {
            self.deliver_irq(target, "timer_irq", None, self.core.now);
        }
        Ok(())
    }

    fn deliver_irq(&mut self, c: usize, name: &'static str, waiter: Option<SfId>, raised_at: u64) {
        self.core.cores[c].pending_irqs.push_back(PendingIrq {
            name,
            waiter,
            raised_at,
        });
        self.core.wake_core(c);
    }

    fn step_core(&mut self, c: usize) -> Result<(), EngineError> {
        // 0. Fault injection: the core stalls (SMM excursion / frequency
        // dip). Queues and pending interrupts stay intact; time is lost.
        if let Some(stall) = self
            .core
            .injector
            .as_mut()
            .and_then(FaultInjector::stall_core)
        {
            self.core.cores[c].clock += stall;
            self.core.stats.core_time[c].idle_cycles += stall;
            return Ok(());
        }

        // 1. Service a pending interrupt: preempt whatever runs.
        if let Some(pending) = self.core.cores[c].pending_irqs.pop_front() {
            if let Some(cur) = self.core.cores[c].current.take() {
                self.core
                    .sfs
                    .get_mut(&cur)
                    .ok_or(EngineError::UnknownSuperFunction(cur))?
                    .state = SfState::Preempted;
                self.core.cores[c].preempt_stack.push(cur);
                self.scheduler.on_switch_out(
                    &mut self.core,
                    CoreId(c),
                    cur,
                    SwitchReason::Preempted,
                );
            }
            let clock = self.core.cores[c].clock;
            self.core.stats.interrupts_delivered += 1;
            self.core.stats.interrupt_latency_cycles += clock.saturating_sub(pending.raised_at);
            let sf = self
                .core
                .create_interrupt_sf(c, pending.name, pending.waiter)?;
            let overhead = self
                .scheduler
                .overhead_for(&self.core, SchedEvent::SfStart, Some(sf));
            self.core.charge_sched_overhead(c, overhead);
            self.core.prepare_dispatch(c, sf)?;
            self.scheduler.on_dispatch(&mut self.core, CoreId(c), sf);
            return Ok(());
        }

        // 2. Nothing running? Ask the scheduler.
        if self.core.cores[c].current.is_none() {
            match self.scheduler.pick_next(&mut self.core, CoreId(c))? {
                Some(sf) => {
                    self.core.prepare_dispatch(c, sf)?;
                    self.scheduler.on_dispatch(&mut self.core, CoreId(c), sf);
                }
                None => self.core.go_idle(c),
            }
            return Ok(());
        }

        // 3. Execute one quantum.
        match self.core.execute_quantum(c)? {
            Boundary::None => Ok(()),
            Boundary::AppBurstEnd => self.on_app_burst_end(c),
            Boundary::Blocked(device) => self.on_blocked(c, device),
            Boundary::Completed => self.on_completed(c),
        }
    }

    fn on_app_burst_end(&mut self, c: usize) -> Result<(), EngineError> {
        let app_sf = self.core.cores[c]
            .current
            .take()
            .ok_or(EngineError::NoCurrentSf { core: CoreId(c) })?;
        let tid = self.core.try_sf(app_sf)?.tid;
        self.core
            .sfs
            .get_mut(&app_sf)
            .ok_or(EngineError::UnknownSuperFunction(app_sf))?
            .state = SfState::PausedForChild;
        self.scheduler.on_switch_out(
            &mut self.core,
            CoreId(c),
            app_sf,
            SwitchReason::PausedForChild,
        );

        let syscall_sf = self.core.create_syscall_sf(c, tid, app_sf)?;
        let overhead =
            self.scheduler
                .overhead_for(&self.core, SchedEvent::SfStart, Some(syscall_sf));
        self.core.charge_sched_overhead(c, overhead);
        self.scheduler
            .enqueue(&mut self.core, syscall_sf, Some(CoreId(c)))?;
        self.core.wake_all_idle();
        Ok(())
    }

    fn on_blocked(&mut self, c: usize, device: DeviceKind) -> Result<(), EngineError> {
        let sf = self.core.cores[c]
            .current
            .take()
            .ok_or(EngineError::NoCurrentSf { core: CoreId(c) })?;
        self.core.try_sf_mut(sf)?.state = SfState::Waiting;
        let at = self.core.cores[c].clock;
        self.core.trace.record(TraceEvent::Blocked { at, sf });
        self.scheduler
            .on_switch_out(&mut self.core, CoreId(c), sf, SwitchReason::Blocked);
        self.scheduler.on_block(&mut self.core, sf);
        let overhead = self
            .scheduler
            .overhead_for(&self.core, SchedEvent::SfPause, Some(sf));
        self.core.charge_sched_overhead(c, overhead);

        let latency = match device {
            DeviceKind::Disk => self.core.cfg.disk_latency_cycles,
            DeviceKind::Network => self.core.cfg.network_latency_cycles,
            DeviceKind::Timer => self.core.cfg.timer_sleep_cycles,
        };
        let when = self.core.cores[c].clock + latency.max(1);
        self.core
            .schedule_event(when, EventKind::DeviceComplete { device, waiter: sf });
        Ok(())
    }

    fn on_completed(&mut self, c: usize) -> Result<(), EngineError> {
        let sf_id = self.core.cores[c]
            .current
            .take()
            .ok_or(EngineError::NoCurrentSf { core: CoreId(c) })?;
        let at = self.core.cores[c].clock;
        self.core
            .trace
            .record(TraceEvent::Completed { at, sf: sf_id });
        let overhead = self
            .scheduler
            .overhead_for(&self.core, SchedEvent::SfStop, Some(sf_id));
        self.core.charge_sched_overhead(c, overhead);
        self.core.try_sf_mut(sf_id)?.state = SfState::Done;
        self.scheduler
            .on_switch_out(&mut self.core, CoreId(c), sf_id, SwitchReason::Completed);
        self.scheduler.on_complete(&mut self.core, sf_id);

        let sf = self
            .core
            .sfs
            .remove(&sf_id)
            .ok_or(EngineError::UnknownSuperFunction(sf_id))?;
        if let Some(state) = self.sanitizer.as_mut() {
            state.note_completed(sf.instructions_retired);
        }
        match sf.body {
            SfBody::Syscall { .. } => {
                // Operation accounting: one application-level operation
                // per `op_syscalls` completed system calls of the
                // benchmark.
                let bench = self.core.threads[sf.tid.0 as usize].benchmark;
                self.core.op_progress[bench] += 1;
                self.core.syscalls_completed[bench] += 1;
                if self.core.op_progress[bench] >= self.core.instances[bench].spec.op_syscalls {
                    self.core.op_progress[bench] = 0;
                    self.core.stats.ops_per_benchmark[bench] += 1;
                }
                // Return to the parent (the paper's parentSuperFuncPtr
                // hand-off in TMigrate).
                let parent = sf.parent.ok_or_else(|| EngineError::StateCorruption {
                    detail: format!("syscall {sf_id} completed without a parent"),
                })?;
                let p = self
                    .core
                    .sfs
                    .get_mut(&parent)
                    .ok_or(EngineError::UnknownSuperFunction(parent))?;
                debug_assert_eq!(p.state, SfState::PausedForChild);
                p.state = SfState::Runnable;
                p.runnable_since = self.core.cores[c].clock;
                self.scheduler
                    .enqueue(&mut self.core, parent, Some(CoreId(c)))?;
            }
            SfBody::Interrupt {
                bottom_half,
                waiter,
                ..
            } => {
                if let Some(bh_name) = bottom_half {
                    let bh = self.core.create_bottom_half_sf(c, bh_name, waiter)?;
                    let overhead =
                        self.scheduler
                            .overhead_for(&self.core, SchedEvent::SfStart, Some(bh));
                    self.core.charge_sched_overhead(c, overhead);
                    self.scheduler
                        .enqueue(&mut self.core, bh, Some(CoreId(c)))?;
                } else if let Some(w) = waiter {
                    self.wake_sf(c, w)?;
                }
                // Resume whatever the interrupt preempted.
                if let Some(prev) = self.core.cores[c].preempt_stack.pop() {
                    self.core.prepare_dispatch(c, prev)?;
                    self.scheduler.on_dispatch(&mut self.core, CoreId(c), prev);
                }
            }
            SfBody::BottomHalf { wake, .. } => {
                if let Some(w) = wake {
                    self.wake_sf(c, w)?;
                }
            }
            SfBody::Application { .. } => {
                return Err(EngineError::StateCorruption {
                    detail: format!("application {sf_id} reached Completed boundary"),
                });
            }
        }
        self.core.wake_all_idle();
        Ok(())
    }

    fn wake_sf(&mut self, c: usize, sf: SfId) -> Result<(), EngineError> {
        let overhead = self
            .scheduler
            .overhead_for(&self.core, SchedEvent::SfWakeup, Some(sf));
        self.core.charge_sched_overhead(c, overhead);
        let clock = self.core.cores[c].clock;
        let s = self.core.try_sf_mut(sf)?;
        debug_assert_eq!(s.state, SfState::Waiting);
        s.state = SfState::Runnable;
        s.runnable_since = clock;
        self.scheduler
            .enqueue(&mut self.core, sf, Some(CoreId(c)))?;
        self.core.wake_all_idle();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_events_pop_in_time_order_with_seq_tiebreak() {
        let mut heap = BinaryHeap::new();
        heap.push(HeapEvent {
            time: 30,
            seq: 1,
            kind: EventKind::Epoch,
        });
        heap.push(HeapEvent {
            time: 10,
            seq: 3,
            kind: EventKind::Epoch,
        });
        heap.push(HeapEvent {
            time: 10,
            seq: 2,
            kind: EventKind::TimerTick { core: 0 },
        });
        heap.push(HeapEvent {
            time: 20,
            seq: 4,
            kind: EventKind::Epoch,
        });
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.time, e.seq))
            .collect();
        assert_eq!(order, vec![(10, 2), (10, 3), (20, 4), (30, 1)]);
    }

    #[test]
    fn workload_spec_constructors() {
        let w = WorkloadSpec::single(BenchmarkKind::Find, 2.0);
        assert_eq!(w.parts, vec![(BenchmarkKind::Find, 2.0)]);
        assert!(w.custom.is_empty());

        let spec = BenchmarkSpec::for_kind(BenchmarkKind::Apache);
        let w = WorkloadSpec::custom(spec.clone(), 1.5);
        assert!(w.parts.is_empty());
        assert_eq!(w.custom.len(), 1);
        assert_eq!(w.custom[0].1, 1.5);

        let bag = MultiProgrammedWorkload::by_name("MPW-B").expect("exists");
        let w = WorkloadSpec::from(&bag);
        assert_eq!(w.parts.len(), 2);
    }

    #[test]
    fn empty_workload_rejected() {
        let cfg = EngineConfig::fast();
        let err = Engine::new(
            cfg,
            &WorkloadSpec::default(),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        )
        .expect_err("empty workload must be rejected");
        assert_eq!(
            err,
            EngineError::Config(crate::error::ConfigError::EmptyWorkload)
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = EngineConfig::fast().with_max_instructions(0);
        let err = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        )
        .expect_err("zero instruction budget must be rejected");
        assert!(matches!(err, EngineError::Config(_)));
    }

    #[test]
    fn kernel_tid_is_reserved() {
        assert_eq!(KERNEL_TID, ThreadId(u64::MAX));
    }

    #[test]
    fn engine_debug_shows_scheduler_name() {
        let cfg =
            EngineConfig::fast().with_system(schedtask_sim::SystemConfig::table2().with_cores(2));
        let engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        )
        .expect("engine builds");
        let dbg = format!("{engine:?}");
        assert!(dbg.contains("GlobalFifo"));
    }

    #[test]
    fn engine_cannot_run_twice() {
        let cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(20_000);
        let mut engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        )
        .expect("engine builds");
        engine.run().expect("first run succeeds");
        assert_eq!(
            engine.run().expect_err("second run rejected"),
            EngineError::AlreadyRan
        );
    }

    fn small_engine(cfg: EngineConfig) -> Engine {
        Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        )
        .expect("engine builds")
    }

    #[test]
    fn sanitized_run_is_clean_and_counts_checks() {
        let cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(50_000)
            .with_sanitizer();
        let mut engine = small_engine(cfg);
        let stats = engine.run().expect("sanitized run stays clean");
        assert!(stats.sanitizer_checks > 0, "sanitizer must actually run");
        assert_eq!(stats.faults.total(), 0);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = || {
            let cfg = EngineConfig::fast()
                .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
                .with_max_instructions(80_000)
                .with_faults(crate::faults::FaultPlan::heavy(7));
            let mut engine = small_engine(cfg);
            let stats = engine
                .run()
                .expect("faulty run degrades gracefully")
                .clone();
            (
                stats.instructions.total_workload(),
                stats.final_cycle,
                stats.faults,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed + plan must give identical stats");
        assert!(a.2.total() > 0, "heavy plan must inject something");
    }

    #[test]
    fn faulty_run_with_sanitizer_keeps_invariants() {
        let cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(50_000)
            .with_faults(crate::faults::FaultPlan::light(3))
            .with_sanitizer();
        let mut engine = small_engine(cfg);
        let stats = engine
            .run()
            .expect("fault injection must not break invariants");
        assert!(stats.sanitizer_checks > 0);
    }

    /// A scheduler that accepts SuperFunctions and never hands one back:
    /// time advances through timer ticks but no instructions retire, the
    /// canonical livelock.
    #[derive(Debug)]
    struct BlackHoleScheduler;

    impl crate::scheduler::Scheduler for BlackHoleScheduler {
        fn name(&self) -> &'static str {
            "BlackHole"
        }
        fn enqueue(
            &mut self,
            _ctx: &mut EngineCore,
            _sf: SfId,
            _origin: Option<CoreId>,
        ) -> Result<(), crate::error::SchedError> {
            Ok(())
        }
        fn pick_next(
            &mut self,
            _ctx: &mut EngineCore,
            _core: CoreId,
        ) -> Result<Option<SfId>, crate::error::SchedError> {
            Ok(None)
        }
    }

    #[test]
    fn watchdog_flags_livelock() {
        let mut cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(50_000);
        cfg.watchdog.max_stall_cycles = 200_000;
        let mut engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(BlackHoleScheduler),
        )
        .expect("engine builds");
        let err = engine
            .run()
            .expect_err("black-hole scheduler must livelock");
        assert!(
            matches!(err, EngineError::Livelock { .. }),
            "expected livelock, got {err}"
        );
    }

    #[test]
    fn watchdog_event_budget() {
        let mut cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(u64::MAX / 4);
        cfg.watchdog.max_events = 100;
        let mut engine = small_engine(cfg);
        let err = engine.run().expect_err("budget of 100 steps must trip");
        assert_eq!(
            err,
            EngineError::EventBudgetExceeded {
                events_processed: 101
            }
        );
    }

    #[test]
    fn scheduler_error_propagates() {
        #[derive(Debug)]
        struct FailingScheduler;
        impl crate::scheduler::Scheduler for FailingScheduler {
            fn name(&self) -> &'static str {
                "Failing"
            }
            fn enqueue(
                &mut self,
                _ctx: &mut EngineCore,
                _sf: SfId,
                _origin: Option<CoreId>,
            ) -> Result<(), crate::error::SchedError> {
                Err(crate::error::SchedError::CorruptQueue {
                    core: CoreId(0),
                    detail: "synthetic".to_string(),
                })
            }
            fn pick_next(
                &mut self,
                _ctx: &mut EngineCore,
                _core: CoreId,
            ) -> Result<Option<SfId>, crate::error::SchedError> {
                Ok(None)
            }
        }
        let cfg =
            EngineConfig::fast().with_system(schedtask_sim::SystemConfig::table2().with_cores(2));
        let mut engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(FailingScheduler),
        )
        .expect("engine builds");
        let err = engine.run().expect_err("enqueue failure must propagate");
        assert!(matches!(err, EngineError::Scheduler(_)));
    }
}
