//! The discrete-event simulation engine.
//!
//! The engine owns the machine ([`schedtask_sim::MemorySystem`] plus
//! per-core state including the hardware Page-heatmap registers), the OS
//! object model (threads, SuperFunctions, devices, the interrupt
//! controller), and global time. The scheduling *policy* is a plug-in
//! ([`crate::Scheduler`]); the engine invokes it at exactly the points
//! where the paper's TMigrate/TAlloc hooks run.
//!
//! Cores advance private clocks; the engine always processes whichever is
//! earliest — the next device/timer/epoch event or the lowest-clock busy
//! core — so execution is deterministic and causally consistent to within
//! one quantum.

use crate::config::EngineConfig;
use crate::ids::{CoreId, SfId, SfIdAllocator, ThreadId};
use crate::scheduler::{SchedEvent, Scheduler, SwitchReason};
use crate::stats::SimStats;
use crate::superfunction::{SfBody, SfState, SuperFunction};
use crate::trace::{TraceEvent, TraceLog};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use schedtask_sim::{CodeDomain, GshareBranchPredictor, MemorySystem, PageHeatmap};
use schedtask_workload::{
    BenchmarkInstance, BenchmarkKind, BenchmarkSpec, DeviceKind, Footprint, FootprintWalker,
    MultiProgrammedWorkload, PageAllocator, ServiceCatalog, SfCategory, SuperFuncType, WalkParams,
    LINES_PER_PAGE,
};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// The `tid` used for kernel contexts that no thread created (external
/// interrupts and their bottom halves).
pub const KERNEL_TID: ThreadId = ThreadId(u64::MAX);

/// What benchmarks run, and at which per-benchmark scale (Section 6.3's
/// 1X/2X/... and the appendix's multi-programmed bags).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadSpec {
    /// (benchmark, scale) pairs.
    pub parts: Vec<(BenchmarkKind, f64)>,
    /// Fully custom benchmark specs (e.g. phase-shifted variants built
    /// with [`BenchmarkSpec::with_phase_shift`]), each with a scale.
    pub custom: Vec<(BenchmarkSpec, f64)>,
}

impl WorkloadSpec {
    /// A single benchmark at the given scale.
    pub fn single(kind: BenchmarkKind, scale: f64) -> Self {
        WorkloadSpec {
            parts: vec![(kind, scale)],
            custom: Vec::new(),
        }
    }

    /// A single custom benchmark spec at the given scale.
    pub fn custom(spec: BenchmarkSpec, scale: f64) -> Self {
        WorkloadSpec {
            parts: Vec::new(),
            custom: vec![(spec, scale)],
        }
    }
}

impl From<&MultiProgrammedWorkload> for WorkloadSpec {
    fn from(w: &MultiProgrammedWorkload) -> Self {
        WorkloadSpec {
            parts: w.parts.clone(),
            custom: Vec::new(),
        }
    }
}

/// One simulated thread (or single-threaded process instance).
#[derive(Debug)]
struct Thread {
    benchmark: usize,
    app_sf: SfId,
    private_data: Arc<Footprint>,
    rng: SmallRng,
    last_core: Option<CoreId>,
}

/// An interrupt delivered to a core but not yet serviced.
#[derive(Debug, Clone)]
struct PendingIrq {
    name: &'static str,
    waiter: Option<SfId>,
    raised_at: u64,
}

/// Per-core execution state.
#[derive(Debug)]
struct CoreState {
    clock: u64,
    current: Option<SfId>,
    preempt_stack: Vec<SfId>,
    pending_irqs: VecDeque<PendingIrq>,
    idle: bool,
    /// The hardware Page-heatmap register (Section 5.4), if armed.
    heatmap: Option<PageHeatmap>,
    /// Exact page collection (Figure 11's ideal-ranking baseline).
    exact_pages: Option<HashSet<u64>>,
    sched_walker: FootprintWalker,
    /// Explicit branch predictor, when the machine models branches.
    branch_predictor: Option<GshareBranchPredictor>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    DeviceComplete { device: DeviceKind, waiter: SfId },
    ExternalIrq { bench: usize },
    TimerTick { core: usize },
    Epoch,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEvent {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for HeapEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// What ended an execution quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Boundary {
    None,
    AppBurstEnd,
    Blocked(DeviceKind),
    Completed,
}

/// The engine's state, passed to every scheduler hook as the context.
///
/// Schedulers use this to query SuperFunction metadata, read the hardware
/// Page-heatmap registers, probe i-caches (SLICC's remote-tag search), and
/// inspect workload structure.
#[derive(Debug)]
pub struct EngineCore {
    cfg: EngineConfig,
    mem: MemorySystem,
    catalog: ServiceCatalog,
    instances: Vec<BenchmarkInstance>,
    threads: Vec<Thread>,
    sfs: HashMap<SfId, SuperFunction>,
    cores: Vec<CoreState>,
    events: BinaryHeap<HeapEvent>,
    event_seq: u64,
    id_alloc: SfIdAllocator,
    stats: SimStats,
    rng: SmallRng,
    now: u64,
    measure_start: u64,
    warmed_up: bool,
    epoch_prev: crate::stats::CategoryInstructions,
    irq_rate_interval: Vec<u64>,
    trace: TraceLog,
    /// Completed system calls per benchmark since the last whole
    /// operation (operations are counted benchmark-wide: every
    /// `op_syscalls` completed system calls is one application-level
    /// operation).
    op_progress: Vec<u32>,
    /// Total completed system calls per benchmark (drives workload phase
    /// shifts).
    syscalls_completed: Vec<u64>,
}

impl EngineCore {
    // ---- Public query API (for schedulers) ---------------------------

    /// Current simulated time in cycles (the time of the event or core
    /// step being processed).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The OS service catalog in use.
    pub fn catalog(&self) -> &ServiceCatalog {
        &self.catalog
    }

    /// The benchmark instances in this workload.
    pub fn benchmarks(&self) -> &[BenchmarkInstance] {
        &self.instances
    }

    /// SuperFunction type.
    ///
    /// # Panics
    ///
    /// Panics if the SuperFunction does not exist.
    pub fn sf_type(&self, sf: SfId) -> SuperFuncType {
        self.sf(sf).sf_type
    }

    /// SuperFunction state.
    pub fn sf_state(&self, sf: SfId) -> SfState {
        self.sf(sf).state
    }

    /// SuperFunction parent (`parentSuperFuncPtr`).
    pub fn sf_parent(&self, sf: SfId) -> Option<SfId> {
        self.sf(sf).parent
    }

    /// Owning thread id.
    pub fn sf_tid(&self, sf: SfId) -> ThreadId {
        self.sf(sf).tid
    }

    /// Cycles the SuperFunction has consumed so far.
    pub fn sf_cycles(&self, sf: SfId) -> u64 {
        self.sf(sf).cycles_used
    }

    /// Instructions the SuperFunction has retired so far.
    pub fn sf_instructions(&self, sf: SfId) -> u64 {
        self.sf(sf).instructions_retired
    }

    /// The physical code pages the SuperFunction executes from (models
    /// hardware that can observe the upcoming fetch stream, as SLICC's
    /// migration unit does).
    pub fn sf_code_pages(&self, sf: SfId) -> Vec<u64> {
        self.sf(sf).walker.code().pages().to_vec()
    }

    /// True if the SuperFunction's thread belongs to a single-threaded
    /// benchmark (Find/Iscp/Oscp) — FlexSC's behaviour differs for these.
    pub fn sf_is_single_threaded_app(&self, sf: SfId) -> bool {
        let tid = self.sf_tid(sf);
        if tid == KERNEL_TID {
            return false;
        }
        let t = &self.threads[tid.0 as usize];
        self.instances[t.benchmark].spec.single_threaded
    }

    /// The core the thread last executed on, if any.
    pub fn thread_last_core(&self, tid: ThreadId) -> Option<CoreId> {
        if tid == KERNEL_TID {
            return None;
        }
        self.threads[tid.0 as usize].last_core
    }

    /// Number of threads in the workload.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Non-destructively checks whether `core`'s L1 i-cache holds `line`
    /// (SLICC's zero-cost remote tag search, Table 3).
    pub fn probe_icache(&self, core: CoreId, line: u64) -> bool {
        self.mem.probe_icache(core.0, line)
    }

    /// Loads the hardware Page-heatmap register of `core` (the paper's
    /// special load instruction). Subsequent committed instruction pages
    /// set bits in it.
    pub fn heatmap_load(&mut self, core: CoreId, heatmap: PageHeatmap) {
        self.cores[core.0].heatmap = Some(heatmap);
    }

    /// Stores the Page-heatmap register out of `core` (the paper's
    /// special store instruction), disarming collection.
    pub fn heatmap_take(&mut self, core: CoreId) -> Option<PageHeatmap> {
        self.cores[core.0].heatmap.take()
    }

    /// Enables exact page-set collection on every core (used only to
    /// compute Figure 11's ideal ranking; real hardware has no such
    /// facility).
    pub fn exact_pages_enable(&mut self, enabled: bool) {
        for c in &mut self.cores {
            c.exact_pages = if enabled { Some(HashSet::new()) } else { None };
        }
    }

    /// Takes and clears the exact page set collected on `core`.
    pub fn exact_pages_take(&mut self, core: CoreId) -> HashSet<u64> {
        match self.cores[core.0].exact_pages.as_mut() {
            Some(set) => std::mem::take(set),
            None => HashSet::new(),
        }
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The SuperFunction lifecycle trace (empty unless
    /// [`EngineConfig::trace_capacity`] is set).
    ///
    /// [`EngineConfig::trace_capacity`]: crate::EngineConfig::trace_capacity
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    // ---- Internal helpers ---------------------------------------------

    fn sf(&self, id: SfId) -> &SuperFunction {
        self.sfs
            .get(&id)
            .unwrap_or_else(|| panic!("unknown SuperFunction {id}"))
    }

    fn schedule_event(&mut self, time: u64, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(HeapEvent {
            time,
            seq: self.event_seq,
            kind,
        });
    }

    fn wake_core(&mut self, c: usize) {
        let now = self.now;
        let core = &mut self.cores[c];
        if core.idle {
            if now > core.clock {
                self.stats.core_time[c].idle_cycles += now - core.clock;
                core.clock = now;
            }
            core.idle = false;
        }
    }

    fn wake_all_idle(&mut self) {
        for c in 0..self.cores.len() {
            self.wake_core(c);
        }
    }

    fn go_idle(&mut self, c: usize) {
        self.cores[c].idle = true;
    }

    /// Executes `n` scheduler-code instructions on core `c` (OS domain),
    /// charging cycles and counting them in the scheduler bucket.
    fn charge_sched_overhead(&mut self, c: usize, n: u64) {
        if n == 0 {
            return;
        }
        let base_cpi = self.cfg.system.base_cpi;
        let core = &mut self.cores[c];
        let mut cycles = 0u64;
        let mut executed = 0u64;
        while executed < n {
            let block = core.sched_walker.next_block();
            cycles += self.mem.fetch_code(c, block.line, CodeDomain::Os);
            if let Some(d) = block.data_ref {
                cycles += self.mem.access_data(c, d.line, d.write, CodeDomain::Os);
            }
            executed += block.instructions as u64;
        }
        cycles += (executed as f64 * base_cpi).round() as u64;
        core.clock += cycles;
        self.stats.core_time[c].busy_cycles += cycles;
        self.stats.instructions.scheduler += executed;
    }

    /// Runs one quantum of the core's current SuperFunction. Returns the
    /// boundary reached, if any.
    fn execute_quantum(&mut self, c: usize) -> Boundary {
        let sf_id = self.cores[c].current.expect("execute without current SF");
        let base_cpi = self.cfg.system.base_cpi;
        let quantum = self.cfg.quantum_instructions;

        let sf = self.sfs.get_mut(&sf_id).expect("current SF exists");
        let domain = if sf.category() == SfCategory::Application {
            CodeDomain::Application
        } else {
            CodeDomain::Os
        };
        let boundary_in = sf.instructions_until_boundary();
        let target = boundary_in.min(quantum).max(1);

        let core = &mut self.cores[c];
        let mispredict_penalty = self.cfg.system.branch_predictor.map(|(_, p)| p);
        let mut cycles = 0u64;
        let mut executed = 0u64;
        let mut branches = 0u64;
        let mut mispredicts = 0u64;
        let lines_per_page = LINES_PER_PAGE;
        while executed < target {
            let block = sf.walker.next_block();
            cycles += self.mem.fetch_code(c, block.line, domain);
            let page = block.line / lines_per_page;
            if let Some(hm) = core.heatmap.as_mut() {
                hm.insert_pfn(page);
            }
            if let Some(set) = core.exact_pages.as_mut() {
                set.insert(page);
            }
            if let Some(d) = block.data_ref {
                cycles += self.mem.access_data(c, d.line, d.write, domain);
            }
            if let (Some(penalty), Some(bp)) =
                (mispredict_penalty, core.branch_predictor.as_mut())
            {
                branches += 1;
                if !bp.predict_and_train(block.line, block.branch_taken) {
                    mispredicts += 1;
                    cycles += penalty;
                }
            }
            executed += block.instructions as u64;
        }
        self.stats.branches += branches;
        self.stats.branch_mispredictions += mispredicts;
        cycles += (executed as f64 * base_cpi).round() as u64;

        core.clock += cycles;
        sf.cycles_used += cycles;
        sf.instructions_retired += executed;
        self.stats.core_time[c].busy_cycles += cycles;
        self.stats.instructions.add(sf.category(), executed);

        // Per-thread accounting for thread-context SuperFunctions.
        if sf.tid != KERNEL_TID
            && matches!(
                sf.category(),
                SfCategory::Application | SfCategory::SystemCall
            )
        {
            let idx = sf.tid.0 as usize;
            if self.stats.per_thread_instructions.len() <= idx {
                self.stats.per_thread_instructions.resize(idx + 1, 0);
            }
            self.stats.per_thread_instructions[idx] += executed;
        }

        // Advance the body and detect boundaries.
        match &mut sf.body {
            SfBody::Application { burst_left } => {
                *burst_left = burst_left.saturating_sub(executed);
                if *burst_left == 0 {
                    Boundary::AppBurstEnd
                } else {
                    Boundary::None
                }
            }
            SfBody::Syscall { remaining, block } => {
                *remaining = remaining.saturating_sub(executed);
                match block {
                    Some((at, dev)) if *remaining <= *at => {
                        let dev = *dev;
                        *block = None;
                        Boundary::Blocked(dev)
                    }
                    _ => {
                        if *remaining == 0 {
                            Boundary::Completed
                        } else {
                            Boundary::None
                        }
                    }
                }
            }
            SfBody::Interrupt { remaining, .. } | SfBody::BottomHalf { remaining, .. } => {
                *remaining = remaining.saturating_sub(executed);
                if *remaining == 0 {
                    Boundary::Completed
                } else {
                    Boundary::None
                }
            }
        }
    }

    /// Marks `sf` running on core `c`, counting thread migrations and
    /// resampling the application burst if needed.
    fn prepare_dispatch(&mut self, c: usize, sf_id: SfId) {
        let sf = self.sfs.get_mut(&sf_id).expect("dispatch unknown SF");
        debug_assert!(
            matches!(sf.state, SfState::Runnable | SfState::Preempted),
            "dispatching SF in state {:?}",
            sf.state
        );
        sf.state = SfState::Running;
        let tid = sf.tid;
        let category = sf.category();

        if let SfBody::Application { burst_left } = &mut sf.body {
            if *burst_left == 0 {
                let t = &mut self.threads[tid.0 as usize];
                let spec = &self.instances[t.benchmark].spec;
                *burst_left = spec.app_burst.sample(&mut t.rng).max(1);
            }
        }

        // Thread-migration accounting (Figure 10): application and
        // system-call SuperFunctions execute in thread context.
        if tid != KERNEL_TID
            && matches!(category, SfCategory::Application | SfCategory::SystemCall)
        {
            let t = &mut self.threads[tid.0 as usize];
            if let Some(prev) = t.last_core {
                if prev.0 != c {
                    self.stats.thread_migrations += 1;
                    let cost = self.cfg.migration_cost_cycles;
                    self.cores[c].clock += cost;
                    self.stats.core_time[c].busy_cycles += cost;
                    let at = self.cores[c].clock;
                    self.trace.record(TraceEvent::Migrated {
                        at,
                        tid,
                        from: prev,
                        to: CoreId(c),
                    });
                }
            }
            self.threads[tid.0 as usize].last_core = Some(CoreId(c));
        }

        self.cores[c].current = Some(sf_id);
        let at = self.cores[c].clock;
        self.trace
            .record(TraceEvent::Dispatched { at, sf: sf_id, core: CoreId(c) });
    }

    /// Creates a system-call SuperFunction for `tid` on core `c`.
    fn create_syscall_sf(&mut self, c: usize, tid: ThreadId, parent: SfId) -> SfId {
        let t = &mut self.threads[tid.0 as usize];
        let inst = &self.instances[t.benchmark];
        let progress = self.syscalls_completed[t.benchmark];
        let name = inst.sample_syscall_at(&mut t.rng, progress);
        let spec = self.catalog.syscall(name);
        let len = spec.len.sample(&mut t.rng).max(1);
        let block_mult = inst.spec.blocking_multiplier;
        let block = spec.blocking.and_then(|b| {
            if t.rng.gen_bool((b.probability * block_mult).clamp(0.0, 1.0)) {
                let at = (len as f64 * (1.0 - b.at_fraction)) as u64;
                Some((at.min(len - 1), b.device))
            } else {
                None
            }
        });
        let id = self.id_alloc.next(CoreId(c));
        let seed = self.cfg.seed ^ id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let walker = FootprintWalker::new(
            Arc::clone(&spec.code),
            Arc::clone(&spec.shared_data),
            Arc::clone(&t.private_data),
            WalkParams::default(),
            seed,
        );
        let sf_type = spec.super_func_type();
        let sf = SuperFunction {
            id,
            sf_type,
            parent: Some(parent),
            tid,
            state: SfState::Runnable,
            body: SfBody::Syscall {
                remaining: len,
                block,
            },
            walker,
            cycles_used: 0,
            instructions_retired: 0,
            runnable_since: self.cores[c].clock,
        };
        self.sfs.insert(id, sf);
        let at = self.cores[c].clock;
        self.trace.record(TraceEvent::Created { at, sf: id, sf_type, tid });
        id
    }

    /// Creates an interrupt SuperFunction on core `c`.
    fn create_interrupt_sf(&mut self, c: usize, irq_name: &'static str, waiter: Option<SfId>) -> SfId {
        let spec = self.catalog.interrupt(irq_name);
        let len = spec.len.sample(&mut self.rng).max(1);
        let id = self.id_alloc.next(CoreId(c));
        let seed = self.cfg.seed ^ id.0.wrapping_mul(0xD134_2543_DE82_EF95);
        let tid = waiter.map(|w| self.sf(w).tid).unwrap_or(KERNEL_TID);
        let walker = FootprintWalker::new(
            Arc::clone(&spec.code),
            Arc::clone(&spec.shared_data),
            Arc::new(Footprint::new()),
            WalkParams::default(),
            seed,
        );
        let sf = SuperFunction {
            id,
            sf_type: spec.super_func_type(),
            parent: None,
            tid,
            state: SfState::Runnable,
            body: SfBody::Interrupt {
                remaining: len,
                bottom_half: spec.bottom_half,
                waiter,
            },
            walker,
            cycles_used: 0,
            instructions_retired: 0,
            runnable_since: self.cores[c].clock,
        };
        self.sfs.insert(id, sf);
        id
    }

    /// Creates a bottom-half SuperFunction on core `c`.
    fn create_bottom_half_sf(&mut self, c: usize, name: &'static str, wake: Option<SfId>) -> SfId {
        let spec = self.catalog.bottom_half(name);
        let len = spec.len.sample(&mut self.rng).max(1);
        let id = self.id_alloc.next(CoreId(c));
        let seed = self.cfg.seed ^ id.0.wrapping_mul(0xA076_1D64_78BD_642F);
        let tid = wake.map(|w| self.sf(w).tid).unwrap_or(KERNEL_TID);
        let walker = FootprintWalker::new(
            Arc::clone(&spec.code),
            Arc::clone(&spec.shared_data),
            Arc::new(Footprint::new()),
            WalkParams::default(),
            seed,
        );
        let sf = SuperFunction {
            id,
            sf_type: spec.super_func_type(),
            parent: None,
            tid,
            state: SfState::Runnable,
            body: SfBody::BottomHalf {
                remaining: len,
                wake,
            },
            walker,
            cycles_used: 0,
            instructions_retired: 0,
            runnable_since: self.cores[c].clock,
        };
        self.sfs.insert(id, sf);
        id
    }

    fn snapshot_epoch_breakup(&mut self) {
        let cur = self.stats.instructions;
        let delta = crate::stats::CategoryInstructions {
            application: cur.application - self.epoch_prev.application,
            syscall: cur.syscall - self.epoch_prev.syscall,
            interrupt: cur.interrupt - self.epoch_prev.interrupt,
            bottom_half: cur.bottom_half - self.epoch_prev.bottom_half,
            scheduler: cur.scheduler - self.epoch_prev.scheduler,
        };
        self.epoch_prev = cur;
        self.stats.epoch_breakups.push(delta.breakup_percent());
    }

    fn reset_for_measurement(&mut self) {
        let num_cores = self.cores.len();
        let num_bench = self.instances.len();
        let breakups = std::mem::take(&mut self.stats.epoch_breakups);
        self.stats = SimStats::new(num_cores, num_bench);
        self.stats.epoch_breakups = breakups; // epoch history spans warm-up
        self.stats.per_thread_instructions = vec![0; self.threads.len()];
        self.mem.reset_stats();
        self.epoch_prev = self.stats.instructions;
        self.measure_start = self.now;
        self.warmed_up = true;
    }
}

/// The simulation engine: an [`EngineCore`] plus the scheduling policy.
pub struct Engine {
    core: EngineCore,
    scheduler: Box<dyn Scheduler>,
    finished: bool,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("scheduler", &self.scheduler.name())
            .field("now", &self.core.now)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine for `workload` under `scheduler`.
    ///
    /// # Panics
    ///
    /// Panics if the workload is empty.
    pub fn new(cfg: EngineConfig, workload: &WorkloadSpec, scheduler: Box<dyn Scheduler>) -> Self {
        assert!(
            !(workload.parts.is_empty() && workload.custom.is_empty()),
            "workload must not be empty"
        );
        let mut alloc = PageAllocator::new();
        let catalog = ServiceCatalog::standard(&mut alloc);
        let num_cores = cfg.system.num_cores;
        let mem = MemorySystem::new(&cfg.system);
        let mut id_alloc = SfIdAllocator::new(num_cores);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Instantiate benchmarks and threads.
        let mut instances = Vec::new();
        let mut threads: Vec<Thread> = Vec::new();
        let mut sfs = HashMap::new();
        let mut irq_rate_interval = Vec::new();
        let all_specs: Vec<(BenchmarkSpec, f64)> = workload
            .parts
            .iter()
            .map(|&(kind, scale)| (BenchmarkSpec::for_kind(kind), scale))
            .chain(workload.custom.iter().cloned())
            .collect();
        for (pi, (spec, scale)) in all_specs.into_iter().enumerate() {
            let inst = BenchmarkInstance::new(spec, &mut alloc);
            let n_threads = inst.spec.threads(cfg.workload_reference_cores, scale);
            // Spontaneous interrupt pacing for this benchmark.
            let interval = match inst.spec.spontaneous_irq {
                Some((_, per_core_per_mcycle)) if per_core_per_mcycle > 0.0 => {
                    (1_000_000.0 / (per_core_per_mcycle * num_cores as f64)) as u64
                }
                _ => 0,
            };
            irq_rate_interval.push(interval.max(1));

            for t in 0..n_threads {
                let tid = ThreadId(threads.len() as u64);
                let home = CoreId(threads.len() % num_cores);
                let private =
                    Arc::new(inst.private_data(&mut alloc, &format!("b{pi}t{t}")));
                let app_params = WalkParams {
                    hot_fraction: inst.spec.app_hot_fraction,
                    ..WalkParams::default()
                };
                let seed = cfg
                    .seed
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(tid.0);
                let walker = FootprintWalker::new(
                    Arc::clone(&inst.app_code),
                    Arc::clone(&inst.app_shared_data),
                    Arc::clone(&private),
                    app_params,
                    seed,
                );
                let mut t_rng = SmallRng::seed_from_u64(seed ^ 0xABCD_EF01);
                let first_burst = inst.spec.app_burst.sample(&mut t_rng).max(1);
                let sf_id = id_alloc.next(home);
                let sf = SuperFunction {
                    id: sf_id,
                    sf_type: inst.app_super_func_type,
                    parent: None,
                    tid,
                    state: SfState::Runnable,
                    body: SfBody::Application {
                        burst_left: first_burst,
                    },
                    walker,
                    cycles_used: 0,
                    instructions_retired: 0,
                    runnable_since: 0,
                };
                sfs.insert(sf_id, sf);
                threads.push(Thread {
                    benchmark: pi,
                    app_sf: sf_id,
                    private_data: private,
                    rng: t_rng,
                    last_core: None,
                });
            }
            instances.push(inst);
        }

        // Per-core scheduler-code walkers (the scheduler pollutes the
        // i-cache like any other kernel code).
        let sched_region = alloc.region("k:sched", 4);
        let sched_data = alloc.region("kd:sched", 3);
        let sched_code = Arc::new(Footprint::from_regions([&sched_region]));
        let sched_shared = Arc::new(Footprint::from_regions([&sched_data]));
        let cores = (0..num_cores)
            .map(|c| CoreState {
                clock: 0,
                current: None,
                preempt_stack: Vec::new(),
                pending_irqs: VecDeque::new(),
                idle: false,
                heatmap: None,
                exact_pages: None,
                sched_walker: FootprintWalker::new(
                    Arc::clone(&sched_code),
                    Arc::clone(&sched_shared),
                    Arc::new(Footprint::new()),
                    WalkParams::default(),
                    rng.gen::<u64>() ^ c as u64,
                ),
                branch_predictor: cfg
                    .system
                    .branch_predictor
                    .map(|(entries, _)| GshareBranchPredictor::new(entries)),
            })
            .collect();

        let num_benchmarks = instances.len();
        let num_threads = threads.len();
        let mut stats = SimStats::new(num_cores, num_benchmarks);
        stats.per_thread_instructions = vec![0; num_threads];

        let cfg_trace_capacity = cfg.trace_capacity;
        Engine {
            core: EngineCore {
                cfg,
                mem,
                catalog,
                instances,
                threads,
                sfs,
                cores,
                events: BinaryHeap::new(),
                event_seq: 0,
                id_alloc,
                stats,
                rng,
                now: 0,
                measure_start: 0,
                warmed_up: false,
                epoch_prev: crate::stats::CategoryInstructions::default(),
                irq_rate_interval,
                trace: TraceLog::new(cfg_trace_capacity),
                op_progress: vec![0; num_benchmarks],
                syscalls_completed: vec![0; num_benchmarks],
            },
            scheduler,
            finished: false,
        }
    }

    /// Access to the engine state (for inspection in tests and
    /// experiments).
    pub fn engine_core(&self) -> &EngineCore {
        &self.core
    }

    /// The scheduling technique's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Runs the simulation to completion and returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn run(&mut self) -> &SimStats {
        assert!(!self.finished, "engine already ran");
        self.finished = true;

        self.scheduler.init(&mut self.core);

        // Enqueue every application SuperFunction.
        let app_sfs: Vec<SfId> = self.core.threads.iter().map(|t| t.app_sf).collect();
        for sf in app_sfs {
            self.scheduler.enqueue(&mut self.core, sf, None);
        }

        // Prime periodic events.
        let tick = self.core.cfg.timer_tick_cycles;
        if tick > 0 {
            for c in 0..self.core.num_cores() {
                let stagger = tick / self.core.num_cores() as u64 * c as u64;
                self.core
                    .schedule_event(tick + stagger, EventKind::TimerTick { core: c });
            }
        }
        self.core
            .schedule_event(self.core.cfg.epoch_cycles, EventKind::Epoch);
        for bench in 0..self.core.instances.len() {
            if self.core.instances[bench].spec.spontaneous_irq.is_some() {
                let interval = self.core.irq_rate_interval[bench];
                self.core
                    .schedule_event(interval, EventKind::ExternalIrq { bench });
            }
        }

        // Main loop.
        loop {
            let core_next = self
                .core
                .cores
                .iter()
                .enumerate()
                .filter(|(_, cs)| !cs.idle)
                .min_by_key(|(i, cs)| (cs.clock, *i))
                .map(|(i, cs)| (cs.clock, i));
            let event_next = self.core.events.peek().map(|e| e.time);

            match (core_next, event_next) {
                (None, None) => break,
                (Some((ct, c)), Some(et)) => {
                    if et <= ct {
                        self.process_next_event();
                    } else {
                        self.core.now = ct;
                        self.step_core(c);
                    }
                }
                (Some((ct, c)), None) => {
                    self.core.now = ct;
                    self.step_core(c);
                }
                (None, Some(_)) => {
                    self.process_next_event();
                }
            }

            // Warm-up and stop conditions. After the warm-up reset the
            // counters restart, so the stop check must not see the stale
            // pre-reset count.
            let workload_instr = self.core.stats.instructions.total_workload();
            if !self.core.warmed_up {
                if workload_instr >= self.core.cfg.warmup_instructions {
                    self.core.reset_for_measurement();
                }
            } else if workload_instr >= self.core.cfg.max_instructions {
                break;
            }
            if self.core.now >= self.core.cfg.max_cycles {
                break;
            }
        }

        self.finalize();
        &self.core.stats
    }

    fn finalize(&mut self) {
        if !self.core.warmed_up {
            // Tiny runs may never hit the warm-up threshold; measure all.
            self.core.measure_start = 0;
        }
        let end = self
            .core
            .cores
            .iter()
            .map(|c| c.clock)
            .max()
            .unwrap_or(self.core.now)
            .max(self.core.now);
        for c in 0..self.core.cores.len() {
            let core = &mut self.core.cores[c];
            if core.idle && end > core.clock {
                self.core.stats.core_time[c].idle_cycles += end - core.clock;
                core.clock = end;
            }
        }
        self.core.stats.final_cycle = end.saturating_sub(self.core.measure_start).max(1);
        self.core.stats.mem = self.core.mem.stats().clone();
    }

    fn process_next_event(&mut self) {
        let ev = self.core.events.pop().expect("event queue non-empty");
        self.core.now = ev.time;
        match ev.kind {
            EventKind::DeviceComplete { device, waiter } => {
                let irq_name = self.core.catalog.interrupt_for_device(device).name;
                let irq_id = self.core.catalog.interrupt_for_device(device).irq;
                let target = self
                    .scheduler
                    .route_completion(&mut self.core, irq_id, waiter);
                self.deliver_irq(target.0, irq_name, Some(waiter), ev.time);
            }
            EventKind::ExternalIrq { bench } => {
                let (irq_name, _) = self.core.instances[bench]
                    .spec
                    .spontaneous_irq
                    .expect("external irq only scheduled for rated benchmarks");
                let irq_id = self.core.catalog.interrupt(irq_name).irq;
                let target = self.scheduler.route_interrupt(&mut self.core, irq_id);
                self.deliver_irq(target.0, irq_name, None, ev.time);
                // Re-arm with ±50 % jitter.
                let base = self.core.irq_rate_interval[bench];
                let jitter = self.core.rng.gen_range(base / 2..=base + base / 2);
                self.core
                    .schedule_event(ev.time + jitter.max(1), EventKind::ExternalIrq { bench });
            }
            EventKind::TimerTick { core } => {
                let irq_name = "timer_irq";
                self.deliver_irq(core, irq_name, None, ev.time);
                self.core.schedule_event(
                    ev.time + self.core.cfg.timer_tick_cycles,
                    EventKind::TimerTick { core },
                );
            }
            EventKind::Epoch => {
                let overhead =
                    self.scheduler
                        .overhead_for(&self.core, SchedEvent::EpochAlloc, None);
                self.core.charge_sched_overhead(0, overhead);
                self.scheduler.on_epoch(&mut self.core);
                if self.core.cfg.collect_epoch_breakups {
                    self.core.snapshot_epoch_breakup();
                }
                self.core
                    .schedule_event(ev.time + self.core.cfg.epoch_cycles, EventKind::Epoch);
            }
        }
    }

    fn deliver_irq(&mut self, c: usize, name: &'static str, waiter: Option<SfId>, raised_at: u64) {
        self.core.cores[c].pending_irqs.push_back(PendingIrq {
            name,
            waiter,
            raised_at,
        });
        self.core.wake_core(c);
    }

    fn step_core(&mut self, c: usize) {
        // 1. Service a pending interrupt: preempt whatever runs.
        if let Some(pending) = self.core.cores[c].pending_irqs.pop_front() {
            if let Some(cur) = self.core.cores[c].current.take() {
                self.core
                    .sfs
                    .get_mut(&cur)
                    .expect("current SF exists")
                    .state = SfState::Preempted;
                self.core.cores[c].preempt_stack.push(cur);
                self.scheduler
                    .on_switch_out(&mut self.core, CoreId(c), cur, SwitchReason::Preempted);
            }
            let clock = self.core.cores[c].clock;
            self.core.stats.interrupts_delivered += 1;
            self.core.stats.interrupt_latency_cycles +=
                clock.saturating_sub(pending.raised_at);
            let sf = self
                .core
                .create_interrupt_sf(c, pending.name, pending.waiter);
            let overhead = self
                .scheduler
                .overhead_for(&self.core, SchedEvent::SfStart, Some(sf));
            self.core.charge_sched_overhead(c, overhead);
            self.core.prepare_dispatch(c, sf);
            self.scheduler.on_dispatch(&mut self.core, CoreId(c), sf);
            return;
        }

        // 2. Nothing running? Ask the scheduler.
        if self.core.cores[c].current.is_none() {
            match self.scheduler.pick_next(&mut self.core, CoreId(c)) {
                Some(sf) => {
                    self.core.prepare_dispatch(c, sf);
                    self.scheduler.on_dispatch(&mut self.core, CoreId(c), sf);
                }
                None => self.core.go_idle(c),
            }
            return;
        }

        // 3. Execute one quantum.
        match self.core.execute_quantum(c) {
            Boundary::None => {}
            Boundary::AppBurstEnd => self.on_app_burst_end(c),
            Boundary::Blocked(device) => self.on_blocked(c, device),
            Boundary::Completed => self.on_completed(c),
        }
    }

    fn on_app_burst_end(&mut self, c: usize) {
        let app_sf = self.core.cores[c].current.take().expect("app SF running");
        let tid = self.core.sf(app_sf).tid;
        self.core
            .sfs
            .get_mut(&app_sf)
            .expect("app SF exists")
            .state = SfState::PausedForChild;
        self.scheduler
            .on_switch_out(&mut self.core, CoreId(c), app_sf, SwitchReason::PausedForChild);

        let syscall_sf = self.core.create_syscall_sf(c, tid, app_sf);
        let overhead = self
            .scheduler
            .overhead_for(&self.core, SchedEvent::SfStart, Some(syscall_sf));
        self.core.charge_sched_overhead(c, overhead);
        self.scheduler
            .enqueue(&mut self.core, syscall_sf, Some(CoreId(c)));
        self.core.wake_all_idle();
    }

    fn on_blocked(&mut self, c: usize, device: DeviceKind) {
        let sf = self.core.cores[c].current.take().expect("SF running");
        self.core.sfs.get_mut(&sf).expect("SF exists").state = SfState::Waiting;
        let at = self.core.cores[c].clock;
        self.core.trace.record(TraceEvent::Blocked { at, sf });
        self.scheduler
            .on_switch_out(&mut self.core, CoreId(c), sf, SwitchReason::Blocked);
        self.scheduler.on_block(&mut self.core, sf);
        let overhead = self
            .scheduler
            .overhead_for(&self.core, SchedEvent::SfPause, Some(sf));
        self.core.charge_sched_overhead(c, overhead);

        let latency = match device {
            DeviceKind::Disk => self.core.cfg.disk_latency_cycles,
            DeviceKind::Network => self.core.cfg.network_latency_cycles,
            DeviceKind::Timer => self.core.cfg.timer_sleep_cycles,
        };
        let when = self.core.cores[c].clock + latency.max(1);
        self.core
            .schedule_event(when, EventKind::DeviceComplete { device, waiter: sf });
    }

    fn on_completed(&mut self, c: usize) {
        let sf_id = self.core.cores[c].current.take().expect("SF running");
        let at = self.core.cores[c].clock;
        self.core.trace.record(TraceEvent::Completed { at, sf: sf_id });
        let overhead = self
            .scheduler
            .overhead_for(&self.core, SchedEvent::SfStop, Some(sf_id));
        self.core.charge_sched_overhead(c, overhead);
        self.core.sfs.get_mut(&sf_id).expect("SF exists").state = SfState::Done;
        self.scheduler
            .on_switch_out(&mut self.core, CoreId(c), sf_id, SwitchReason::Completed);
        self.scheduler.on_complete(&mut self.core, sf_id);

        let sf = self.core.sfs.remove(&sf_id).expect("SF exists");
        match sf.body {
            SfBody::Syscall { .. } => {
                // Operation accounting: one application-level operation
                // per `op_syscalls` completed system calls of the
                // benchmark.
                let bench = self.core.threads[sf.tid.0 as usize].benchmark;
                self.core.op_progress[bench] += 1;
                self.core.syscalls_completed[bench] += 1;
                if self.core.op_progress[bench] >= self.core.instances[bench].spec.op_syscalls {
                    self.core.op_progress[bench] = 0;
                    self.core.stats.ops_per_benchmark[bench] += 1;
                }
                // Return to the parent (the paper's parentSuperFuncPtr
                // hand-off in TMigrate).
                let parent = sf.parent.expect("syscalls have a parent");
                let p = self
                    .core
                    .sfs
                    .get_mut(&parent)
                    .expect("parent app SF exists");
                debug_assert_eq!(p.state, SfState::PausedForChild);
                p.state = SfState::Runnable;
                p.runnable_since = self.core.cores[c].clock;
                self.scheduler
                    .enqueue(&mut self.core, parent, Some(CoreId(c)));
            }
            SfBody::Interrupt {
                bottom_half,
                waiter,
                ..
            } => {
                if let Some(bh_name) = bottom_half {
                    let bh = self.core.create_bottom_half_sf(c, bh_name, waiter);
                    let overhead =
                        self.scheduler
                            .overhead_for(&self.core, SchedEvent::SfStart, Some(bh));
                    self.core.charge_sched_overhead(c, overhead);
                    self.scheduler.enqueue(&mut self.core, bh, Some(CoreId(c)));
                } else if let Some(w) = waiter {
                    self.wake_sf(c, w);
                }
                // Resume whatever the interrupt preempted.
                if let Some(prev) = self.core.cores[c].preempt_stack.pop() {
                    self.core.prepare_dispatch(c, prev);
                    self.scheduler.on_dispatch(&mut self.core, CoreId(c), prev);
                }
            }
            SfBody::BottomHalf { wake, .. } => {
                if let Some(w) = wake {
                    self.wake_sf(c, w);
                }
            }
            SfBody::Application { .. } => {
                unreachable!("application SuperFunctions never complete")
            }
        }
        self.core.wake_all_idle();
    }

    fn wake_sf(&mut self, c: usize, sf: SfId) {
        let overhead = self
            .scheduler
            .overhead_for(&self.core, SchedEvent::SfWakeup, Some(sf));
        self.core.charge_sched_overhead(c, overhead);
        let s = self.core.sfs.get_mut(&sf).expect("woken SF exists");
        debug_assert_eq!(s.state, SfState::Waiting);
        s.state = SfState::Runnable;
        s.runnable_since = self.core.cores[c].clock;
        self.scheduler.enqueue(&mut self.core, sf, Some(CoreId(c)));
        self.core.wake_all_idle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_events_pop_in_time_order_with_seq_tiebreak() {
        let mut heap = BinaryHeap::new();
        heap.push(HeapEvent { time: 30, seq: 1, kind: EventKind::Epoch });
        heap.push(HeapEvent { time: 10, seq: 3, kind: EventKind::Epoch });
        heap.push(HeapEvent { time: 10, seq: 2, kind: EventKind::TimerTick { core: 0 } });
        heap.push(HeapEvent { time: 20, seq: 4, kind: EventKind::Epoch });
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.time, e.seq))
            .collect();
        assert_eq!(order, vec![(10, 2), (10, 3), (20, 4), (30, 1)]);
    }

    #[test]
    fn workload_spec_constructors() {
        let w = WorkloadSpec::single(BenchmarkKind::Find, 2.0);
        assert_eq!(w.parts, vec![(BenchmarkKind::Find, 2.0)]);
        assert!(w.custom.is_empty());

        let spec = BenchmarkSpec::for_kind(BenchmarkKind::Apache);
        let w = WorkloadSpec::custom(spec.clone(), 1.5);
        assert!(w.parts.is_empty());
        assert_eq!(w.custom.len(), 1);
        assert_eq!(w.custom[0].1, 1.5);

        let bag = MultiProgrammedWorkload::by_name("MPW-B").expect("exists");
        let w = WorkloadSpec::from(&bag);
        assert_eq!(w.parts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_workload_rejected() {
        let cfg = EngineConfig::fast();
        let _ = Engine::new(
            cfg,
            &WorkloadSpec::default(),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        );
    }

    #[test]
    fn kernel_tid_is_reserved() {
        assert_eq!(KERNEL_TID, ThreadId(u64::MAX));
    }

    #[test]
    fn engine_debug_shows_scheduler_name() {
        let cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2));
        let engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        );
        let dbg = format!("{engine:?}");
        assert!(dbg.contains("GlobalFifo"));
    }

    #[test]
    #[should_panic(expected = "already ran")]
    fn engine_cannot_run_twice() {
        let cfg = EngineConfig::fast()
            .with_system(schedtask_sim::SystemConfig::table2().with_cores(2))
            .with_max_instructions(20_000);
        let mut engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 0.5),
            Box::new(crate::scheduler::GlobalFifoScheduler::new()),
        );
        engine.run();
        engine.run();
    }
}
