//! Dev utility: prints the Figure 4 instruction breakup for each benchmark
//! under the FIFO reference scheduler, for workload calibration.

use schedtask_kernel::{Engine, EngineConfig, GlobalFifoScheduler, WorkloadSpec};
use schedtask_sim::SystemConfig;
use schedtask_workload::BenchmarkKind;

fn main() {
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6}  ihit  dhit  idle",
        "bench", "app%", "sys%", "irq%", "bh%"
    );
    for kind in BenchmarkKind::all() {
        let cfg = EngineConfig::fast()
            .with_system(SystemConfig::table2().with_cores(8))
            .with_max_instructions(2_000_000);
        let mut e = Engine::new(
            cfg,
            &WorkloadSpec::single(kind, 1.0),
            Box::new(GlobalFifoScheduler::new()),
        )
        .expect("engine builds");
        let t0 = std::time::Instant::now();
        let s = e.run().expect("run succeeds");
        let b = s.instructions.breakup_percent();
        println!(
            "{:<10} {:>6.1} {:>6.1} {:>6.1} {:>6.1}  {:.3} {:.3} {:.3}  ({:.2}s, {:.1} Minstr/s, ipc {:.2})",
            kind.name(), b[0], b[1], b[2], b[3],
            s.mem.icache_overall_hit_rate(), s.mem.dcache_overall_hit_rate(),
            s.mean_idle_fraction(),
            t0.elapsed().as_secs_f64(),
            s.total_instructions() as f64 / 1e6 / t0.elapsed().as_secs_f64(),
            s.instruction_throughput(),
        );
    }
}
