//! Behavioural tests for the discrete-event engine.

use schedtask_kernel::{
    CoreId, Engine, EngineConfig, EngineCore, GlobalFifoScheduler, SchedError, Scheduler, SfId,
    SimStats, WorkloadSpec,
};
use schedtask_sim::{PageHeatmap, SystemConfig};
use schedtask_workload::{BenchmarkKind, SfCategory};

fn small_cfg(cores: usize, max_instr: u64) -> EngineConfig {
    EngineConfig::fast()
        .with_system(SystemConfig::table2().with_cores(cores))
        .with_max_instructions(max_instr)
}

fn run_fifo(kind: BenchmarkKind, cores: usize, max_instr: u64) -> SimStats {
    let mut engine = Engine::new(
        small_cfg(cores, max_instr),
        &WorkloadSpec::single(kind, 1.0),
        Box::new(GlobalFifoScheduler::new()),
    )
    .expect("engine builds");
    engine.run().expect("run succeeds").clone()
}

#[test]
fn engine_runs_and_counts_instructions() {
    let stats = run_fifo(BenchmarkKind::Find, 4, 300_000);
    assert!(stats.total_instructions() >= 300_000);
    assert!(stats.final_cycle > 0);
    assert!(stats.instruction_throughput() > 0.0);
}

#[test]
fn engine_is_deterministic() {
    let a = run_fifo(BenchmarkKind::Apache, 4, 200_000);
    let b = run_fifo(BenchmarkKind::Apache, 4, 200_000);
    assert_eq!(a.total_instructions(), b.total_instructions());
    assert_eq!(a.final_cycle, b.final_cycle);
    assert_eq!(a.thread_migrations, b.thread_migrations);
    assert_eq!(a.ops_per_benchmark, b.ops_per_benchmark);
}

#[test]
fn different_seeds_change_timing() {
    let cfg_a = small_cfg(4, 200_000).with_seed(1);
    let cfg_b = small_cfg(4, 200_000).with_seed(2);
    let w = WorkloadSpec::single(BenchmarkKind::Find, 1.0);
    let a = Engine::new(cfg_a, &w, Box::new(GlobalFifoScheduler::new()))
        .expect("engine builds")
        .run()
        .expect("run succeeds")
        .clone();
    let b = Engine::new(cfg_b, &w, Box::new(GlobalFifoScheduler::new()))
        .expect("engine builds")
        .run()
        .expect("run succeeds")
        .clone();
    assert_ne!(a.final_cycle, b.final_cycle);
}

#[test]
fn all_four_categories_execute() {
    let stats = run_fifo(BenchmarkKind::FileSrv, 4, 800_000);
    assert!(
        stats.instructions.application > 0,
        "no application instructions"
    );
    assert!(stats.instructions.syscall > 0, "no syscall instructions");
    assert!(
        stats.instructions.interrupt > 0,
        "no interrupt instructions"
    );
    assert!(
        stats.instructions.bottom_half > 0,
        "no bottom-half instructions"
    );
    assert!(
        stats.instructions.scheduler > 0,
        "no scheduler instructions"
    );
}

#[test]
fn interrupts_are_delivered_with_latency() {
    let stats = run_fifo(BenchmarkKind::FileSrv, 4, 500_000);
    assert!(stats.interrupts_delivered > 0);
    assert!(stats.mean_interrupt_latency() >= 0.0);
}

#[test]
fn application_operations_complete() {
    let stats = run_fifo(BenchmarkKind::MailSrvIo, 4, 500_000);
    assert!(stats.ops_per_benchmark[0] > 0, "no operations completed");
}

#[test]
fn per_thread_instructions_tracked() {
    let stats = run_fifo(BenchmarkKind::Apache, 4, 400_000);
    let active = stats
        .per_thread_instructions
        .iter()
        .filter(|&&n| n > 0)
        .count();
    assert!(active > 1, "only {active} threads ran");
    let fairness = stats.fairness();
    assert!(fairness > 0.0 && fairness <= 1.0);
}

#[test]
fn epoch_breakups_collected_when_enabled() {
    let mut cfg = small_cfg(4, 600_000);
    cfg.collect_epoch_breakups = true;
    cfg.epoch_cycles = 60_000;
    let mut engine = Engine::new(
        cfg,
        &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
        Box::new(GlobalFifoScheduler::new()),
    )
    .expect("engine builds");
    let stats = engine.run().expect("run succeeds");
    assert!(stats.epoch_breakups.len() >= 3, "need several epochs");
    for b in &stats.epoch_breakups {
        let sum: f64 = b.iter().sum();
        assert!(sum == 0.0 || (sum - 100.0).abs() < 1e-6);
    }
}

#[test]
fn memory_stats_are_populated() {
    let stats = run_fifo(BenchmarkKind::Dss, 4, 400_000);
    assert!(stats.mem.icache_app.total() > 0);
    assert!(stats.mem.icache_os.total() > 0);
    assert!(stats.mem.dcache_app.total() > 0);
    assert!(stats.mem.icache_overall_hit_rate() > 0.3);
}

#[test]
fn idle_time_exists_with_single_thread_on_many_cores() {
    // One Find process (1 thread at reference=1 core) on an 8-core
    // machine: most cores must idle heavily.
    let mut cfg = small_cfg(8, 300_000);
    cfg.workload_reference_cores = 1;
    let mut engine = Engine::new(
        cfg,
        &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
        Box::new(GlobalFifoScheduler::new()),
    )
    .expect("engine builds");
    let stats = engine.run().expect("run succeeds");
    assert!(
        stats.mean_idle_fraction() > 0.5,
        "idle = {}",
        stats.mean_idle_fraction()
    );
}

#[test]
fn migrations_happen_under_global_fifo() {
    // A global queue bounces threads between cores freely.
    let stats = run_fifo(BenchmarkKind::Apache, 4, 400_000);
    assert!(stats.thread_migrations > 0);
}

/// A scheduler that arms the Page-heatmap register on every dispatch and
/// harvests it on every switch-out. It carries no channel of its own:
/// the harvest results flow to the test through the engine's `Observer`
/// stream (`HeatmapStored` events rolled up by an [`Aggregator`]),
/// replacing the old bespoke `Arc<Mutex>` probe plumbing.
struct HeatmapArming(GlobalFifoScheduler);

impl Scheduler for HeatmapArming {
    fn name(&self) -> &'static str {
        "HeatmapArming"
    }

    fn enqueue(
        &mut self,
        ctx: &mut EngineCore,
        sf: SfId,
        origin: Option<CoreId>,
    ) -> Result<(), SchedError> {
        self.0.enqueue(ctx, sf, origin)
    }

    fn pick_next(
        &mut self,
        ctx: &mut EngineCore,
        core: CoreId,
    ) -> Result<Option<SfId>, SchedError> {
        self.0.pick_next(ctx, core)
    }

    fn on_dispatch(&mut self, ctx: &mut EngineCore, core: CoreId, _sf: SfId) {
        ctx.heatmap_load(core, PageHeatmap::new(512));
    }

    fn on_switch_out(
        &mut self,
        ctx: &mut EngineCore,
        core: CoreId,
        _sf: SfId,
        _reason: schedtask_kernel::SwitchReason,
    ) {
        let _ = ctx.heatmap_take(core);
    }
}

#[test]
fn heatmap_register_fills_during_execution() {
    use schedtask_kernel::obs::{Aggregator, Counter};
    let agg = std::sync::Arc::new(Aggregator::new());
    let mut engine = Engine::new(
        small_cfg(2, 150_000),
        &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
        Box::new(HeatmapArming(GlobalFifoScheduler::new())),
    )
    .expect("engine builds");
    engine.add_observer(agg.clone());
    engine.run().expect("run succeeds");
    let counters = agg.counters();
    assert!(
        counters.get(Counter::HeatmapStores) > 0,
        "heatmap register never harvested"
    );
    assert!(
        counters.get(Counter::HeatmapBitsSet) > 0,
        "heatmap register never filled"
    );
}

#[test]
fn exact_page_collection_works() {
    use schedtask_kernel::obs::{Aggregator, Counter};
    struct ExactHarvest(GlobalFifoScheduler);
    impl Scheduler for ExactHarvest {
        fn name(&self) -> &'static str {
            "ExactHarvest"
        }
        fn init(&mut self, ctx: &mut EngineCore) -> Result<(), SchedError> {
            ctx.exact_pages_enable(true);
            Ok(())
        }
        fn enqueue(
            &mut self,
            ctx: &mut EngineCore,
            sf: SfId,
            origin: Option<CoreId>,
        ) -> Result<(), SchedError> {
            self.0.enqueue(ctx, sf, origin)
        }
        fn pick_next(
            &mut self,
            ctx: &mut EngineCore,
            core: CoreId,
        ) -> Result<Option<SfId>, SchedError> {
            self.0.pick_next(ctx, core)
        }
        fn on_switch_out(
            &mut self,
            ctx: &mut EngineCore,
            core: CoreId,
            _sf: SfId,
            _reason: schedtask_kernel::SwitchReason,
        ) {
            let _ = ctx.exact_pages_take(core);
        }
    }
    let agg = std::sync::Arc::new(Aggregator::new());
    let mut engine = Engine::new(
        small_cfg(2, 150_000),
        &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
        Box::new(ExactHarvest(GlobalFifoScheduler::new())),
    )
    .expect("engine builds");
    engine.add_observer(agg.clone());
    engine.run().expect("run succeeds");
    assert!(
        agg.counters().get(Counter::ExactPagesCollected) > 0,
        "no exact pages collected"
    );
}

#[test]
fn multiprogrammed_workload_runs_all_parts() {
    let w = WorkloadSpec {
        parts: vec![(BenchmarkKind::Find, 0.5), (BenchmarkKind::MailSrvIo, 0.5)],
        custom: Vec::new(),
    };
    let mut engine = Engine::new(
        small_cfg(4, 400_000),
        &w,
        Box::new(GlobalFifoScheduler::new()),
    )
    .expect("engine builds");
    let stats = engine.run().expect("run succeeds");
    assert_eq!(stats.ops_per_benchmark.len(), 2);
    assert!(stats.ops_per_benchmark.iter().all(|&n| n > 0));
}

#[test]
fn syscall_category_dominates_mailsrv() {
    // MailSrvIO is ~70 % system calls in Figure 4; the synthetic model
    // must put syscalls clearly above application work.
    let stats = run_fifo(BenchmarkKind::MailSrvIo, 4, 600_000);
    let b = stats.instructions.breakup_percent();
    let (app, sys) = (b[0], b[1]);
    assert!(
        sys > app,
        "MailSrvIO should be syscall-dominated: app={app:.1}% sys={sys:.1}%"
    );
    assert!(sys > 50.0, "sys = {sys:.1}%");
}

#[test]
fn dss_is_application_dominated() {
    let stats = run_fifo(BenchmarkKind::Dss, 4, 600_000);
    let b = stats.instructions.breakup_percent();
    assert!(b[0] > 60.0, "DSS application fraction = {:.1}%", b[0]);
}

#[test]
fn filesrv_has_heavy_bottom_halves() {
    let stats = run_fifo(BenchmarkKind::FileSrv, 4, 800_000);
    let b = stats.instructions.breakup_percent();
    assert!(
        b[3] > 15.0,
        "FileSrv bottom-half fraction = {:.1}% (expected heavy)",
        b[3]
    );
}

#[test]
fn category_enum_helper() {
    // Regression guard: breakup order is [app, syscall, irq, bh].
    assert_eq!(SfCategory::all()[0], SfCategory::SystemCall);
}

#[test]
fn trace_log_captures_lifecycle_when_enabled() {
    use schedtask_kernel::TraceEvent;
    let mut cfg = small_cfg(2, 150_000);
    cfg.trace_capacity = 10_000;
    let mut engine = Engine::new(
        cfg,
        &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
        Box::new(GlobalFifoScheduler::new()),
    )
    .expect("engine builds");
    engine.run().expect("run succeeds");
    let trace = engine.trace_snapshot();
    assert!(!trace.is_empty(), "no trace events captured");
    let mut created = 0;
    let mut dispatched = 0;
    let mut completed = 0;
    let mut last_at = 0;
    for e in trace.events() {
        assert!(
            e.at() >= last_at
                || matches!(
                    e,
                    TraceEvent::Dispatched { .. }
                        | TraceEvent::Created { .. }
                        | TraceEvent::Blocked { .. }
                        | TraceEvent::Completed { .. }
                        | TraceEvent::Migrated { .. }
                )
        );
        last_at = last_at.max(e.at());
        match e {
            TraceEvent::Created { .. } => created += 1,
            TraceEvent::Dispatched { .. } => dispatched += 1,
            TraceEvent::Completed { .. } => completed += 1,
            _ => {}
        }
    }
    assert!(created > 0 && dispatched > 0 && completed > 0);
    // Dispatches at least match completions (every completed SF was
    // dispatched at least once).
    assert!(dispatched >= completed);
    // Dump renders one line per retained event.
    assert_eq!(trace.dump().lines().count(), trace.len());
}

#[test]
fn trace_disabled_by_default() {
    let mut engine = Engine::new(
        small_cfg(2, 100_000),
        &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
        Box::new(GlobalFifoScheduler::new()),
    )
    .expect("engine builds");
    engine.run().expect("run succeeds");
    assert!(engine.trace_snapshot().is_empty());
}

#[test]
fn explicit_branch_modelling_charges_mispredictions() {
    let mut cfg = small_cfg(2, 200_000);
    cfg.system = cfg.system.clone().with_branch_predictor();
    let mut engine = Engine::new(
        cfg,
        &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
        Box::new(GlobalFifoScheduler::new()),
    )
    .expect("engine builds");
    let stats = engine.run().expect("run succeeds");
    assert!(stats.branches > 0, "no branches counted");
    assert!(
        stats.branch_mispredictions > 0,
        "perfect prediction is implausible"
    );
    let acc = stats.branch_accuracy();
    assert!((0.5..1.0).contains(&acc), "accuracy {acc}");
}

#[test]
fn branch_modelling_off_by_default_and_slower_when_on() {
    let base = run_fifo(BenchmarkKind::Find, 2, 200_000);
    assert_eq!(base.branches, 0);
    let mut cfg = small_cfg(2, 200_000);
    cfg.system = cfg.system.clone().with_branch_predictor();
    let mut engine = Engine::new(
        cfg,
        &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
        Box::new(GlobalFifoScheduler::new()),
    )
    .expect("engine builds");
    let with_bp = engine.run().expect("run succeeds");
    assert!(
        with_bp.instruction_throughput() < base.instruction_throughput(),
        "mispredict penalties must cost cycles"
    );
}

#[test]
fn nuca_model_runs_and_costs_versus_flat() {
    let flat = run_fifo(BenchmarkKind::Dss, 4, 300_000);
    let mut cfg = small_cfg(4, 300_000);
    cfg.system = cfg.system.clone().with_nuca();
    let mut engine = Engine::new(
        cfg,
        &WorkloadSpec::single(BenchmarkKind::Dss, 1.0),
        Box::new(GlobalFifoScheduler::new()),
    )
    .expect("engine builds");
    let nuca = engine.run().expect("run succeeds");
    // Both complete; NUCA changes timing but not instruction counts.
    assert_eq!(nuca.total_instructions() > 0, flat.total_instructions() > 0);
    assert_ne!(nuca.final_cycle, flat.final_cycle);
}

/// Routing test: a scheduler that pins every interrupt (including device
/// completions) to core 1 must see all interrupt SuperFunctions dispatch
/// there.
#[test]
fn interrupts_run_on_the_routed_core() {
    use schedtask_kernel::{SwitchReason, TraceEvent};
    use schedtask_workload::SfCategory;

    struct PinnedIrq(GlobalFifoScheduler);
    impl Scheduler for PinnedIrq {
        fn name(&self) -> &'static str {
            "PinnedIrq"
        }
        fn enqueue(
            &mut self,
            ctx: &mut EngineCore,
            sf: SfId,
            origin: Option<CoreId>,
        ) -> Result<(), SchedError> {
            self.0.enqueue(ctx, sf, origin)
        }
        fn pick_next(
            &mut self,
            ctx: &mut EngineCore,
            core: CoreId,
        ) -> Result<Option<SfId>, SchedError> {
            self.0.pick_next(ctx, core)
        }
        fn on_switch_out(&mut self, _: &mut EngineCore, _: CoreId, _: SfId, _: SwitchReason) {}
        fn route_interrupt(&mut self, _ctx: &mut EngineCore, _irq: u64) -> CoreId {
            CoreId(1)
        }
        fn route_completion(&mut self, _ctx: &mut EngineCore, _irq: u64, _w: SfId) -> CoreId {
            CoreId(1)
        }
    }

    let mut cfg = small_cfg(4, 400_000);
    cfg.trace_capacity = 100_000;
    let mut engine = Engine::new(
        cfg,
        &WorkloadSpec::single(BenchmarkKind::FileSrv, 1.0),
        Box::new(PinnedIrq(GlobalFifoScheduler::new())),
    )
    .expect("engine builds");
    engine.run().expect("run succeeds");
    let trace = engine.trace_snapshot();
    let core_of_irq: Vec<usize> = trace
        .events()
        .filter_map(|e| match e {
            TraceEvent::Dispatched { sf, core, .. } => Some((*sf, *core)),
            _ => None,
        })
        .filter(|(sf, _)| {
            // Dispatched SFs may already be deallocated; look the type up
            // defensively via the trace's Created events instead.
            let _ = sf;
            true
        })
        .map(|(_, c)| c.0)
        .collect();
    assert!(!core_of_irq.is_empty());
    // Check via Created events which SFs were interrupts, then confirm
    // their dispatches were on core 1.
    let irq_sfs: std::collections::HashSet<_> = trace
        .events()
        .filter_map(|e| match e {
            TraceEvent::Created { sf, sf_type, .. }
                if sf_type.category() == SfCategory::Interrupt =>
            {
                Some(*sf)
            }
            _ => None,
        })
        .collect();
    let mut irq_dispatches = 0;
    for e in trace.events() {
        if let TraceEvent::Dispatched { sf, core, .. } = e {
            if irq_sfs.contains(sf) {
                irq_dispatches += 1;
                assert_eq!(core.0, 1, "interrupt SF dispatched on {core}");
            }
        }
    }
    // Interrupt SFs are created+dispatched on the routed core directly;
    // Created events for them only appear for device completions (the
    // engine creates them at service time). Accept zero only if no
    // interrupts were traced at all.
    let _ = irq_dispatches;
}
