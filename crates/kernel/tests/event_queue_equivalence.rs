//! Observational equivalence of the calendar event queue against the
//! plain `BinaryHeap` it replaced.
//!
//! The engine's determinism rests on the queue's (time, seq) total
//! order: earliest time first, insertion order on ties. The calendar
//! ring + far-future heap is a wall-clock optimization only, so any
//! interleaving of pushes and pops must yield exactly the pop sequence
//! of a reversed binary heap over (time, seq) — including stragglers
//! pushed behind the ring window and far-future events beyond it.

use proptest::prelude::*;
use schedtask_kernel::BenchEventQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

proptest! {
    /// Any interleaving of pushes and pops produces the identical pop
    /// sequence (by time) and identical lengths; the final drain agrees
    /// element for element. `BenchEventQueue` assigns sequence numbers
    /// in push order, matching the reference's tie-break exactly.
    /// Selector: 0-3 push in-ring, 4-5 push a small (straggler-prone)
    /// time, 6-7 push far beyond the 64 x 131072-cycle ring window,
    /// 8-11 pop.
    #[test]
    fn calendar_queue_matches_binary_heap(
        ops in prop::collection::vec((0u8..12, 0u64..(1 << 40)), 0..400),
    ) {
        let mut fast = BenchEventQueue::new();
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, &(sel, t)) in ops.iter().enumerate() {
            let time = match sel {
                0..=3 => Some(t % (1 << 23)),
                4..=5 => Some(t % (1 << 16)),
                6..=7 => Some((1 << 30) + t),
                _ => None,
            };
            match time {
                Some(time) => {
                    seq += 1;
                    fast.push(time);
                    reference.push(Reverse((time, seq)));
                }
                None => {
                    let expect = reference.pop().map(|Reverse((t, _))| t);
                    prop_assert_eq!(fast.pop(), expect, "pop at op #{}", i);
                }
            }
            prop_assert_eq!(fast.len(), reference.len());
            prop_assert_eq!(fast.is_empty(), reference.is_empty());
        }
        while let Some(Reverse((t, _))) = reference.pop() {
            prop_assert_eq!(fast.pop(), Some(t), "drain");
        }
        prop_assert_eq!(fast.pop(), None);
    }
}
