//! End-to-end test over real TCP: a minimal accept loop (the same
//! shape as the `schedtaskd` binary's) drives
//! `Server::handle_request_line`, and the `ServeClient` from
//! `serve_api` talks to it over the wire.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::thread;

use schedtask_experiments::serve_api::{JobSpec, Json, ServeClient};
use schedtask_experiments::Technique;
use schedtask_serve::{ServeConfig, Server};
use schedtask_workload::BenchmarkKind;

/// Binds an ephemeral TCP port and serves connections (one thread each)
/// against a fresh `Server`. Returns the address, the server handle,
/// and the dispatcher join handle; the accept thread is detached and
/// dies with the test process.
fn start_tcp(cfg: ServeConfig) -> (String, Arc<Server>, thread::JoinHandle<()>) {
    let server = Arc::new(Server::new(cfg));
    let dispatcher = server.spawn_dispatcher();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound address").to_string();
    let accept_server = Arc::clone(&server);
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { return };
            let server = Arc::clone(&accept_server);
            thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut out = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {}
                    }
                    let (resp, shutdown) = server.handle_request_line(&line);
                    if writeln!(out, "{resp}").and_then(|()| out.flush()).is_err() || shutdown {
                        return;
                    }
                }
            });
        }
    });
    (addr, server, dispatcher)
}

fn result_of(resp: &str) -> String {
    let start = resp.find("\"result\":").expect("result field") + "\"result\":".len();
    resp[start..resp.len() - 1].to_owned()
}

#[test]
fn tcp_round_trip_caches_and_acknowledges_shutdown() {
    let (addr, server, dispatcher) = start_tcp(ServeConfig {
        queue_capacity: 8,
        batch_max: 4,
        workers: 2,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect_tcp(&addr).expect("connect");
    assert!(client.ping().expect("ping"), "server answers ping");

    let mut spec = JobSpec::new(Technique::SchedTask, BenchmarkKind::Find);
    spec.params.cores = 2;
    spec.params.max_instructions = 50_000;
    spec.params.warmup_instructions = 10_000;
    let line = spec.to_request_line(Some("e2e"), false);
    let first = client.request_line(&line).expect("first run");
    let fj = Json::parse(&first).expect("first response parses");
    assert_eq!(
        fj.get("status").and_then(Json::as_str),
        Some("ok"),
        "{first}"
    );
    assert_eq!(fj.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(fj.get("id").and_then(Json::as_str), Some("e2e"));

    // A second connection sees a cache hit with identical result bytes.
    let mut client2 = ServeClient::connect_tcp(&addr).expect("connect again");
    let second = client2.request_line(&line).expect("second run");
    let sj = Json::parse(&second).expect("second response parses");
    assert_eq!(
        sj.get("cached").and_then(Json::as_bool),
        Some(true),
        "{second}"
    );
    assert_eq!(result_of(&first), result_of(&second));

    // Stats over the wire reflect one miss, one hit, one cached entry.
    let stats = client.request_line("{\"op\":\"stats\"}").expect("stats");
    let st = Json::parse(&stats).expect("stats parses");
    assert_eq!(
        st.get("cache_entries").and_then(Json::as_u64),
        Some(1),
        "{stats}"
    );
    let counters = st.get("counters").expect("counters object");
    assert_eq!(
        counters.get("serve_cache_hits").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        counters.get("serve_cache_misses").and_then(Json::as_u64),
        Some(1)
    );

    // The shutdown op is acknowledged before the connection closes.
    let bye = client2
        .request_line("{\"op\":\"shutdown\",\"id\":\"bye\"}")
        .expect("shutdown ack");
    assert!(bye.contains("\"shutting_down\":true"), "{bye}");

    server.close();
    dispatcher.join().expect("dispatcher exits");
}
