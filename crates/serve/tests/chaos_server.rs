//! Acceptance proptest for the crash-recovery story: a server with a
//! persistent cache and an active chaos plan executes jobs, the process
//! "dies" (the server is dropped — torn-write chaos has already placed
//! partial records on disk, exactly what a kill -9 mid-append leaves),
//! and a second server on the same directory must serve every
//! previously-acknowledged result byte-identical, from the disk tier
//! wherever a record survived.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use schedtask_experiments::serve_api::Json;
use schedtask_serve::{ChaosPlan, ServeConfig, Server};

fn tmp_dir(case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("schedtask-chaosprop-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request_line(i: u64, seed: u64) -> String {
    format!(
        "{{\"workload\":\"Find\",\"cores\":2,\"seed\":{},\
         \"max_instructions\":40000,\"warmup_instructions\":10000}}",
        seed * 100 + i
    )
}

/// Submits `line`, retrying transient failures (chaos worker panics
/// surface as error responses; a panicked claim is evicted so a resubmit
/// re-executes). Returns the final ok response.
fn submit_until_ok(server: &Server, line: &str) -> String {
    for _ in 0..32 {
        let (response, _) = server.handle_request_line(line);
        let json = Json::parse(&response).expect("response parses");
        match json.get("status").and_then(Json::as_str) {
            Some("ok") => return response,
            Some("error") | Some("rejected") => continue,
            other => panic!("unexpected status {other:?} in {response}"),
        }
    }
    panic!("job never succeeded under chaos: {line}");
}

/// The `"result":...` payload bytes — exactly what must replay
/// byte-identical across the crash.
fn result_payload(response: &str) -> &str {
    let start = response.find("\"result\":").expect("result field") + "\"result\":".len();
    &response[start..response.len() - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn restart_after_chaos_serves_byte_identical_results(
        plan in prop::sample::select(vec!["none", "light", "heavy"]),
        seed in 1u64..1_000,
    ) {
        let dir = tmp_dir(seed);
        let chaos = ChaosPlan::parse(&format!("{plan}@{seed}"), 0).expect("plan parses");
        let cfg = ServeConfig {
            queue_capacity: 16,
            batch_max: 4,
            workers: 2,
            cache_dir: Some(dir.clone()),
            chaos: Some(chaos),
        };
        let jobs: Vec<String> = (0..3).map(|i| request_line(i, seed)).collect();

        // Phase 1: execute every job under chaos, keeping the
        // acknowledged result bytes.
        let server = Arc::new(Server::try_new(cfg.clone()).expect("first server opens"));
        let dispatcher = server.spawn_dispatcher();
        let before: Vec<String> = jobs
            .iter()
            .map(|line| submit_until_ok(&server, line))
            .collect();
        let persisted = server.disk_entries();
        server.close();
        dispatcher.join().expect("dispatcher exits");
        drop(server);

        // Phase 2: a new server on the same directory. Recovery must
        // swallow whatever torn tails chaos left behind, and every
        // resubmission must come back byte-identical — from the disk
        // tier for each record that reached the log.
        let server = Arc::new(Server::try_new(cfg).expect("second server recovers"));
        let dispatcher = server.spawn_dispatcher();
        let recovery = server.recovery().expect("persistence enabled");
        prop_assert_eq!(recovery.records, persisted as u64,
            "recovery replays exactly the records that were acknowledged to disk");
        let mut disk_hits = 0u64;
        for (line, first) in jobs.iter().zip(&before) {
            let second = submit_until_ok(&server, line);
            prop_assert_eq!(
                result_payload(first),
                result_payload(&second),
                "result bytes changed across the crash"
            );
            let json = Json::parse(&second).expect("response parses");
            if json.get("cached").and_then(Json::as_bool) == Some(true) {
                disk_hits += 1;
            }
        }
        prop_assert_eq!(disk_hits, recovery.records,
            "every recovered record is served as a cache hit, nothing more");
        if plan == "none" {
            prop_assert_eq!(disk_hits, jobs.len() as u64,
                "without chaos every pre-crash result is a disk hit");
        }
        server.close();
        dispatcher.join().expect("dispatcher exits");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
