//! Property tests for the persistent cache tier's crash discipline.
//!
//! Three invariants, each driven by proptest-chosen damage:
//!
//! 1. **Round-trip**: whatever was appended is served byte-identical
//!    after a reopen, with a clean recovery report.
//! 2. **Torn tail**: cutting the segment at an arbitrary byte keeps
//!    every record that was fully on disk before the cut, loses only
//!    the torn suffix, and a second open finds nothing left to repair.
//! 3. **Corruption**: flipping a byte inside a record quarantines that
//!    record — it is never served — while every other record is still
//!    served byte-identical.

use std::path::PathBuf;

use proptest::prelude::*;
use schedtask_serve::{DiskCache, RecoveryReport};

fn tmp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "schedtask-diskprop-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Appends `records` under distinct keys, returning the encoded length
/// of each record so damage offsets can be mapped to record boundaries.
fn fill(cache: &DiskCache, records: &[(String, String)]) -> Vec<u64> {
    records
        .iter()
        .enumerate()
        .map(|(i, (stats, jsonl))| {
            cache
                .append(i as u64 + 1, stats, jsonl)
                .expect("append succeeds")
        })
        .collect()
}

/// Printable-ASCII strings up to `max` bytes (the vendored proptest has
/// no regex string strategy).
fn text(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn record_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((text(60), text(80)), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn reopen_serves_every_record_byte_identical(
        records in record_strategy(),
        case in 0u64..1_000_000,
    ) {
        let dir = tmp_dir("roundtrip", case);
        {
            let (cache, report) = DiskCache::open(&dir).expect("open fresh");
            prop_assert_eq!(report, RecoveryReport::default());
            fill(&cache, &records);
        }
        let (cache, report) = DiskCache::open(&dir).expect("reopen");
        prop_assert_eq!(report.records, records.len() as u64);
        prop_assert_eq!(report.corrupt, 0);
        prop_assert_eq!(report.truncated_tails, 0);
        for (i, (stats, jsonl)) in records.iter().enumerate() {
            let rec = cache.get(i as u64 + 1).expect("record survives reopen");
            prop_assert_eq!(&rec.stats_json, stats);
            prop_assert_eq!(&rec.jsonl, jsonl);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_keeps_exactly_the_records_before_the_cut(
        records in record_strategy(),
        cut_frac in 0.0f64..1.0,
        case in 0u64..1_000_000,
    ) {
        let dir = tmp_dir("torn", case);
        let (sizes, segment) = {
            let (cache, _) = DiskCache::open(&dir).expect("open fresh");
            let sizes = fill(&cache, &records);
            (sizes, cache.active_segment_path().expect("active segment"))
        };
        let total: u64 = sizes.iter().sum();
        let cut = ((total as f64) * cut_frac) as u64;
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .expect("open segment for damage");
        file.set_len(cut).expect("truncate at arbitrary byte");
        drop(file);

        // Records fully on disk before the cut survive; the torn suffix
        // is physically removed.
        let mut survivors = 0u64;
        let mut boundaries = vec![0u64];
        let mut end = 0u64;
        for len in &sizes {
            end += len;
            boundaries.push(end);
            if end <= cut {
                survivors += 1;
            }
        }
        // A cut exactly on a record boundary leaves no torn bytes; any
        // other cut leaves a partial record that must be truncated away.
        let torn_tail = !boundaries.contains(&cut);
        let (cache, report) = DiskCache::open(&dir).expect("recover");
        prop_assert_eq!(report.records, survivors);
        prop_assert_eq!(report.corrupt, 0);
        prop_assert_eq!(report.truncated_tails, u64::from(torn_tail));
        for (i, (stats, jsonl)) in records.iter().enumerate().take(survivors as usize) {
            let rec = cache.get(i as u64 + 1).expect("pre-cut record survives");
            prop_assert_eq!(&rec.stats_json, stats);
            prop_assert_eq!(&rec.jsonl, jsonl);
        }
        for i in survivors..sizes.len() as u64 {
            prop_assert!(cache.get(i + 1).is_none(), "torn record must not be served");
        }
        drop(cache);

        // Recovery converges: the repair was physical, so a second open
        // has nothing left to do.
        let (_cache, second) = DiskCache::open(&dir).expect("reopen after repair");
        prop_assert_eq!(second.records, survivors);
        prop_assert_eq!(second.corrupt, 0);
        prop_assert_eq!(second.truncated_tails, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_is_quarantined_never_served(
        records in record_strategy(),
        victim_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        mask in 1u8..=255,
        case in 0u64..1_000_000,
    ) {
        let dir = tmp_dir("flip", case);
        let (sizes, segment) = {
            let (cache, _) = DiskCache::open(&dir).expect("open fresh");
            let sizes = fill(&cache, &records);
            (sizes, cache.active_segment_path().expect("active segment"))
        };
        // Flip one byte past the length word (CRC or payload), so the
        // framing stays intact and the scanner must rely on the CRC.
        let victim = ((sizes.len() as f64) * victim_frac) as usize % sizes.len();
        let start: u64 = sizes.iter().take(victim).sum();
        let span = sizes[victim] - 4;
        let offset = start + 4 + ((span as f64 * flip_frac) as u64).min(span - 1);
        {
            use std::io::{Read, Seek, SeekFrom, Write};
            let mut file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&segment)
                .expect("open segment for damage");
            let mut byte = [0u8; 1];
            file.seek(SeekFrom::Start(offset)).expect("seek");
            file.read_exact(&mut byte).expect("read victim byte");
            byte[0] ^= mask;
            file.seek(SeekFrom::Start(offset)).expect("seek back");
            file.write_all(&byte).expect("flip byte");
        }

        let (cache, report) = DiskCache::open(&dir).expect("recover");
        prop_assert_eq!(report.corrupt, 1, "flipped record is quarantined");
        prop_assert_eq!(report.records, records.len() as u64 - 1);
        prop_assert_eq!(report.truncated_tails, 0);
        prop_assert!(
            cache.get(victim as u64 + 1).is_none(),
            "corrupt bytes must never be served"
        );
        for (i, (stats, jsonl)) in records.iter().enumerate() {
            if i == victim {
                continue;
            }
            let rec = cache.get(i as u64 + 1).expect("undamaged record survives");
            prop_assert_eq!(&rec.stats_json, stats);
            prop_assert_eq!(&rec.jsonl, jsonl);
        }
        let quarantine = dir.join("quarantine.log");
        let quarantined = std::fs::metadata(&quarantine).expect("quarantine file").len();
        prop_assert_eq!(quarantined, sizes[victim], "damaged bytes land in quarantine");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
