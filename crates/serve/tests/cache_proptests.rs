//! Property tests for the serve-layer result cache.
//!
//! Two properties from the PR contract:
//!
//! 1. For arbitrary job parameters (including light fault plans and the
//!    sanitizer), a cache hit replays byte-identical canonical stats
//!    JSON *and* a byte-identical JSONL event stream compared to both
//!    the first server execution and a fresh out-of-server run.
//! 2. N concurrent submitters of an identical spec trigger exactly one
//!    execution and all receive identical result bytes.

use std::sync::Arc;

use proptest::prelude::*;
use schedtask::{SchedTaskConfig, SchedTaskScheduler};
use schedtask_experiments::runner::RunBuilder;
use schedtask_experiments::serve_api::{parse_request, JobSpec, Json, RequestOp};
use schedtask_obs::{Counter, JsonlSink, Observer};
use schedtask_serve::{ServeConfig, Server};

/// Parses a request line into the job spec the server would queue.
fn spec_of(line: &str) -> JobSpec {
    match parse_request(line).expect("request parses").op {
        RequestOp::Run(spec, _) => *spec,
        other => panic!("expected a run op, got {other:?}"),
    }
}

/// Runs `spec` directly — no server, no queue, no cache — mirroring the
/// daemon's executor, and returns (canonical stats JSON, JSONL stream).
fn fresh_run(spec: &JobSpec) -> (String, String) {
    let label = format!("{}/{}", spec.technique.name(), spec.benchmark.name());
    let sink = Arc::new(JsonlSink::with_label(Vec::new(), Some(label)));
    let mut builder =
        RunBuilder::new(&spec.params).observer(Arc::clone(&sink) as Arc<dyn Observer>);
    builder = match spec.steal {
        Some(policy) => builder.scheduler(Box::new(SchedTaskScheduler::new(
            spec.params.cores,
            SchedTaskConfig {
                steal_policy: policy,
                ..SchedTaskConfig::default()
            },
        ))),
        None => builder.technique(spec.technique),
    };
    let stats = builder
        .benchmark(spec.benchmark, spec.scale)
        .run()
        .expect("fresh run succeeds");
    (stats.to_canonical_json(), sink.take())
}

/// Extracts the `result` object bytes from an ok response that also
/// carries a trailing `jsonl` field.
fn result_before_jsonl(resp: &str) -> String {
    let start = resp.find("\"result\":").expect("result field") + "\"result\":".len();
    let end = resp.find(",\"jsonl\":").expect("jsonl field");
    resp[start..end].to_owned()
}

/// Extracts the `result` object bytes from an ok response without a
/// `jsonl` field (the object runs to the closing brace).
fn result_to_end(resp: &str) -> String {
    let start = resp.find("\"result\":").expect("result field") + "\"result\":".len();
    resp[start..resp.len() - 1].to_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn cache_hit_replays_byte_identical_stats_and_jsonl(
        workload in prop::sample::select(vec!["Find", "Iscp", "Dss"]),
        seed in 1u64..1_000,
        budget in 3u64..7, // x 10_000 instructions
        faults in prop::sample::select(vec!["none", "light", "light@3"]),
        sanitize in prop::bool::ANY,
    ) {
        let line = format!(
            "{{\"workload\":\"{workload}\",\"cores\":2,\"seed\":{seed},\
             \"max_instructions\":{},\"warmup_instructions\":10000,\
             \"faults\":\"{faults}\",\"sanitize\":{sanitize},\"obs\":true}}",
            budget * 10_000
        );
        let (fresh_json, fresh_jsonl) = fresh_run(&spec_of(&line));

        let server = Arc::new(Server::new(ServeConfig {
            queue_capacity: 4,
            batch_max: 2,
            workers: 2,
            ..ServeConfig::default()
        }));
        let dispatcher = server.spawn_dispatcher();
        let (first, _) = server.handle_request_line(&line);
        let (second, _) = server.handle_request_line(&line);
        server.close();
        dispatcher.join().expect("dispatcher exits");

        let fj = Json::parse(&first).expect("first response parses");
        let sj = Json::parse(&second).expect("second response parses");
        prop_assert_eq!(fj.get("status").and_then(Json::as_str), Some("ok"), "{}", first);
        prop_assert_eq!(fj.get("cached").and_then(Json::as_bool), Some(false));
        prop_assert_eq!(sj.get("cached").and_then(Json::as_bool), Some(true));

        // The replayed result and event stream are byte-identical to the
        // first execution and to a run that never saw the server.
        prop_assert_eq!(result_before_jsonl(&first), result_before_jsonl(&second));
        prop_assert_eq!(result_before_jsonl(&first), fresh_json);
        let jsonl_of = |j: &Json| {
            j.get("jsonl")
                .and_then(Json::as_str)
                .expect("jsonl field")
                .to_owned()
        };
        prop_assert_eq!(jsonl_of(&fj), jsonl_of(&sj));
        prop_assert_eq!(jsonl_of(&fj), fresh_jsonl);
    }

    #[test]
    fn concurrent_identical_submissions_execute_once(
        submitters in 2usize..8,
        seed in 1u64..1_000,
    ) {
        let line = format!(
            "{{\"workload\":\"Find\",\"cores\":2,\"seed\":{seed},\
             \"max_instructions\":40000,\"warmup_instructions\":10000}}"
        );
        let server = Arc::new(Server::new(ServeConfig {
            queue_capacity: 16,
            batch_max: 4,
            workers: 2,
            ..ServeConfig::default()
        }));
        let dispatcher = server.spawn_dispatcher();
        let handles: Vec<std::thread::JoinHandle<String>> = (0..submitters)
            .map(|_| {
                let server = Arc::clone(&server);
                let line = line.clone();
                std::thread::spawn(move || server.handle_request_line(&line).0)
            })
            .collect();
        let responses: Vec<String> = handles
            .into_iter()
            .map(|h| h.join().expect("submitter does not panic"))
            .collect();
        server.close();
        dispatcher.join().expect("dispatcher exits");

        let first = result_to_end(&responses[0]);
        for resp in &responses {
            let json = Json::parse(resp).expect("response parses");
            prop_assert_eq!(json.get("status").and_then(Json::as_str), Some("ok"), "{}", resp);
            prop_assert_eq!(result_to_end(resp), first.clone());
        }
        // Exactly one claim executed; everyone else hit or coalesced.
        prop_assert_eq!(server.counters().get(Counter::ServeExecuted), 1u64);
        prop_assert_eq!(server.cache().miss_count(), 1u64);
        prop_assert_eq!(
            server.counters().get(Counter::ServeSubmitted),
            submitters as u64
        );
    }
}
