//! Router end-to-end tests over real TCP workers.
//!
//! The fleet contract: duplicates execute exactly once fleet-wide
//! (router hot-cache + single-flight above the workers' own tiers),
//! result bytes through the router are identical to a direct worker
//! run, transport failures fail over around the ring, and worker
//! rejections propagate verbatim with their retry hints.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::thread;

use schedtask_experiments::serve_api::{Endpoint, JobSpec, Json, Response};
use schedtask_experiments::Technique;
use schedtask_obs::Counter;
use schedtask_serve::router::{build_ring, route, RING_REPLICAS};
use schedtask_serve::{Router, RouterConfig, ServeConfig, Server};
use schedtask_workload::BenchmarkKind;

/// Binds an ephemeral TCP port and serves connections against a fresh
/// `Server` — the same shape as the daemon's accept loop.
fn start_worker(cfg: ServeConfig) -> (String, Arc<Server>, thread::JoinHandle<()>) {
    let server = Arc::new(Server::new(cfg));
    let dispatcher = server.spawn_dispatcher();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound address").to_string();
    let accept_server = Arc::clone(&server);
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { return };
            let server = Arc::clone(&accept_server);
            thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut out = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {}
                    }
                    let (resp, shutdown) = server.handle_request_line(&line);
                    if writeln!(out, "{resp}").and_then(|()| out.flush()).is_err() || shutdown {
                        return;
                    }
                }
            });
        }
    });
    (addr, server, dispatcher)
}

/// A fake worker that answers the router's join-time ping correctly,
/// then serves `canned` to every subsequent request on that connection,
/// and refuses all connections after the first (the listener is
/// dropped) — a worker that joins the fleet and then dies.
fn start_canned_worker(canned: Option<String>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound address").to_string();
    thread::spawn(move || {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        drop(listener); // later dials get connection-refused
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut out = stream;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            let resp = if line.contains("\"op\":\"ping\"") {
                "{\"v\":1,\"status\":\"ok\",\"pong\":true,\"proto\":1}".to_owned()
            } else {
                match &canned {
                    Some(canned) => canned.clone(),
                    None => return,
                }
            };
            if writeln!(out, "{resp}").and_then(|()| out.flush()).is_err() {
                return;
            }
        }
    });
    addr
}

fn tiny_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(Technique::SchedTask, BenchmarkKind::Find);
    spec.params.cores = 1;
    spec.params.max_instructions = 30_000;
    spec.params.warmup_instructions = 10_000;
    spec.params.seed = seed;
    spec
}

fn result_of(resp: &str) -> String {
    let start = resp.find("\"result\":").expect("result field") + "\"result\":".len();
    resp[start..resp.len() - 1].to_owned()
}

#[test]
fn duplicates_execute_once_fleet_wide_with_byte_identical_results() {
    let cfg = ServeConfig {
        queue_capacity: 16,
        batch_max: 4,
        workers: 2,
        ..ServeConfig::default()
    };
    let (addr_a, worker_a, dispatcher_a) = start_worker(cfg.clone());
    let (addr_b, worker_b, dispatcher_b) = start_worker(cfg);
    let router = Arc::new(
        Router::new(RouterConfig::new(vec![
            Endpoint::Tcp(addr_a.clone()),
            Endpoint::Tcp(addr_b.clone()),
        ]))
        .expect("router joins both workers"),
    );

    let line = tiny_spec(7).to_request_line(Some("dup"), false);

    // Eight concurrent duplicate submissions through the router.
    let handles: Vec<thread::JoinHandle<String>> = (0..8)
        .map(|_| {
            let router = Arc::clone(&router);
            let line = line.clone();
            thread::spawn(move || router.handle_request_line(&line).0)
        })
        .collect();
    let responses: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("submitter does not panic"))
        .collect();

    let first = result_of(&responses[0]);
    for resp in &responses {
        let json = Json::parse(resp).expect("response parses");
        assert_eq!(
            json.get("status").and_then(Json::as_str),
            Some("ok"),
            "{resp}"
        );
        assert_eq!(result_of(resp), first, "identical bytes for every caller");
    }

    // Exactly one execution across the whole fleet.
    let executed = worker_a.counters().get(Counter::ServeExecuted)
        + worker_b.counters().get(Counter::ServeExecuted);
    assert_eq!(executed, 1, "duplicates must execute exactly once");

    // A later duplicate is a router hot-cache hit: no worker traffic.
    let forwarded_before = router.counter(Counter::ServeRouterForwarded);
    let (replay, _) = router.handle_request_line(&line);
    let rj = Json::parse(&replay).expect("replay parses");
    assert_eq!(rj.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(result_of(&replay), first);
    assert_eq!(
        router.counter(Counter::ServeRouterForwarded),
        forwarded_before
    );
    assert!(router.counter(Counter::ServeRouterHotHits) >= 1);

    // Byte identity against a run that never saw the router: ask the
    // owning worker directly.
    let owner = route(
        &build_ring(
            &[Endpoint::Tcp(addr_a), Endpoint::Tcp(addr_b)],
            RING_REPLICAS,
        ),
        tiny_spec(7).cache_key(),
    );
    let direct_worker = if owner == 0 { &worker_a } else { &worker_b };
    let (direct, _) = direct_worker.handle_request_line(&line);
    assert_eq!(result_of(&direct), first, "router is byte-transparent");

    worker_a.close();
    worker_b.close();
    dispatcher_a.join().expect("dispatcher a exits");
    dispatcher_b.join().expect("dispatcher b exits");
}

#[test]
fn transport_failures_fail_over_to_the_next_ring_worker() {
    let (addr_live, worker, dispatcher) = start_worker(ServeConfig {
        queue_capacity: 16,
        batch_max: 4,
        workers: 2,
        ..ServeConfig::default()
    });
    // The dead worker joins the fleet (answers the version handshake),
    // then drops every later connection.
    let addr_dead = start_canned_worker(None);
    let workers = vec![Endpoint::Tcp(addr_live), Endpoint::Tcp(addr_dead)];
    let router = Router::new(RouterConfig::new(workers.clone())).expect("router starts");

    // Find a spec the ring assigns to the dead worker so the forward
    // must fail over.
    let ring = build_ring(&workers, RING_REPLICAS);
    let seed = (0..u64::MAX)
        .find(|&s| route(&ring, tiny_spec(s).cache_key()) == 1)
        .expect("some key routes to the dead worker");
    let line = tiny_spec(seed).to_request_line(Some("failover"), false);

    let (resp, _) = router.handle_request_line(&line);
    let json = Json::parse(&resp).expect("response parses");
    assert_eq!(
        json.get("status").and_then(Json::as_str),
        Some("ok"),
        "the live worker serves the job: {resp}"
    );
    assert!(
        router.counter(Counter::ServeRouterFailovers) >= 1,
        "failover must be counted"
    );

    worker.close();
    dispatcher.join().expect("dispatcher exits");
}

#[test]
fn worker_rejections_propagate_verbatim_with_retry_hints() {
    // Both workers are canned rejecters, so whichever owns the key
    // sheds the job; the router must pass the hint through untouched.
    let rejected = "{\"v\":1,\"id\":\"shed\",\"status\":\"rejected\",\
                    \"queue_depth\":9,\"retry_after_ms\":1234}";
    let addr_a = start_canned_worker(Some(rejected.to_owned()));
    let addr_b = start_canned_worker(Some(rejected.to_owned()));
    let router = Router::new(RouterConfig::new(vec![
        Endpoint::Tcp(addr_a),
        Endpoint::Tcp(addr_b),
    ]))
    .expect("router starts");

    let line = tiny_spec(1).to_request_line(Some("shed"), false);
    let (resp, _) = router.handle_request_line(&line);
    match Response::parse(&resp) {
        Ok(Response::Rejected {
            queue_depth,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(queue_depth, 9);
            assert_eq!(retry_after_ms, 1234, "retry hint propagated honestly");
        }
        other => panic!("expected the worker's rejection verbatim, got {other:?}: {resp}"),
    }
    assert!(router.counter(Counter::ServeRouterShed) >= 1);

    // A retry of the shed key is forwarded again (the hot-tier slot was
    // failed, not filled), still yielding the worker's rejection.
    let forwarded_before = router.counter(Counter::ServeRouterForwarded);
    let (again, _) = router.handle_request_line(&line);
    assert!(again.contains("\"status\":\"rejected\""), "{again}");
    assert!(router.counter(Counter::ServeRouterForwarded) > forwarded_before);
}
