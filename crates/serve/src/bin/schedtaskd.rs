//! `schedtaskd` — the simulation-job server daemon.
//!
//! ```text
//! schedtaskd [--listen ADDR] [--unix PATH] [--queue-capacity N]
//!            [--batch-max N] [--workers N] [--profile]
//! ```
//!
//! Listens for JSON-line requests (see
//! `schedtask_experiments::serve_api`) on a TCP address (default
//! `127.0.0.1:0`; the bound address is printed on stdout) or a Unix
//! socket. One thread per connection; a shared dispatcher executes
//! admitted jobs in batches. Exits cleanly — queue closed, backlog
//! drained, responses flushed — on SIGTERM, SIGINT, or a `shutdown`
//! request. With `--profile`, the serve counter and span tables are
//! printed on exit.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use schedtask_serve::{ServeConfig, Server};

/// Set by the signal handler and the `shutdown` request; the accept
/// loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

// The offline build has no libc crate, but std always links the
// platform C library, so declare the one symbol the daemon needs.
#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

#[cfg(unix)]
extern "C" fn on_terminate(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_terminate);
        signal(SIGTERM, on_terminate);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

struct Opts {
    listen: String,
    unix_path: Option<String>,
    cfg: ServeConfig,
    profile: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("schedtaskd: {msg}");
    exit(2);
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        listen: "127.0.0.1:0".to_owned(),
        unix_path: None,
        cfg: ServeConfig::default(),
        profile: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen"),
            "--unix" => opts.unix_path = Some(value("--unix")),
            "--queue-capacity" => {
                opts.cfg.queue_capacity = value("--queue-capacity")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --queue-capacity: {e}")))
            }
            "--batch-max" => {
                opts.cfg.batch_max = value("--batch-max")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --batch-max: {e}")))
            }
            "--workers" => {
                opts.cfg.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --workers: {e}")))
            }
            "--profile" => opts.profile = true,
            "--help" | "-h" => {
                println!(
                    "usage: schedtaskd [--listen ADDR] [--unix PATH] [--queue-capacity N] \
                     [--batch-max N] [--workers N] [--profile]"
                );
                exit(0);
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }
    if opts.cfg.queue_capacity == 0 || opts.cfg.batch_max == 0 || opts.cfg.workers == 0 {
        die("--queue-capacity, --batch-max, and --workers must be positive");
    }
    opts
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Accepts one connection if one is pending; the listener is in
    /// non-blocking mode so the accept loop can poll the shutdown flag.
    fn try_accept(&self) -> std::io::Result<Option<Box<dyn Conn>>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    Ok(Some(Box::new(stream)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    Ok(Some(Box::new(stream)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// Serves one connection: one request line in, one response line out,
/// until the peer hangs up or asks for shutdown.
fn serve_connection(server: &Server, stream: Box<dyn Conn>) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let (response, shutdown) = server.handle_request_line(&line);
        let out = reader.get_mut();
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            return;
        }
        if shutdown {
            SHUTDOWN.store(true, Ordering::SeqCst);
            return;
        }
    }
}

fn main() {
    let opts = parse_args();
    install_signal_handlers();

    let listener = match &opts.unix_path {
        #[cfg(unix)]
        Some(path) => {
            // A stale socket file from a previous run blocks bind.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)
                .unwrap_or_else(|e| die(&format!("cannot bind unix socket {path}: {e}")));
            l.set_nonblocking(true)
                .unwrap_or_else(|e| die(&format!("cannot set non-blocking: {e}")));
            println!("schedtaskd listening on unix:{path}");
            Listener::Unix(l)
        }
        #[cfg(not(unix))]
        Some(_) => die("--unix is not supported on this platform"),
        None => {
            let l = TcpListener::bind(&opts.listen)
                .unwrap_or_else(|e| die(&format!("cannot bind {}: {e}", opts.listen)));
            l.set_nonblocking(true)
                .unwrap_or_else(|e| die(&format!("cannot set non-blocking: {e}")));
            let addr = l
                .local_addr()
                .unwrap_or_else(|e| die(&format!("cannot read bound address: {e}")));
            println!("schedtaskd listening on {addr}");
            Listener::Tcp(l)
        }
    };
    // The readiness line must be visible to a piping supervisor
    // immediately.
    let _ = std::io::stdout().flush();

    let server = Arc::new(Server::new(opts.cfg));
    let dispatcher = server.spawn_dispatcher();

    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        match listener.try_accept() {
            Ok(Some(stream)) => {
                let server = Arc::clone(&server);
                connections.push(thread::spawn(move || serve_connection(&server, stream)));
            }
            Ok(None) => thread::sleep(Duration::from_millis(25)),
            Err(e) => {
                eprintln!("schedtaskd: accept failed: {e}");
                thread::sleep(Duration::from_millis(25));
            }
        }
        connections.retain(|handle| !handle.is_finished());
    }

    // Clean shutdown: stop admitting, drain the backlog, let in-flight
    // responses go out, then report and exit 0. Connections blocked on
    // an idle read die with the process.
    server.close();
    let _ = dispatcher.join();
    let grace = std::time::Instant::now();
    while connections.iter().any(|handle| !handle.is_finished())
        && grace.elapsed() < Duration::from_secs(5)
    {
        thread::sleep(Duration::from_millis(25));
    }
    #[cfg(unix)]
    if let Some(path) = &opts.unix_path {
        let _ = std::fs::remove_file(path);
    }
    if opts.profile {
        let text = server.profile_text();
        if text.is_empty() {
            println!("schedtaskd: no activity recorded");
        } else {
            print!("{text}");
        }
    }
    println!("schedtaskd: shut down cleanly");
    exit(0);
}
