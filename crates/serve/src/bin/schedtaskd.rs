//! `schedtaskd` — the simulation-job server daemon.
//!
//! ```text
//! schedtaskd [--addr ENDPOINT] [--queue-capacity N]
//!            [--batch-max N] [--workers N] [--cache-dir DIR]
//!            [--chaos SPEC] [--read-timeout-ms N]
//!            [--drain-deadline-ms N] [--profile]
//! schedtaskd --router [--addr ENDPOINT] --worker ENDPOINT [--worker ...]
//!            [--read-timeout-ms N] [--profile]
//! ```
//!
//! Listens for JSON-line requests (see
//! `schedtask_experiments::serve_api`) on `--addr tcp://HOST:PORT`
//! (default `tcp://127.0.0.1:0`; the bound address is printed on
//! stdout) or `--addr unix:///PATH`. The old `--listen ADDR` and
//! `--unix PATH` flags remain as deprecated aliases for one release.
//! One thread per connection; a shared dispatcher executes admitted
//! jobs in batches. Exits cleanly — queue closed, backlog drained
//! (bounded by `--drain-deadline-ms`), responses flushed — on SIGTERM,
//! SIGINT, or a `shutdown` request. With `--profile`, the serve counter
//! and span tables are printed on exit.
//!
//! With `--router`, the daemon is a fleet router instead of a worker:
//! it consistent-hashes each job's cache key across the `--worker`
//! endpoints, forwards over the same wire protocol, and layers a
//! single-flight hot-key cache above the workers' own cache tiers. The
//! router refuses to start unless every worker speaks its protocol
//! version.
//!
//! Reliability knobs:
//!
//! * `--cache-dir DIR` — crash-safe persistent result cache; on
//!   restart, recovered records are served as byte-identical hits.
//! * `--read-timeout-ms N` — per-connection read deadline (slowloris
//!   defense): a peer that stalls mid-request is disconnected. `0`
//!   disables the deadline.
//! * `--chaos SPEC` — deterministic fault injection (`none`, `light`,
//!   `heavy`, optionally `@SEED`, or `key=value,...`); see
//!   `schedtask_serve::chaos`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use schedtask_experiments::serve_api::Endpoint;
use schedtask_serve::{ChaosPlan, ResponseAction, Router, RouterConfig, ServeConfig, Server};

/// Set by the signal handler and the `shutdown` request; the accept
/// loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Longest accepted request line; longer frames are discarded up to
/// the next newline and answered with an error, keeping the connection
/// alive for well-formed requests that follow.
const MAX_LINE_BYTES: usize = 1 << 20;

// The offline build has no libc crate, but std always links the
// platform C library, so declare the one symbol the daemon needs.
#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

#[cfg(unix)]
extern "C" fn on_terminate(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_terminate);
        signal(SIGTERM, on_terminate);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

struct Opts {
    listen: String,
    unix_path: Option<String>,
    router: bool,
    worker_endpoints: Vec<Endpoint>,
    cfg: ServeConfig,
    read_timeout_ms: u64,
    drain_deadline_ms: u64,
    profile: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("schedtaskd: {msg}");
    exit(2);
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        listen: "127.0.0.1:0".to_owned(),
        unix_path: None,
        router: false,
        worker_endpoints: Vec::new(),
        cfg: ServeConfig::default(),
        read_timeout_ms: 30_000,
        drain_deadline_ms: 5_000,
        profile: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => {
                let spec = value("--addr");
                match spec.parse::<Endpoint>() {
                    Ok(Endpoint::Tcp(addr)) => {
                        opts.listen = addr;
                        opts.unix_path = None;
                    }
                    #[cfg(unix)]
                    Ok(Endpoint::Unix(path)) => opts.unix_path = Some(path),
                    Err(e) => die(&format!("bad --addr: {e}")),
                }
            }
            "--router" => opts.router = true,
            "--worker" => {
                let spec = value("--worker");
                let endpoint = spec
                    .parse::<Endpoint>()
                    .unwrap_or_else(|e| die(&format!("bad --worker: {e}")));
                opts.worker_endpoints.push(endpoint);
            }
            // Deprecated aliases, kept for one release.
            "--listen" => opts.listen = value("--listen"),
            "--unix" => opts.unix_path = Some(value("--unix")),
            "--queue-capacity" => {
                opts.cfg.queue_capacity = value("--queue-capacity")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --queue-capacity: {e}")))
            }
            "--batch-max" => {
                opts.cfg.batch_max = value("--batch-max")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --batch-max: {e}")))
            }
            "--workers" => {
                opts.cfg.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --workers: {e}")))
            }
            "--cache-dir" => {
                opts.cfg.cache_dir = Some(std::path::PathBuf::from(value("--cache-dir")))
            }
            "--chaos" => {
                let spec = value("--chaos");
                let plan = ChaosPlan::parse(&spec, 0x5EED)
                    .unwrap_or_else(|e| die(&format!("bad --chaos: {e}")));
                opts.cfg.chaos = Some(plan);
            }
            "--read-timeout-ms" => {
                opts.read_timeout_ms = value("--read-timeout-ms")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --read-timeout-ms: {e}")))
            }
            "--drain-deadline-ms" => {
                opts.drain_deadline_ms = value("--drain-deadline-ms")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --drain-deadline-ms: {e}")))
            }
            "--profile" => opts.profile = true,
            "--help" | "-h" => {
                println!(
                    "usage: schedtaskd [--addr ENDPOINT] [--queue-capacity N] \
                     [--batch-max N] [--workers N] [--cache-dir DIR] [--chaos SPEC] \
                     [--read-timeout-ms N] [--drain-deadline-ms N] [--profile]\n\
                     \x20      schedtaskd --router [--addr ENDPOINT] --worker ENDPOINT \
                     [--worker ENDPOINT ...] [--read-timeout-ms N] [--profile]\n\
                     ENDPOINT is tcp://HOST:PORT or unix:///PATH; \
                     --listen/--unix remain as deprecated aliases."
                );
                exit(0);
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }
    if opts.cfg.queue_capacity == 0 || opts.cfg.batch_max == 0 || opts.cfg.workers == 0 {
        die("--queue-capacity, --batch-max, and --workers must be positive");
    }
    if opts.drain_deadline_ms == 0 {
        die("--drain-deadline-ms must be positive");
    }
    if opts.router && opts.worker_endpoints.is_empty() {
        die("--router needs at least one --worker ENDPOINT");
    }
    if !opts.router && !opts.worker_endpoints.is_empty() {
        die("--worker only makes sense with --router");
    }
    opts
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Accepts one connection if one is pending; the listener is in
    /// non-blocking mode so the accept loop can poll the shutdown flag.
    fn try_accept(&self) -> std::io::Result<Option<Box<dyn Conn>>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    Ok(Some(Box::new(stream)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    Ok(Some(Box::new(stream)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

trait Conn: Read + Write + Send {
    /// Arms the per-connection read deadline.
    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        UnixStream::set_read_timeout(self, dur)
    }
}

/// What one attempt to read a request line produced.
enum LineEvent {
    /// A complete line (newline stripped).
    Line(String),
    /// A frame longer than [`MAX_LINE_BYTES`]; the excess was discarded
    /// up to the next newline, the connection stays usable.
    Oversized,
    /// Peer hung up (or errored) — close the connection.
    Closed,
    /// The read deadline elapsed mid-request — slowloris; close.
    TimedOut,
}

/// Newline-framed reader over a raw stream. `BufRead::read_line` is
/// unreliable under read timeouts (a timeout mid-line loses the
/// partial data), so this keeps its own carry-over buffer: bytes read
/// past one newline are retained for the next request (pipelining).
struct LineReader {
    stream: Box<dyn Conn>,
    buf: Vec<u8>,
    discarding: bool,
}

impl LineReader {
    fn new(stream: Box<dyn Conn>) -> LineReader {
        LineReader {
            stream,
            buf: Vec::with_capacity(4096),
            discarding: false,
        }
    }

    fn next_line(&mut self) -> LineEvent {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if self.discarding {
                    self.discarding = false;
                    return LineEvent::Oversized;
                }
                return LineEvent::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buf.len() > MAX_LINE_BYTES {
                // Too long without a newline: drop what we have and
                // keep discarding until the frame ends.
                self.buf.clear();
                self.discarding = true;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return LineEvent::Closed,
                Ok(n) => {
                    if !self.discarding {
                        self.buf.extend_from_slice(&chunk[..n]);
                    } else if let Some(pos) = chunk[..n].iter().position(|&b| b == b'\n') {
                        self.buf.extend_from_slice(&chunk[pos + 1..n]);
                        self.discarding = false;
                        return LineEvent::Oversized;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineEvent::TimedOut
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return LineEvent::Closed,
            }
        }
    }
}

/// What this process is: a worker executing jobs locally, or a router
/// fanning them out across a fleet. Both speak the same wire protocol,
/// so the connection plumbing below is shared.
enum Daemon {
    Worker(Box<Server>),
    Router(Box<Router>),
}

impl Daemon {
    fn handle_request_line(&self, line: &str) -> (String, bool) {
        match self {
            Daemon::Worker(s) => s.handle_request_line(line),
            Daemon::Router(r) => r.handle_request_line(line),
        }
    }

    /// Chaos applies to worker responses only; the router always
    /// answers faithfully (inject chaos at the workers instead).
    fn response_action(&self, response_len: usize) -> ResponseAction {
        match self {
            Daemon::Worker(s) => s.chaos_response_action(response_len),
            Daemon::Router(_) => ResponseAction::Normal,
        }
    }

    fn profile_text(&self) -> String {
        match self {
            Daemon::Worker(s) => s.profile_text(),
            Daemon::Router(r) => r.profile_text(),
        }
    }
}

/// Writes one response line, letting the chaos plan delay, truncate,
/// or drop it. Returns `false` when the connection must close.
fn write_response(reader: &mut LineReader, daemon: &Daemon, response: &str) -> bool {
    let mut line = String::with_capacity(response.len() + 1);
    line.push_str(response);
    line.push('\n');
    match daemon.response_action(line.len()) {
        ResponseAction::Normal => {}
        ResponseAction::Delay(ms) => thread::sleep(Duration::from_millis(ms)),
        ResponseAction::Truncate(n) => {
            let cut = n.min(line.len());
            let _ = reader
                .stream
                .write_all(&line.as_bytes()[..cut])
                .and_then(|()| reader.stream.flush());
            return false;
        }
        ResponseAction::Drop => return false,
    }
    reader
        .stream
        .write_all(line.as_bytes())
        .and_then(|()| reader.stream.flush())
        .is_ok()
}

/// Serves one connection: one request line in, one response line out,
/// until the peer hangs up, stalls past the read deadline, or asks for
/// shutdown.
fn serve_connection(daemon: &Daemon, stream: Box<dyn Conn>, read_timeout_ms: u64) {
    if read_timeout_ms > 0
        && stream
            .set_read_timeout(Some(Duration::from_millis(read_timeout_ms)))
            .is_err()
    {
        return;
    }
    let mut reader = LineReader::new(stream);
    loop {
        let line = match reader.next_line() {
            LineEvent::Line(line) => line,
            LineEvent::Oversized => {
                // Malformed frame: error the request, keep the
                // connection — the next well-formed line still works.
                let resp = format!(
                    "{{\"status\":\"error\",\"error\":\"request line exceeds {MAX_LINE_BYTES} bytes\"}}"
                );
                if !write_response(&mut reader, daemon, &resp) {
                    return;
                }
                continue;
            }
            LineEvent::Closed | LineEvent::TimedOut => return,
        };
        let (response, shutdown) = daemon.handle_request_line(&line);
        if shutdown {
            // Set the flag before attempting the write: a chaos-dropped
            // response must not lose the shutdown request.
            SHUTDOWN.store(true, Ordering::SeqCst);
        }
        if !write_response(&mut reader, daemon, &response) || shutdown {
            return;
        }
    }
}

/// True when a live daemon answers on the Unix socket at `path`.
#[cfg(unix)]
fn unix_socket_is_live(path: &str) -> bool {
    UnixStream::connect(path).is_ok()
}

fn main() {
    let opts = parse_args();
    install_signal_handlers();

    let listener = match &opts.unix_path {
        #[cfg(unix)]
        Some(path) => {
            // A stale socket file from a previous run blocks bind —
            // but only delete it after probing: if a live daemon still
            // answers on it, deleting would silently orphan that
            // daemon and steal its clients.
            if std::fs::metadata(path).is_ok() {
                if unix_socket_is_live(path) {
                    die(&format!(
                        "refusing to remove {path}: a live daemon is answering on it"
                    ));
                }
                let _ = std::fs::remove_file(path);
            }
            let l = UnixListener::bind(path)
                .unwrap_or_else(|e| die(&format!("cannot bind unix socket {path}: {e}")));
            l.set_nonblocking(true)
                .unwrap_or_else(|e| die(&format!("cannot set non-blocking: {e}")));
            println!("schedtaskd listening on unix:{path}");
            Listener::Unix(l)
        }
        #[cfg(not(unix))]
        Some(_) => die("--unix is not supported on this platform"),
        None => {
            let l = TcpListener::bind(&opts.listen)
                .unwrap_or_else(|e| die(&format!("cannot bind {}: {e}", opts.listen)));
            l.set_nonblocking(true)
                .unwrap_or_else(|e| die(&format!("cannot set non-blocking: {e}")));
            let addr = l
                .local_addr()
                .unwrap_or_else(|e| die(&format!("cannot read bound address: {e}")));
            println!("schedtaskd listening on {addr}");
            Listener::Tcp(l)
        }
    };
    // The readiness line must be visible to a piping supervisor
    // immediately.
    let _ = std::io::stdout().flush();

    let read_timeout_ms = opts.read_timeout_ms;
    let daemon = if opts.router {
        let router = Router::new(RouterConfig::new(opts.worker_endpoints.clone()))
            .unwrap_or_else(|e| die(&e));
        println!(
            "schedtaskd: routing across {} worker(s)",
            router.worker_count()
        );
        let _ = std::io::stdout().flush();
        Arc::new(Daemon::Router(Box::new(router)))
    } else {
        let server = Server::try_new(opts.cfg)
            .unwrap_or_else(|e| die(&format!("cannot open cache dir: {e}")));
        if let Some(report) = server.recovery() {
            println!(
                "schedtaskd: recovered {} cache records ({} corrupt quarantined, {} torn tails truncated)",
                report.records, report.corrupt, report.truncated_tails
            );
            let _ = std::io::stdout().flush();
        }
        Arc::new(Daemon::Worker(Box::new(server)))
    };
    let dispatcher = match daemon.as_ref() {
        Daemon::Worker(_) => {
            let daemon = Arc::clone(&daemon);
            Some(thread::spawn(move || {
                if let Daemon::Worker(server) = daemon.as_ref() {
                    server.run_dispatcher();
                }
            }))
        }
        Daemon::Router(_) => None,
    };

    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        match listener.try_accept() {
            Ok(Some(stream)) => {
                let daemon = Arc::clone(&daemon);
                connections.push(thread::spawn(move || {
                    serve_connection(&daemon, stream, read_timeout_ms)
                }));
            }
            Ok(None) => thread::sleep(Duration::from_millis(25)),
            Err(e) => {
                eprintln!("schedtaskd: accept failed: {e}");
                thread::sleep(Duration::from_millis(25));
            }
        }
        connections.retain(|handle| !handle.is_finished());
    }

    // Clean shutdown: stop admitting, drain the backlog and in-flight
    // responses — but never for longer than the drain deadline, so a
    // SIGTERM cannot hang on a wedged batch or a stalled peer. The
    // router has no local backlog; it only waits out its connections.
    if let Daemon::Worker(server) = daemon.as_ref() {
        server.close();
    }
    let drain_start = Instant::now();
    let deadline = Duration::from_millis(opts.drain_deadline_ms);
    let dispatcher_done =
        |d: &Option<thread::JoinHandle<()>>| d.as_ref().is_none_or(|h| h.is_finished());
    while (!dispatcher_done(&dispatcher) || connections.iter().any(|h| !h.is_finished()))
        && drain_start.elapsed() < deadline
    {
        thread::sleep(Duration::from_millis(10));
    }
    match dispatcher {
        Some(handle) if handle.is_finished() => {
            let _ = handle.join();
        }
        Some(_) => {
            eprintln!(
                "schedtaskd: drain deadline ({} ms) exceeded; abandoning backlog",
                opts.drain_deadline_ms
            );
        }
        None => {}
    }
    #[cfg(unix)]
    if let Some(path) = &opts.unix_path {
        let _ = std::fs::remove_file(path);
    }
    if opts.profile {
        let text = daemon.profile_text();
        if text.is_empty() {
            println!("schedtaskd: no activity recorded");
        } else {
            print!("{text}");
        }
    }
    println!("schedtaskd: shut down cleanly");
    exit(0);
}
