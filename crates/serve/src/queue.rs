//! The bounded admission queue between connection handlers and the
//! dispatcher.
//!
//! Submissions beyond capacity are rejected immediately with a
//! [`Backpressure`] hint instead of blocking the client — admission
//! control, not unbounded buffering. The dispatcher blocks on
//! [`JobQueue::next_batch`], which drains a run of *cost-compatible*
//! jobs (same core count, instruction budget, and sanitizer setting) so
//! one batch's workers finish together instead of straggling.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use schedtask_experiments::JobSpec;

use crate::cache::Slot;

/// One admitted job: the spec, its canonical key, and the cache slot
/// the executor must fill.
#[derive(Debug)]
pub struct QueuedJob {
    /// The fully-resolved job.
    pub spec: JobSpec,
    /// Canonical cache key of `spec`.
    pub key: u64,
    /// The claimed cache slot awaiting this job's output.
    pub slot: Arc<Slot>,
}

/// Rejection response data for a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backpressure {
    /// Queue depth at rejection time (equals capacity).
    pub depth: usize,
    /// Suggested client back-off before retrying.
    pub retry_after_ms: u64,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — transient; retry after the hint.
    Full(Backpressure),
    /// The queue is closed (daemon shutting down) — terminal; retrying
    /// this endpoint will never succeed.
    Closed,
}

#[derive(Debug, Default)]
struct QueueInner {
    jobs: VecDeque<QueuedJob>,
    /// Jobs handed to the dispatcher but not yet finished — they still
    /// occupy workers, so the backpressure hint must account for them.
    in_flight: usize,
    closed: bool,
}

/// A bounded multi-producer queue with a blocking batch consumer.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue admitting at most `capacity` jobs at once.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner::default()),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("job queue poisoned").jobs.len()
    }

    /// Jobs currently dispatched but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.inner.lock().expect("job queue poisoned").in_flight
    }

    /// Admits a job, or rejects it when the queue is full or closed.
    /// Returns the depth after admission.
    ///
    /// A [`SubmitError::Closed`] rejection is terminal — producers must
    /// observe shutdown promptly and report a hard error, not a
    /// backpressure hint that invites a futile retry.
    pub fn submit(&self, job: QueuedJob) -> Result<usize, SubmitError> {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        if inner.closed {
            return Err(SubmitError::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            let depth = inner.jobs.len();
            // The backlog a new job waits behind is the queue *plus*
            // the batch the workers are chewing on right now; a hint
            // derived from queue depth alone under-estimates drain
            // time whenever a batch is in flight.
            let backlog = depth + inner.in_flight;
            drop(inner);
            return Err(SubmitError::Full(Backpressure {
                depth,
                // Scale the hint with the backlog: a fuller pipeline
                // takes longer to drain. Clamped so clients neither
                // spin nor stall.
                retry_after_ms: (backlog as u64 * 100).clamp(100, 5_000),
            }));
        }
        inner.jobs.push_back(job);
        let depth = inner.jobs.len();
        drop(inner);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Blocks until at least one job is queued, then drains up to `max`
    /// cost-compatible jobs from the front. Returns `None` once the
    /// queue is closed and empty (dispatcher shutdown).
    pub fn next_batch(&self, max: usize) -> Option<Vec<QueuedJob>> {
        let max = max.max(1);
        let mut inner = self.inner.lock().expect("job queue poisoned");
        loop {
            if let Some(first) = inner.jobs.pop_front() {
                let mut batch = vec![first];
                while batch.len() < max {
                    let compatible = inner
                        .jobs
                        .front()
                        .is_some_and(|next| cost_compatible(&batch[0].spec, &next.spec));
                    if !compatible {
                        break;
                    }
                    let job = inner.jobs.pop_front().expect("front checked above");
                    batch.push(job);
                }
                inner.in_flight += batch.len();
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).expect("job queue poisoned");
        }
    }

    /// Marks `n` dispatched jobs as finished; the dispatcher calls this
    /// after a batch completes so backpressure hints deflate again.
    pub fn finish_batch(&self, n: usize) {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        inner.in_flight = inner.in_flight.saturating_sub(n);
    }

    /// Closes the queue: future submissions are rejected, and
    /// [`JobQueue::next_batch`] returns `None` once drained.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        inner.closed = true;
        drop(inner);
        self.cv.notify_all();
    }
}

/// Whether two jobs belong in the same batch: equal core count,
/// instruction budgets, and sanitizer setting, so their runtimes are
/// comparable and the batch barrier doesn't straggle.
fn cost_compatible(a: &JobSpec, b: &JobSpec) -> bool {
    a.params.cores == b.params.cores
        && a.params.max_instructions == b.params.max_instructions
        && a.params.warmup_instructions == b.params.warmup_instructions
        && a.params.sanitize == b.params.sanitize
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedtask_experiments::serve_api::{parse_request, RequestOp};

    fn job(line: &str) -> QueuedJob {
        let spec = match parse_request(line).expect("parses").op {
            RequestOp::Run(spec, _) => *spec,
            other => panic!("expected run, got {other:?}"),
        };
        let key = spec.cache_key();
        // A claimed slot, as the server would hold it.
        let slot = match crate::cache::ResultCache::new().lookup_or_claim(key) {
            crate::cache::Lookup::Claimed(slot) => slot,
            other => panic!("fresh cache must claim, got {other:?}"),
        };
        QueuedJob { spec, key, slot }
    }

    fn full_rejection(err: SubmitError) -> Backpressure {
        match err {
            SubmitError::Full(bp) => bp,
            SubmitError::Closed => panic!("expected Full, got Closed"),
        }
    }

    #[test]
    fn rejects_when_full_with_scaled_retry_hint() {
        let q = JobQueue::new(2);
        q.submit(job("{\"workload\":\"Find\"}")).expect("fits");
        q.submit(job("{\"workload\":\"Iscp\"}")).expect("fits");
        let bp = full_rejection(
            q.submit(job("{\"workload\":\"Oscp\"}"))
                .expect_err("must reject"),
        );
        assert_eq!(bp.depth, 2);
        assert_eq!(bp.retry_after_ms, 200);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn retry_hint_counts_in_flight_batch() {
        let q = JobQueue::new(2);
        q.submit(job("{\"workload\":\"Find\"}")).expect("fits");
        q.submit(job("{\"workload\":\"Iscp\"}")).expect("fits");
        // The dispatcher takes both jobs; the queue is momentarily
        // empty but the workers are busy.
        let batch = q.next_batch(8).expect("open queue");
        assert_eq!(batch.len(), 2);
        assert_eq!(q.in_flight(), 2);
        q.submit(job("{\"workload\":\"Oscp\"}")).expect("fits");
        q.submit(job("{\"workload\":\"Dss\"}")).expect("fits");
        let bp = full_rejection(
            q.submit(job("{\"workload\":\"Find\"}"))
                .expect_err("must reject"),
        );
        // Backlog = 2 queued + 2 in flight, not just the 2 queued.
        assert_eq!(bp.retry_after_ms, 400);
        q.finish_batch(batch.len());
        assert_eq!(q.in_flight(), 0);
        let bp = full_rejection(
            q.submit(job("{\"workload\":\"Find\"}"))
                .expect_err("still full"),
        );
        assert_eq!(bp.retry_after_ms, 200, "hint deflates after finish");
    }

    #[test]
    fn batches_cost_compatible_prefix() {
        let q = JobQueue::new(8);
        q.submit(job("{\"workload\":\"Find\"}")).expect("fits");
        q.submit(job("{\"workload\":\"Iscp\"}")).expect("fits");
        // Different core count → different cost class, breaks the batch.
        q.submit(job("{\"workload\":\"Oscp\",\"cores\":2}"))
            .expect("fits");
        q.submit(job("{\"workload\":\"Dss\"}")).expect("fits");
        let batch = q.next_batch(8).expect("open queue");
        assert_eq!(batch.len(), 2);
        let batch = q.next_batch(8).expect("open queue");
        assert_eq!(batch.len(), 1);
        let batch = q.next_batch(8).expect("open queue");
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::new(4);
        q.submit(job("{\"workload\":\"Find\"}")).expect("fits");
        q.close();
        assert_eq!(
            q.submit(job("{\"workload\":\"Iscp\"}"))
                .expect_err("closed queue rejects"),
            SubmitError::Closed
        );
        assert_eq!(q.next_batch(4).expect("drains remaining").len(), 1);
        assert!(q.next_batch(4).is_none());
    }

    #[test]
    fn close_while_full_is_terminal_not_backpressure() {
        // A producer hitting a full queue gets a retry hint; the moment
        // the queue closes, the same producer must get the terminal
        // `Closed` error instead — a backpressure hint would send the
        // client into a retry loop against a dying daemon.
        let q = JobQueue::new(1);
        q.submit(job("{\"workload\":\"Find\"}")).expect("fits");
        assert!(matches!(
            q.submit(job("{\"workload\":\"Iscp\"}")),
            Err(SubmitError::Full(_))
        ));
        q.close();
        assert_eq!(
            q.submit(job("{\"workload\":\"Iscp\"}"))
                .expect_err("closed wins over full"),
            SubmitError::Closed
        );
        // The already-admitted job still drains.
        assert_eq!(q.next_batch(4).expect("drains").len(), 1);
        assert!(q.next_batch(4).is_none());
        // And producers keep observing Closed promptly afterwards.
        assert_eq!(
            q.submit(job("{\"workload\":\"Oscp\"}"))
                .expect_err("still closed"),
            SubmitError::Closed
        );
    }
}
