//! The server core: request handling, the dispatcher, and job
//! execution. Transport (sockets, signals) lives in the `schedtaskd`
//! binary; everything here works on request/response strings, which is
//! what the tests drive directly.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use schedtask::{SchedTaskConfig, SchedTaskScheduler};
use schedtask_experiments::runner::{panic_message, RunBuilder};
use schedtask_experiments::serve_api::{
    parse_request, JobSpec, RequestOp, Response, PROTOCOL_VERSION,
};
use schedtask_kernel::SimStats;
use schedtask_obs::{
    render_counter_table, render_span_table, Aggregator, ChaosKind, CounterSnapshot, JsonlSink,
    ObsEvent, Observer, SpanKind,
};

use crate::cache::{JobOutput, Lookup, ResultCache};
use crate::chaos::{ChaosInjector, ChaosPlan, ResponseAction};
use crate::disk::{DiskCache, RecoveryReport};
use crate::queue::{JobQueue, QueuedJob, SubmitError};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// backpressure.
    pub queue_capacity: usize,
    /// Maximum jobs the dispatcher drains into one batch.
    pub batch_max: usize,
    /// Worker threads simulating one batch.
    pub workers: usize,
    /// Directory for the persistent cache tier; `None` disables it.
    pub cache_dir: Option<PathBuf>,
    /// Chaos plan for fault injection; `None` (or an inactive plan)
    /// disables it.
    pub chaos: Option<ChaosPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            batch_max: 8,
            workers: 4,
            cache_dir: None,
            chaos: None,
        }
    }
}

/// The server core. Transport-agnostic: hand request lines to
/// [`Server::handle_request_line`] from any number of threads; run
/// [`Server::run_dispatcher`] (or [`Server::spawn_dispatcher`]) to
/// execute admitted jobs.
#[derive(Debug)]
pub struct Server {
    cfg: ServeConfig,
    cache: ResultCache,
    disk: Option<DiskCache>,
    recovery: Option<RecoveryReport>,
    chaos: Option<Mutex<ChaosInjector>>,
    queue: JobQueue,
    agg: Arc<Aggregator>,
    started: Instant,
}

/// What a chaos-inflected disk append should do.
enum DiskAction {
    Persist,
    Torn(usize),
    Fail,
}

impl Server {
    /// A fresh server with an empty cache and queue. Panics if the
    /// configured cache directory cannot be opened; the daemon uses
    /// [`Server::try_new`] to report that as a startup error instead.
    pub fn new(cfg: ServeConfig) -> Server {
        Server::try_new(cfg).expect("failed to open cache dir")
    }

    /// A fresh server, recovering the persistent tier when
    /// `cfg.cache_dir` is set. Recovery results are published as a
    /// [`ObsEvent::DiskRecovered`] event (visible in `--profile`) and
    /// via [`Server::recovery`].
    pub fn try_new(cfg: ServeConfig) -> io::Result<Server> {
        let started = Instant::now();
        let agg = Arc::new(Aggregator::new());
        let (disk, recovery) = match &cfg.cache_dir {
            Some(dir) => {
                let (disk, report) = DiskCache::open(dir)?;
                agg.event(&ObsEvent::DiskRecovered {
                    at: started.elapsed().as_millis() as u64,
                    records: report.records,
                    corrupt: report.corrupt,
                    truncated: report.truncated_tails,
                });
                (Some(disk), Some(report))
            }
            None => (None, None),
        };
        let chaos = cfg
            .chaos
            .as_ref()
            .filter(|plan| plan.is_active())
            .map(|plan| Mutex::new(ChaosInjector::new(plan.clone())));
        Ok(Server {
            queue: JobQueue::new(cfg.queue_capacity),
            cfg,
            cache: ResultCache::new(),
            disk,
            recovery,
            chaos,
            agg,
            started,
        })
    }

    /// What startup recovery of the persistent tier found, if it ran.
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// Number of records in the persistent tier's index.
    pub fn disk_entries(&self) -> usize {
        self.disk.as_ref().map_or(0, DiskCache::len)
    }

    /// Milliseconds since server start (the `at` clock of serve events).
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Microseconds since server start (the job-span clock).
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn emit(&self, ev: ObsEvent) {
        self.agg.event(&ev);
    }

    /// Snapshot of the serve counters.
    pub fn counters(&self) -> CounterSnapshot {
        self.agg.counters()
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// The result cache (tests probe hit/miss/entry counts).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Closes the admission queue: future runs are rejected and the
    /// dispatcher exits once the backlog is drained.
    pub fn close(&self) {
        self.queue.close();
    }

    /// The `--profile` report: counter and span tables.
    pub fn profile_text(&self) -> String {
        let mut out = render_counter_table(&[("schedtaskd".to_owned(), self.agg.counters())]);
        let spans = render_span_table(&self.agg.span_rows());
        if !spans.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&spans);
        }
        out
    }

    /// Runs the dispatcher until the queue is closed and drained.
    pub fn run_dispatcher(&self) {
        while let Some(batch) = self.queue.next_batch(self.cfg.batch_max) {
            self.run_batch(batch);
        }
    }

    /// Spawns the dispatcher on its own thread. Tests that need a full
    /// queue call this only after staging submissions.
    pub fn spawn_dispatcher(self: &Arc<Self>) -> thread::JoinHandle<()> {
        let server = Arc::clone(self);
        thread::spawn(move || server.run_dispatcher())
    }

    fn run_batch(&self, batch: Vec<QueuedJob>) {
        // Single-flight claiming guarantees each queued key is unique,
        // so the batch needs no dedup. Lane indices only label the job
        // spans.
        let items: Vec<(u32, QueuedJob)> = batch
            .into_iter()
            .enumerate()
            .map(|(lane, job)| (lane as u32, job))
            .collect();
        let jobs = items.len() as u32;
        let results = scoped_pool::scoped_map(&items, self.cfg.workers, |(lane, job)| {
            let enter_us = self.now_us();
            self.agg.span_enter(Some(*lane), SpanKind::Job, enter_us);
            let started = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                if self.chaos_worker_panic() {
                    panic!("chaos: injected worker panic");
                }
                execute_job(&job.spec)
            }))
            .unwrap_or_else(|payload| Err(format!("job panicked: {}", panic_message(payload))));
            let micros = started.elapsed().as_micros() as u64;
            self.agg
                .span_exit(Some(*lane), SpanKind::Job, enter_us + micros);
            (micros, result)
        });
        for ((_, job), (micros, result)) in items.iter().zip(results) {
            self.emit(ObsEvent::JobExecuted {
                at: self.now_ms(),
                key: job.key,
                micros,
            });
            match result {
                Ok(output) => {
                    // Persist (and fsync) before publishing: once a
                    // response leaves the server, the record must
                    // survive a crash.
                    self.persist(job.key, &output);
                    self.cache.fill(&job.slot, output);
                }
                Err(err) => self.cache.fail(job.key, &job.slot, err),
            }
        }
        self.queue.finish_batch(items.len());
        self.emit(ObsEvent::BatchExecuted {
            at: self.now_ms(),
            jobs,
        });
    }

    /// Appends one fresh result to the persistent tier (when enabled),
    /// letting the chaos plan tear or fail the write. Persistence
    /// failures never fail the job — the result is already served from
    /// memory; the disk tier just loses one record, which a resubmit
    /// after restart will regenerate.
    fn persist(&self, key: u64, out: &JobOutput) {
        let Some(disk) = &self.disk else { return };
        let record_len = out.stats_json.len() + out.jsonl.len() + 24;
        match self.chaos_disk_action(record_len) {
            DiskAction::Persist => match disk.append(key, &out.stats_json, &out.jsonl) {
                Ok(bytes) => self.emit(ObsEvent::DiskWritten {
                    at: self.now_ms(),
                    key,
                    bytes,
                }),
                Err(_) => self.emit(ObsEvent::DiskWriteFailed {
                    at: self.now_ms(),
                    key,
                }),
            },
            DiskAction::Torn(keep) => {
                let _ = disk.append_torn(key, &out.stats_json, &out.jsonl, keep);
                self.emit(ObsEvent::DiskWriteFailed {
                    at: self.now_ms(),
                    key,
                });
            }
            DiskAction::Fail => self.emit(ObsEvent::DiskWriteFailed {
                at: self.now_ms(),
                key,
            }),
        }
    }

    /// Rolls the chaos dice for one disk append.
    fn chaos_disk_action(&self, record_len: usize) -> DiskAction {
        let Some(chaos) = &self.chaos else {
            return DiskAction::Persist;
        };
        let mut inj = chaos.lock().expect("chaos injector poisoned");
        if let Some(keep) = inj.torn_write(record_len) {
            drop(inj);
            self.emit(ObsEvent::ChaosInjected {
                at: self.now_ms(),
                kind: ChaosKind::TornWrite,
            });
            return DiskAction::Torn(keep);
        }
        if inj.disk_full() {
            drop(inj);
            self.emit(ObsEvent::ChaosInjected {
                at: self.now_ms(),
                kind: ChaosKind::DiskFull,
            });
            return DiskAction::Fail;
        }
        DiskAction::Persist
    }

    /// Rolls the chaos dice for one worker execution.
    fn chaos_worker_panic(&self) -> bool {
        let Some(chaos) = &self.chaos else {
            return false;
        };
        let fire = chaos
            .lock()
            .expect("chaos injector poisoned")
            .worker_panic();
        if fire {
            self.emit(ObsEvent::ChaosInjected {
                at: self.now_ms(),
                kind: ChaosKind::WorkerPanic,
            });
        }
        fire
    }

    /// Rolls the chaos dice for one outgoing response line of
    /// `line_len` bytes. The transport layer (the daemon) applies the
    /// returned action; chaos events are emitted here so `--profile`
    /// accounts every injection.
    pub fn chaos_response_action(&self, line_len: usize) -> ResponseAction {
        let Some(chaos) = &self.chaos else {
            return ResponseAction::Normal;
        };
        let action = chaos
            .lock()
            .expect("chaos injector poisoned")
            .response_action(line_len);
        let kind = match action {
            ResponseAction::Normal => return action,
            ResponseAction::Delay(_) => ChaosKind::DelayedResponse,
            ResponseAction::Truncate(_) => ChaosKind::TruncatedResponse,
            ResponseAction::Drop => ChaosKind::DroppedConnection,
        };
        self.emit(ObsEvent::ChaosInjected {
            at: self.now_ms(),
            kind,
        });
        action
    }

    /// Handles one request line and renders one response line. The
    /// returned flag is `true` when the request asked the server to
    /// shut down.
    pub fn handle_request_line(&self, line: &str) -> (String, bool) {
        let line = line.trim();
        if line.is_empty() {
            return (error_response(&None, "empty request"), false);
        }
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(err) => {
                // Version skew is a structured error (code
                // "unsupported_version"), not a parse failure: the
                // client can tell "upgrade me" apart from "fix your
                // request".
                let resp = Response::Error {
                    id: None,
                    code: err.code().map(str::to_owned),
                    error: err.to_string(),
                };
                return (resp.render(), false);
            }
        };
        match req.op {
            RequestOp::Ping => (
                Response::Pong {
                    id: req.id,
                    proto: PROTOCOL_VERSION,
                }
                .render(),
                false,
            ),
            RequestOp::Stats => (self.stats_response(&req.id), false),
            RequestOp::Shutdown => (Response::ShuttingDown { id: req.id }.render(), true),
            RequestOp::Run(spec, want_obs) => (self.handle_run(&req.id, *spec, want_obs), false),
        }
    }

    fn handle_run(&self, id: &Option<String>, spec: JobSpec, want_obs: bool) -> String {
        let key = spec.cache_key();
        let submitted = Instant::now();
        self.emit(ObsEvent::JobSubmitted {
            at: self.now_ms(),
            key,
        });
        let (output, cached, coalesced) = match self.cache.lookup_or_claim(key) {
            Lookup::Hit(out) => {
                self.emit(ObsEvent::JobCacheHit {
                    at: self.now_ms(),
                    key,
                });
                (Ok(out), true, false)
            }
            Lookup::InFlight(slot) => {
                self.emit(ObsEvent::JobCoalesced {
                    at: self.now_ms(),
                    key,
                });
                (slot.wait(), false, true)
            }
            Lookup::Claimed(slot) => {
                // Memory miss: probe the persistent tier before paying
                // for an execution. A disk hit fills the claimed slot,
                // so coalesced waiters and later submitters replay the
                // promoted bytes from memory.
                if let Some(record) = self.disk.as_ref().and_then(|disk| disk.get(key)) {
                    self.emit(ObsEvent::DiskCacheHit {
                        at: self.now_ms(),
                        key,
                    });
                    let out = self.cache.fill(
                        &slot,
                        JobOutput {
                            key: format!("{key:016x}"),
                            stats: SimStats::default(),
                            stats_json: record.stats_json,
                            jsonl: record.jsonl,
                        },
                    );
                    (Ok(out), true, false)
                } else {
                    let job = QueuedJob {
                        spec,
                        key,
                        slot: Arc::clone(&slot),
                    };
                    match self.queue.submit(job) {
                        Ok(depth) => {
                            self.emit(ObsEvent::JobAdmitted {
                                at: self.now_ms(),
                                key,
                                depth: depth as u32,
                            });
                            (slot.wait(), false, false)
                        }
                        Err(SubmitError::Full(bp)) => {
                            self.emit(ObsEvent::JobRejected {
                                at: self.now_ms(),
                                depth: bp.depth as u32,
                            });
                            // Release the claim so a retry after
                            // back-off re-executes instead of waiting
                            // forever.
                            self.cache
                                .fail(key, &slot, "rejected: queue full".to_owned());
                            return Response::Rejected {
                                id: id.clone(),
                                queue_depth: bp.depth as u64,
                                retry_after_ms: bp.retry_after_ms,
                            }
                            .render();
                        }
                        Err(SubmitError::Closed) => {
                            // Terminal: the daemon is shutting down. No
                            // retry hint — the client must not spin
                            // against a dying endpoint.
                            self.cache
                                .fail(key, &slot, "server shutting down".to_owned());
                            return error_response(id, "server shutting down; queue closed");
                        }
                    }
                }
            }
        };
        let latency_us = submitted.elapsed().as_micros() as u64;
        match output {
            Ok(out) => Response::Ok {
                id: id.clone(),
                cached,
                coalesced,
                key: out.key.clone(),
                queue_depth: self.queue.depth() as u64,
                latency_us,
                result: out.stats_json.clone(),
                jsonl: want_obs.then(|| out.jsonl.clone()),
            }
            .render(),
            Err(err) => error_response(id, &err),
        }
    }

    fn stats_response(&self, id: &Option<String>) -> String {
        let snap = self.agg.counters();
        let mut counters = String::from("{");
        let mut first = true;
        for (c, v) in snap.iter().filter(|&(_, v)| v > 0) {
            if !first {
                counters.push(',');
            }
            first = false;
            counters.push_str(&format!("\"{}\":{v}", c.name()));
        }
        counters.push('}');
        format!(
            "{{\"v\":{PROTOCOL_VERSION},{}\"status\":\"ok\",\"queue_depth\":{},\
             \"queue_capacity\":{},\"cache_entries\":{},\"disk_entries\":{},\
             \"counters\":{counters}}}",
            id_field(id),
            self.queue.depth(),
            self.queue.capacity(),
            self.cache.entries(),
            self.disk_entries()
        )
    }
}

/// Renders the optional leading `"id":"...",` response field (stats
/// responses only; typed responses render through [`Response`]).
fn id_field(id: &Option<String>) -> String {
    match id {
        Some(id) => format!(
            "\"id\":\"{}\",",
            schedtask_experiments::serve_api::escape_json(id)
        ),
        None => String::new(),
    }
}

/// Renders an error response line with no machine-readable code.
fn error_response(id: &Option<String>, err: &str) -> String {
    Response::Error {
        id: id.clone(),
        code: None,
        error: err.to_owned(),
    }
    .render()
}

/// Simulates one job and packages the cacheable output. The JSONL
/// stream is always captured: it is part of the cached artefact, so
/// replays are byte-identical whether or not the first submitter asked
/// for it.
fn execute_job(spec: &JobSpec) -> Result<JobOutput, String> {
    let label = format!("{}/{}", spec.technique.name(), spec.benchmark.name());
    let sink = Arc::new(JsonlSink::with_label(Vec::new(), Some(label)));
    let mut builder =
        RunBuilder::new(&spec.params).observer(Arc::clone(&sink) as Arc<dyn Observer>);
    builder = match spec.steal {
        Some(policy) => builder.scheduler(Box::new(SchedTaskScheduler::new(
            spec.params.cores,
            SchedTaskConfig {
                steal_policy: policy,
                ..SchedTaskConfig::default()
            },
        ))),
        None => builder.technique(spec.technique),
    };
    let stats = builder
        .benchmark(spec.benchmark, spec.scale)
        .run()
        .map_err(|e| e.to_string())?;
    Ok(JobOutput {
        key: spec.cache_key_hex(),
        stats_json: stats.to_canonical_json(),
        jsonl: sink.take(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedtask_experiments::serve_api::Json;
    use schedtask_obs::Counter;

    fn quick_run_line(id: &str, workload: &str) -> String {
        format!(
            "{{\"id\":\"{id}\",\"workload\":\"{workload}\",\"cores\":2,\
             \"max_instructions\":60000,\"warmup_instructions\":20000}}"
        )
    }

    #[test]
    fn run_then_rerun_hits_cache_with_identical_bytes() {
        let server = Arc::new(Server::new(ServeConfig {
            queue_capacity: 4,
            batch_max: 2,
            workers: 2,
            ..ServeConfig::default()
        }));
        let dispatcher = server.spawn_dispatcher();

        let (first, _) = server.handle_request_line(&quick_run_line("a", "Find"));
        let (second, _) = server.handle_request_line(&quick_run_line("b", "Find"));
        let parse = |resp: &str| Json::parse(resp).expect("response is JSON");
        let first_json = parse(&first);
        let second_json = parse(&second);
        assert_eq!(
            first_json.get("status").and_then(Json::as_str),
            Some("ok"),
            "{first}"
        );
        assert_eq!(
            first_json.get("cached").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            second_json.get("cached").and_then(Json::as_bool),
            Some(true)
        );
        // The cached replay carries byte-identical result bytes: strip
        // the differing envelope (id, latency) and compare the payload.
        let result_of = |resp: &str| {
            let start = resp.find("\"result\":").expect("result field") + "\"result\":".len();
            resp[start..resp.len() - 1].to_owned()
        };
        assert_eq!(result_of(&first), result_of(&second));

        let snap = server.counters();
        assert_eq!(snap.get(Counter::ServeSubmitted), 2);
        assert_eq!(snap.get(Counter::ServeCacheMisses), 1);
        assert_eq!(snap.get(Counter::ServeCacheHits), 1);
        assert_eq!(snap.get(Counter::ServeExecuted), 1);

        server.close();
        dispatcher.join().expect("dispatcher exits");
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        // No dispatcher: the queue cannot drain, so filling it is
        // deterministic.
        let server = Arc::new(Server::new(ServeConfig {
            queue_capacity: 2,
            batch_max: 2,
            workers: 1,
            ..ServeConfig::default()
        }));
        let staged: Vec<thread::JoinHandle<String>> = ["Find", "Iscp"]
            .iter()
            .enumerate()
            .map(|(i, workload)| {
                let server = Arc::clone(&server);
                let line = quick_run_line(&format!("s{i}"), workload);
                thread::spawn(move || server.handle_request_line(&line).0)
            })
            .collect();
        // Wait until both staged submissions are admitted.
        while server.queue_depth() < 2 {
            thread::sleep(std::time::Duration::from_millis(5));
        }
        let (rejected, _) = server.handle_request_line(&quick_run_line("r", "Oscp"));
        let json = Json::parse(&rejected).expect("response is JSON");
        assert_eq!(
            json.get("status").and_then(Json::as_str),
            Some("rejected"),
            "{rejected}"
        );
        assert_eq!(json.get("queue_depth").and_then(Json::as_u64), Some(2));
        assert!(
            json.get("retry_after_ms")
                .and_then(Json::as_u64)
                .expect("hint")
                >= 100
        );
        assert_eq!(server.counters().get(Counter::ServeRejected), 1);

        // Draining the queue completes the staged submissions.
        let dispatcher = server.spawn_dispatcher();
        for handle in staged {
            let resp = handle.join().expect("no panic");
            let json = Json::parse(&resp).expect("response is JSON");
            assert_eq!(
                json.get("status").and_then(Json::as_str),
                Some("ok"),
                "{resp}"
            );
        }
        // After back-off, the rejected job can be resubmitted and runs.
        let (retried, _) = server.handle_request_line(&quick_run_line("r2", "Oscp"));
        let json = Json::parse(&retried).expect("response is JSON");
        assert_eq!(
            json.get("status").and_then(Json::as_str),
            Some("ok"),
            "{retried}"
        );
        assert_eq!(json.get("cached").and_then(Json::as_bool), Some(false));
        server.close();
        dispatcher.join().expect("dispatcher exits");
    }

    #[test]
    fn ping_stats_and_shutdown_requests() {
        let server = Server::new(ServeConfig::default());
        let (pong, shutdown) = server.handle_request_line("{\"op\":\"ping\",\"id\":\"p\"}");
        assert!(!shutdown);
        assert_eq!(
            pong,
            "{\"v\":1,\"id\":\"p\",\"status\":\"ok\",\"pong\":true,\"proto\":1}"
        );
        let (stats, _) = server.handle_request_line("{\"op\":\"stats\"}");
        let json = Json::parse(&stats).expect("stats is JSON");
        assert_eq!(json.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("queue_depth").and_then(Json::as_u64), Some(0));
        assert_eq!(json.get("queue_capacity").and_then(Json::as_u64), Some(64));
        let (_, shutdown) = server.handle_request_line("{\"op\":\"shutdown\"}");
        assert!(shutdown);
    }

    #[test]
    fn unsupported_version_is_a_structured_error() {
        let server = Server::new(ServeConfig::default());
        let (resp, shutdown) = server.handle_request_line("{\"v\":2,\"op\":\"ping\"}");
        assert!(!shutdown);
        let json = Json::parse(&resp).expect("error response is JSON");
        assert_eq!(
            json.get("status").and_then(Json::as_str),
            Some("error"),
            "{resp}"
        );
        assert_eq!(
            json.get("code").and_then(Json::as_str),
            Some("unsupported_version"),
            "{resp}"
        );
        // The current version passes the same gate.
        let (resp, _) = server.handle_request_line("{\"v\":1,\"op\":\"ping\"}");
        let json = Json::parse(&resp).expect("pong is JSON");
        assert_eq!(json.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(json.get("proto").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn restart_serves_disk_tier_as_byte_identical_cache_hit() {
        let dir =
            std::env::temp_dir().join(format!("schedtask-server-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            queue_capacity: 4,
            batch_max: 2,
            workers: 2,
            cache_dir: Some(dir.clone()),
            chaos: None,
        };
        let result_of = |resp: &str| {
            let start = resp.find("\"result\":").expect("result field") + "\"result\":".len();
            resp[start..resp.len() - 1].to_owned()
        };
        // First lifetime: execute and persist.
        let first = {
            let server = Arc::new(Server::new(cfg.clone()));
            let dispatcher = server.spawn_dispatcher();
            let (resp, _) = server.handle_request_line(&quick_run_line("a", "Find"));
            let json = Json::parse(&resp).expect("response is JSON");
            assert_eq!(
                json.get("status").and_then(Json::as_str),
                Some("ok"),
                "{resp}"
            );
            assert_eq!(server.disk_entries(), 1, "result persisted");
            server.close();
            dispatcher.join().expect("dispatcher exits");
            resp
        };
        // Second lifetime, same directory: recovery promotes the disk
        // record — no execution, byte-identical result payload.
        let server = Arc::new(Server::new(cfg));
        assert_eq!(server.recovery().expect("recovery ran").records, 1);
        let (second, _) = server.handle_request_line(&quick_run_line("b", "Find"));
        let json = Json::parse(&second).expect("response is JSON");
        assert_eq!(
            json.get("cached").and_then(Json::as_bool),
            Some(true),
            "{second}"
        );
        assert_eq!(result_of(&first), result_of(&second));
        assert_eq!(server.counters().get(Counter::ServeDiskHits), 1);
        assert_eq!(server.counters().get(Counter::ServeExecuted), 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn closed_queue_yields_terminal_error_response() {
        let server = Server::new(ServeConfig::default());
        server.close();
        let (resp, _) = server.handle_request_line(&quick_run_line("x", "Find"));
        let json = Json::parse(&resp).expect("response is JSON");
        assert_eq!(
            json.get("status").and_then(Json::as_str),
            Some("error"),
            "closed queue must be a terminal error, not backpressure: {resp}"
        );
        assert!(json.get("retry_after_ms").is_none(), "{resp}");
    }

    #[test]
    fn bad_requests_get_error_responses() {
        let server = Server::new(ServeConfig::default());
        for line in ["", "not json", "{\"workload\":\"NoSuch\"}"] {
            let (resp, shutdown) = server.handle_request_line(line);
            assert!(!shutdown);
            let json = Json::parse(&resp).expect("error response is JSON");
            assert_eq!(
                json.get("status").and_then(Json::as_str),
                Some("error"),
                "{resp}"
            );
        }
    }
}
