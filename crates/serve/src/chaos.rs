//! Deterministic, seed-driven chaos injection for the serve path.
//!
//! A [`ChaosPlan`] is to `schedtaskd` what
//! [`FaultPlan`](schedtask_kernel::FaultPlan) is to the simulation
//! engine: a declaration of *what* to break and *how often*, with a
//! private RNG stream seeded only by [`ChaosPlan::seed`] so the same
//! plan breaks the same things in the same order on every run. The
//! chaos harness (`repro chaos` and the serve proptests) leans on that
//! determinism to assert invariants — no corrupt bytes served, recovery
//! converges, a retrying client eventually gets byte-identical results
//! — instead of hoping a flaky run happens to exercise the right path.
//!
//! Five failure classes are modelled:
//!
//! * **torn cache writes** — a disk append stops partway through a
//!   record, as a crash mid-`write` would leave it.
//! * **disk full** — an append fails outright; the job still succeeds
//!   from memory, the disk tier just misses one record.
//! * **worker panics** — a batch worker panics mid-job; the existing
//!   `catch_unwind` isolation must convert it into a per-job error.
//! * **delayed / truncated responses** — the daemon stalls before
//!   responding or sends only a prefix of the response line.
//! * **dropped connections** — the daemon closes the socket before
//!   responding at all.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How often to inject each serve-path failure class. All `*_rate`
/// fields are per-opportunity probabilities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Probability (per disk append) that the write is torn partway.
    pub torn_write_rate: f64,
    /// Probability (per disk append) that the write fails as if the
    /// disk were full.
    pub disk_full_rate: f64,
    /// Probability (per executed job) that the worker panics mid-job.
    pub worker_panic_rate: f64,
    /// Probability (per response) that the daemon stalls
    /// [`ChaosPlan::delay_ms`] before writing it.
    pub delay_response_rate: f64,
    /// Stall length for a delayed response, in milliseconds.
    pub delay_ms: u64,
    /// Probability (per response) that only a prefix of the line is
    /// written before the connection closes.
    pub truncate_response_rate: f64,
    /// Probability (per response) that the connection is dropped
    /// without writing anything.
    pub drop_connection_rate: f64,
}

impl ChaosPlan {
    /// A plan that injects nothing (determinism control).
    pub fn none(seed: u64) -> Self {
        ChaosPlan {
            seed,
            torn_write_rate: 0.0,
            disk_full_rate: 0.0,
            worker_panic_rate: 0.0,
            delay_response_rate: 0.0,
            delay_ms: 50,
            truncate_response_rate: 0.0,
            drop_connection_rate: 0.0,
        }
    }

    /// A light plan: rare injections of every class — rough weather,
    /// not a hurricane. A retrying client should sail through.
    pub fn light(seed: u64) -> Self {
        ChaosPlan {
            torn_write_rate: 0.05,
            disk_full_rate: 0.02,
            worker_panic_rate: 0.02,
            delay_response_rate: 0.05,
            truncate_response_rate: 0.03,
            drop_connection_rate: 0.03,
            ..ChaosPlan::none(seed)
        }
    }

    /// A heavy plan: every class fires often; only a disciplined
    /// retry/backoff client makes progress.
    pub fn heavy(seed: u64) -> Self {
        ChaosPlan {
            torn_write_rate: 0.25,
            disk_full_rate: 0.10,
            worker_panic_rate: 0.10,
            delay_response_rate: 0.20,
            truncate_response_rate: 0.15,
            drop_connection_rate: 0.15,
            ..ChaosPlan::none(seed)
        }
    }

    /// True if any class has a non-zero rate.
    pub fn is_active(&self) -> bool {
        self.torn_write_rate > 0.0
            || self.disk_full_rate > 0.0
            || self.worker_panic_rate > 0.0
            || self.delay_response_rate > 0.0
            || self.truncate_response_rate > 0.0
            || self.drop_connection_rate > 0.0
    }

    /// Checks every rate is a probability.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("torn_write_rate", self.torn_write_rate),
            ("disk_full_rate", self.disk_full_rate),
            ("worker_panic_rate", self.worker_panic_rate),
            ("delay_response_rate", self.delay_response_rate),
            ("truncate_response_rate", self.truncate_response_rate),
            ("drop_connection_rate", self.drop_connection_rate),
        ];
        for (field, value) in rates {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(format!("chaos rate {field} must be in [0, 1], got {value}"));
            }
        }
        Ok(())
    }

    /// Parses the `--chaos` spec: a preset name (`none`, `light`,
    /// `heavy`), optionally with an explicit seed (`light@42`), or a
    /// comma-separated `key=value` list, e.g.
    /// `torn_write_rate=0.5,drop_connection_rate=0.1,seed=7`.
    /// Unknown keys are rejected.
    pub fn parse(spec: &str, default_seed: u64) -> Result<Self, String> {
        let (preset, preset_seed) = match spec.split_once('@') {
            Some((name, seed)) => {
                let seed = seed
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| format!("bad chaos plan seed {seed:?}: {e}"))?;
                (name.trim(), seed)
            }
            None => (spec, default_seed),
        };
        match preset {
            "none" => return Ok(ChaosPlan::none(preset_seed)),
            "light" => return Ok(ChaosPlan::light(preset_seed)),
            "heavy" => return Ok(ChaosPlan::heavy(preset_seed)),
            _ if spec.contains('@') => {
                return Err(format!(
                    "unknown chaos plan preset {preset:?}, want none|light|heavy"
                ))
            }
            _ => {}
        }
        let mut plan = ChaosPlan::none(default_seed);
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad chaos spec component {part:?}, want key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let parse_f64 = || {
                value
                    .parse::<f64>()
                    .map_err(|e| format!("bad value for {key}: {e}"))
            };
            let parse_u64 = || {
                value
                    .parse::<u64>()
                    .map_err(|e| format!("bad value for {key}: {e}"))
            };
            match key {
                "seed" => plan.seed = parse_u64()?,
                "torn_write_rate" => plan.torn_write_rate = parse_f64()?,
                "disk_full_rate" => plan.disk_full_rate = parse_f64()?,
                "worker_panic_rate" => plan.worker_panic_rate = parse_f64()?,
                "delay_response_rate" => plan.delay_response_rate = parse_f64()?,
                "delay_ms" => plan.delay_ms = parse_u64()?,
                "truncate_response_rate" => plan.truncate_response_rate = parse_f64()?,
                "drop_connection_rate" => plan.drop_connection_rate = parse_f64()?,
                other => return Err(format!("unknown chaos plan key {other:?}")),
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

/// What the transport layer should do with one outgoing response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseAction {
    /// Write the response normally.
    Normal,
    /// Sleep this many milliseconds, then write normally.
    Delay(u64),
    /// Write only this many bytes of the line, then close.
    Truncate(usize),
    /// Close the connection without writing anything.
    Drop,
}

/// The server-side injector: a plan plus a private deterministic RNG
/// stream. One injector is shared across the daemon behind a mutex;
/// injection order therefore depends on request interleaving, but each
/// *decision stream* is reproducible for a given seed and arrival
/// order (the chaos proptests drive a single-threaded client, which
/// pins the order completely).
#[derive(Debug, Clone)]
pub struct ChaosInjector {
    plan: ChaosPlan,
    rng: SmallRng,
}

impl ChaosInjector {
    /// Builds an injector from a validated plan.
    pub fn new(plan: ChaosPlan) -> Self {
        let rng = SmallRng::seed_from_u64(plan.seed ^ 0xC4A0_5C4A_05C4_A05C);
        ChaosInjector { plan, rng }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    // One draw per decision regardless of outcome, so the stream stays
    // aligned with injection *opportunities* across reruns.
    fn roll(&mut self, rate: f64) -> bool {
        let draw: f64 = self.rng.gen();
        rate > 0.0 && draw < rate
    }

    /// Should this disk append be torn? Returns the number of bytes to
    /// keep (at least 1) given the full record length.
    pub fn torn_write(&mut self, record_len: usize) -> Option<usize> {
        if self.roll(self.plan.torn_write_rate) {
            Some(self.rng.gen_range(1..record_len.max(2)))
        } else {
            None
        }
    }

    /// Should this disk append fail as if the disk were full?
    pub fn disk_full(&mut self) -> bool {
        self.roll(self.plan.disk_full_rate)
    }

    /// Should this job's worker panic mid-execution?
    pub fn worker_panic(&mut self) -> bool {
        self.roll(self.plan.worker_panic_rate)
    }

    /// Picks the fate of one outgoing response line of `line_len`
    /// bytes. Classes are rolled in a fixed order (drop, truncate,
    /// delay) with one draw each.
    pub fn response_action(&mut self, line_len: usize) -> ResponseAction {
        let drop_conn = self.roll(self.plan.drop_connection_rate);
        let truncate = self.roll(self.plan.truncate_response_rate);
        let delay = self.roll(self.plan.delay_response_rate);
        if drop_conn {
            ResponseAction::Drop
        } else if truncate {
            ResponseAction::Truncate(self.rng.gen_range(0..line_len.max(1)))
        } else if delay {
            ResponseAction::Delay(self.plan.delay_ms)
        } else {
            ResponseAction::Normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inactive_and_valid() {
        let plan = ChaosPlan::none(1);
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn presets_are_valid_and_active() {
        for plan in [ChaosPlan::light(3), ChaosPlan::heavy(3)] {
            assert!(plan.is_active());
            assert!(plan.validate().is_ok());
        }
    }

    #[test]
    fn parse_presets_seeds_and_keys() {
        assert_eq!(ChaosPlan::parse("light", 7).unwrap(), ChaosPlan::light(7));
        assert_eq!(
            ChaosPlan::parse("heavy@42", 7).unwrap(),
            ChaosPlan::heavy(42)
        );
        let plan = ChaosPlan::parse("torn_write_rate=0.5,seed=11,delay_ms=9", 7).unwrap();
        assert_eq!(plan.seed, 11);
        assert_eq!(plan.torn_write_rate, 0.5);
        assert_eq!(plan.delay_ms, 9);
        assert!(ChaosPlan::parse("bogus@1", 7).is_err());
        assert!(ChaosPlan::parse("bogus_key=1", 7).is_err());
        assert!(ChaosPlan::parse("torn_write_rate=2.0", 7).is_err());
        assert!(ChaosPlan::parse("torn_write_rate", 7).is_err());
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = ChaosPlan::heavy(99);
        let mut a = ChaosInjector::new(plan.clone());
        let mut b = ChaosInjector::new(plan);
        let mut fired = 0u64;
        for _ in 0..10_000 {
            assert_eq!(a.torn_write(100), b.torn_write(100));
            assert_eq!(a.disk_full(), b.disk_full());
            assert_eq!(a.worker_panic(), b.worker_panic());
            let act = a.response_action(80);
            assert_eq!(act, b.response_action(80));
            if act != ResponseAction::Normal {
                fired += 1;
            }
        }
        assert!(fired > 0, "heavy plan injected nothing");
    }

    #[test]
    fn zero_rate_classes_never_fire() {
        let mut inj = ChaosInjector::new(ChaosPlan::none(5));
        for _ in 0..10_000 {
            assert!(inj.torn_write(100).is_none());
            assert!(!inj.disk_full());
            assert!(!inj.worker_panic());
            assert_eq!(inj.response_action(80), ResponseAction::Normal);
        }
    }
}
