//! `schedtaskd`: a long-running simulation-job server.
//!
//! The serve layer turns one-shot `repro` invocations into a service
//! shaped like a production scheduler front-end:
//!
//! - **Protocol** — JSON lines over TCP or a Unix socket; see
//!   [`schedtask_experiments::serve_api`] for the request/response
//!   vocabulary and the client.
//! - **Admission** — a bounded [`queue::JobQueue`]; when full,
//!   submissions are rejected with a `retry_after_ms` backpressure
//!   response instead of queueing unboundedly.
//! - **Batching** — the dispatcher drains runs of cost-compatible
//!   requests (same core count and instruction budget) and executes
//!   each batch on the `scoped_pool` worker fleet.
//! - **Caching** — a content-addressed [`cache::ResultCache`] keyed by
//!   the canonical hash of the full job spec. The engine is
//!   deterministic, so a hit replays byte-identical canonical
//!   `SimStats` JSON and JSONL event text. Identical in-flight
//!   submissions coalesce onto one execution.
//! - **Observability** — hits/misses, queue depth, rejections, batch
//!   sizes, and per-job latency spans all flow through `schedtask-obs`
//!   counters and the `--profile` tables.
//! - **Durability** — with `--cache-dir`, every result is also appended
//!   to a crash-safe [`disk::DiskCache`] segment log; restart recovery
//!   truncates torn tails, quarantines corrupt records, and serves
//!   everything that survived as byte-identical cache hits.
//! - **Chaos** — a seed-driven [`chaos::ChaosPlan`] can tear disk
//!   writes, panic workers, and mangle responses deterministically, so
//!   tests assert recovery invariants instead of getting lucky.
//! - **Fleet** — `schedtaskd --router` consistent-hashes job keys
//!   across downstream workers via [`router::Router`], layering a
//!   router-side single-flight hot-key cache above each worker's
//!   memory/disk tiers and propagating honest backpressure upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod chaos;
pub mod disk;
pub mod queue;
pub mod router;
pub mod server;

pub use cache::{JobOutput, Lookup, ResultCache};
pub use chaos::{ChaosInjector, ChaosPlan, ResponseAction};
pub use disk::{crc32, DiskCache, DiskRecord, RecoveryReport};
pub use queue::{Backpressure, JobQueue, QueuedJob, SubmitError};
pub use router::{Router, RouterConfig};
pub use server::{ServeConfig, Server};
