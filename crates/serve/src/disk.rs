//! Crash-safe persistent cache tier: an append-only segment log.
//!
//! Every successful job execution is appended to the current segment
//! under `--cache-dir` as one length-framed, CRC-checked record, then
//! flushed with `sync_data` before the response leaves the server. On
//! startup, [`DiskCache::open`] replays every segment to rebuild the
//! in-memory index, truncating a torn tail (a record cut short by a
//! crash mid-write) and quarantining any record whose CRC does not
//! match its payload — corrupt bytes are counted and preserved in
//! `quarantine.log` for forensics, but **never served**.
//!
//! # Record format
//!
//! All integers little-endian:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! payload = [u64 key][u32 stats_len][stats_json][u32 jsonl_len][jsonl]
//! ```
//!
//! Segments are named `segment-NNNNN.log` and rotated at
//! [`SEGMENT_ROTATE_BYTES`]; recovery replays them in name order, so a
//! later record for the same key wins (there is at most one writer, so
//! duplicates only arise from a retry racing a crash — both carry the
//! same bytes anyway, because the engine is deterministic).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Rotate to a fresh segment once the current one exceeds this size.
pub const SEGMENT_ROTATE_BYTES: u64 = 8 * 1024 * 1024;

/// Upper bound on a single record's payload; anything larger in a
/// segment header is treated as tail corruption and truncated.
pub const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

const HEADER_BYTES: usize = 8;
/// Minimum payload: key (8) + two length prefixes (4 + 4).
const MIN_PAYLOAD_BYTES: usize = 16;

const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One durable cache record, as recovered from (or written to) disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskRecord {
    /// Canonical `SimStats` JSON, byte-identical to the original run.
    pub stats_json: String,
    /// Labelled JSONL event text captured during the original run.
    pub jsonl: String,
}

/// What [`DiskCache::open`] found while replaying the segment log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid records replayed into the index.
    pub records: u64,
    /// Records with intact framing but a CRC mismatch — quarantined.
    pub corrupt: u64,
    /// Segments whose tail was truncated at a torn record.
    pub truncated_tails: u64,
    /// Segment files scanned.
    pub segments: u64,
}

#[derive(Debug)]
struct SegmentWriter {
    file: File,
    path: PathBuf,
    written: u64,
    seq: u32,
}

#[derive(Debug)]
struct DiskInner {
    index: HashMap<u64, DiskRecord>,
    writer: Option<SegmentWriter>,
    next_seq: u32,
}

/// The persistent tier: an on-disk segment log plus the in-memory
/// index rebuilt from it at startup.
///
/// All methods take `&self`; the single internal lock covers both the
/// index and the active segment writer, so appends are serialized and
/// a probe never observes a half-written index entry.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    inner: Mutex<DiskInner>,
}

fn segment_path(dir: &Path, seq: u32) -> PathBuf {
    dir.join(format!("segment-{seq:05}.log"))
}

fn encode_record(key: u64, stats_json: &str, jsonl: &str) -> Vec<u8> {
    let payload_len = MIN_PAYLOAD_BYTES + stats_json.len() + jsonl.len();
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload_len);
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]); // CRC backfilled below.
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(&(stats_json.len() as u32).to_le_bytes());
    buf.extend_from_slice(stats_json.as_bytes());
    buf.extend_from_slice(&(jsonl.len() as u32).to_le_bytes());
    buf.extend_from_slice(jsonl.as_bytes());
    let crc = crc32(&buf[HEADER_BYTES..]);
    buf[4..8].copy_from_slice(&crc.to_le_bytes());
    buf
}

fn decode_payload(payload: &[u8]) -> Option<(u64, DiskRecord)> {
    if payload.len() < MIN_PAYLOAD_BYTES {
        return None;
    }
    let key = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let stats_len = u32::from_le_bytes(payload[8..12].try_into().ok()?) as usize;
    let stats_end = 12usize.checked_add(stats_len)?;
    if stats_end + 4 > payload.len() {
        return None;
    }
    let stats_json = std::str::from_utf8(&payload[12..stats_end]).ok()?;
    let jsonl_len = u32::from_le_bytes(payload[stats_end..stats_end + 4].try_into().ok()?) as usize;
    let jsonl_end = (stats_end + 4).checked_add(jsonl_len)?;
    if jsonl_end != payload.len() {
        return None;
    }
    let jsonl = std::str::from_utf8(&payload[stats_end + 4..jsonl_end]).ok()?;
    Some((
        key,
        DiskRecord {
            stats_json: stats_json.to_owned(),
            jsonl: jsonl.to_owned(),
        },
    ))
}

impl DiskCache {
    /// Opens (creating if needed) the cache directory, replays every
    /// segment to rebuild the index, and reports what recovery found.
    ///
    /// Recovery is idempotent: torn tails are physically truncated, so
    /// a second open of the same directory reports zero repairs.
    pub fn open(dir: &Path) -> io::Result<(DiskCache, RecoveryReport)> {
        std::fs::create_dir_all(dir)?;
        let mut segments: Vec<(u32, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = name
                .strip_prefix("segment-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u32>().ok())
            {
                segments.push((seq, entry.path()));
            }
        }
        segments.sort_by_key(|(seq, _)| *seq);

        let mut report = RecoveryReport::default();
        let mut index = HashMap::new();
        let mut quarantined: Vec<u8> = Vec::new();
        for (_, path) in &segments {
            report.segments += 1;
            Self::replay_segment(path, &mut index, &mut report, &mut quarantined)?;
        }
        if !quarantined.is_empty() {
            let mut qfile = OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("quarantine.log"))?;
            qfile.write_all(&quarantined)?;
            qfile.sync_data()?;
        }
        report.records = index.len() as u64;
        let next_seq = segments.last().map_or(0, |(seq, _)| seq + 1);
        Ok((
            DiskCache {
                dir: dir.to_path_buf(),
                inner: Mutex::new(DiskInner {
                    index,
                    writer: None,
                    next_seq,
                }),
            },
            report,
        ))
    }

    fn replay_segment(
        path: &Path,
        index: &mut HashMap<u64, DiskRecord>,
        report: &mut RecoveryReport,
        quarantined: &mut Vec<u8>,
    ) -> io::Result<()> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        let mut off = 0usize;
        let mut truncate_at: Option<usize> = None;
        while off < buf.len() {
            let remaining = buf.len() - off;
            if remaining < HEADER_BYTES {
                truncate_at = Some(off);
                break;
            }
            let len = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4-byte slice"));
            let crc = u32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("4-byte slice"));
            if len > MAX_RECORD_BYTES || (len as usize) > remaining - HEADER_BYTES {
                // Implausible or cut-short record: everything from here
                // on is a torn tail.
                truncate_at = Some(off);
                break;
            }
            let body = &buf[off + HEADER_BYTES..off + HEADER_BYTES + len as usize];
            let record_end = off + HEADER_BYTES + len as usize;
            if crc32(body) != crc {
                report.corrupt += 1;
                quarantined.extend_from_slice(&buf[off..record_end]);
            } else if let Some((key, record)) = decode_payload(body) {
                index.insert(key, record);
            } else {
                // Framing and CRC agree but the payload structure is
                // nonsense — quarantine rather than guess.
                report.corrupt += 1;
                quarantined.extend_from_slice(&buf[off..record_end]);
            }
            off = record_end;
        }
        if let Some(cut) = truncate_at {
            report.truncated_tails += 1;
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(cut as u64)?;
            file.sync_data()?;
        }
        Ok(())
    }

    /// Number of records in the index.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("disk cache poisoned").index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probes the index for `key`.
    pub fn get(&self, key: u64) -> Option<DiskRecord> {
        self.inner
            .lock()
            .expect("disk cache poisoned")
            .index
            .get(&key)
            .cloned()
    }

    /// Appends one record, fsyncs it, and indexes it. Returns the
    /// number of bytes written to the segment log.
    pub fn append(&self, key: u64, stats_json: &str, jsonl: &str) -> io::Result<u64> {
        let encoded = encode_record(key, stats_json, jsonl);
        let mut inner = self.inner.lock().expect("disk cache poisoned");
        let writer = Self::writer_for(&self.dir, &mut inner, encoded.len() as u64)?;
        writer.file.write_all(&encoded)?;
        writer.file.sync_data()?;
        writer.written += encoded.len() as u64;
        inner.index.insert(
            key,
            DiskRecord {
                stats_json: stats_json.to_owned(),
                jsonl: jsonl.to_owned(),
            },
        );
        Ok(encoded.len() as u64)
    }

    /// Chaos hook: writes only the first `keep_bytes` bytes of the
    /// record (simulating a crash mid-append), does **not** index it,
    /// and rotates to a fresh segment so later appends land after the
    /// torn tail exactly as they would after a real crash and restart.
    pub fn append_torn(
        &self,
        key: u64,
        stats_json: &str,
        jsonl: &str,
        keep_bytes: usize,
    ) -> io::Result<u64> {
        let encoded = encode_record(key, stats_json, jsonl);
        let cut = keep_bytes.min(encoded.len().saturating_sub(1)).max(1);
        let mut inner = self.inner.lock().expect("disk cache poisoned");
        let writer = Self::writer_for(&self.dir, &mut inner, cut as u64)?;
        writer.file.write_all(&encoded[..cut])?;
        writer.file.sync_data()?;
        // Force rotation: the torn bytes must stay a *tail*.
        inner.writer = None;
        Ok(cut as u64)
    }

    fn writer_for<'a>(
        dir: &Path,
        inner: &'a mut DiskInner,
        incoming: u64,
    ) -> io::Result<&'a mut SegmentWriter> {
        let rotate = inner
            .writer
            .as_ref()
            .is_some_and(|w| w.written + incoming > SEGMENT_ROTATE_BYTES && w.written > 0);
        if rotate {
            inner.writer = None;
        }
        if inner.writer.is_none() {
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let path = segment_path(dir, seq);
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            inner.writer = Some(SegmentWriter {
                file,
                path,
                written: 0,
                seq,
            });
        }
        Ok(inner.writer.as_mut().expect("writer just ensured"))
    }

    /// Path of the active segment (opens one if none is active yet);
    /// exposed for tests that corrupt the log in place.
    pub fn active_segment_path(&self) -> io::Result<PathBuf> {
        let mut inner = self.inner.lock().expect("disk cache poisoned");
        let writer = Self::writer_for(&self.dir, &mut inner, 0)?;
        Ok(writer.path.clone())
    }

    /// Sequence number the next rotated segment will use.
    pub fn next_segment_seq(&self) -> u32 {
        let inner = self.inner.lock().expect("disk cache poisoned");
        inner.writer.as_ref().map_or(inner.next_seq, |w| w.seq + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("schedtask-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_append_reopen() {
        let dir = tmp_dir("roundtrip");
        {
            let (cache, report) = DiskCache::open(&dir).expect("open");
            assert_eq!(report, RecoveryReport::default());
            cache.append(7, "{\"a\":1}", "line1\n").expect("append");
            cache.append(9, "{\"b\":2}", "").expect("append");
        }
        let (cache, report) = DiskCache::open(&dir).expect("reopen");
        assert_eq!(report.records, 2);
        assert_eq!(report.corrupt, 0);
        assert_eq!(report.truncated_tails, 0);
        let rec = cache.get(7).expect("key 7 recovered");
        assert_eq!(rec.stats_json, "{\"a\":1}");
        assert_eq!(rec.jsonl, "line1\n");
        assert!(cache.get(42).is_none());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_tail_is_truncated_and_prior_records_survive() {
        let dir = tmp_dir("torn");
        {
            let (cache, _) = DiskCache::open(&dir).expect("open");
            cache.append(1, "{\"ok\":1}", "x\n").expect("append");
            cache
                .append_torn(2, "{\"torn\":1}", "never\n", 5)
                .expect("torn append");
        }
        let (cache, report) = DiskCache::open(&dir).expect("recover");
        assert_eq!(report.records, 1);
        assert_eq!(report.truncated_tails, 1);
        assert_eq!(cache.get(1).expect("survives").stats_json, "{\"ok\":1}");
        assert!(cache.get(2).is_none(), "torn record must not be served");
        // Recovery is idempotent: the tail was physically truncated.
        drop(cache);
        let (_, report) = DiskCache::open(&dir).expect("recover again");
        assert_eq!(report.truncated_tails, 0);
        assert_eq!(report.records, 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_record_is_quarantined_not_served() {
        let dir = tmp_dir("corrupt");
        let seg = {
            let (cache, _) = DiskCache::open(&dir).expect("open");
            cache.append(1, "{\"first\":1}", "").expect("append");
            cache.append(2, "{\"second\":2}", "").expect("append");
            cache.active_segment_path().expect("segment path")
        };
        // Flip one byte inside the first record's payload.
        let mut bytes = std::fs::read(&seg).expect("read segment");
        bytes[HEADER_BYTES + 2] ^= 0xFF;
        std::fs::write(&seg, &bytes).expect("write corrupted");
        let (cache, report) = DiskCache::open(&dir).expect("recover");
        assert_eq!(report.corrupt, 1);
        assert_eq!(report.records, 1);
        assert!(cache.get(1).is_none(), "corrupt bytes must never be served");
        assert_eq!(
            cache.get(2).expect("intact record").stats_json,
            "{\"second\":2}"
        );
        assert!(
            dir.join("quarantine.log").exists(),
            "corrupt bytes preserved for forensics"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn later_record_wins_for_duplicate_key() {
        let dir = tmp_dir("dup");
        {
            let (cache, _) = DiskCache::open(&dir).expect("open");
            cache.append(5, "{\"v\":1}", "").expect("append");
            cache.append(5, "{\"v\":2}", "").expect("append");
        }
        let (cache, report) = DiskCache::open(&dir).expect("recover");
        assert_eq!(report.records, 1);
        assert_eq!(cache.get(5).expect("present").stats_json, "{\"v\":2}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn appends_after_torn_write_land_in_new_segment() {
        let dir = tmp_dir("rotate");
        {
            let (cache, _) = DiskCache::open(&dir).expect("open");
            cache.append_torn(1, "{\"t\":1}", "", 3).expect("torn");
            cache.append(2, "{\"ok\":2}", "").expect("append");
        }
        let (cache, report) = DiskCache::open(&dir).expect("recover");
        assert_eq!(report.segments, 2);
        assert_eq!(report.truncated_tails, 1);
        assert_eq!(cache.get(2).expect("present").stats_json, "{\"ok\":2}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
