//! The fleet router: consistent-hash request routing across downstream
//! `schedtaskd` workers, with a router-side hot-key cache tier.
//!
//! SchedTask's core argument — route for instruction-footprint
//! locality, steal/shed for load — applied one level up. Jobs are
//! routed by their canonical cache key over a consistent-hash ring
//! (virtual nodes per worker), so each key has a stable owner and each
//! worker's memory/disk cache tiers stay hot for their shard of the key
//! space. Above the per-worker tiers sits a router-level
//! [`ResultCache`] reused as a single-flight hot-key cache: duplicate
//! submissions for one key execute once fleet-wide — concurrent
//! duplicates coalesce at the router before a second forward ever
//! happens, and later duplicates replay the router-cached bytes without
//! touching a worker.
//!
//! Failure handling preserves the honest-backpressure discipline of the
//! single server: a worker's `rejected` response is propagated verbatim
//! (its `retry_after_ms` hint intact), and a transport failure fails
//! over to the next distinct worker on the ring (counted as
//! `serve_router_failovers`) before giving up with a transient
//! `unreachable` error that retrying clients know to back off on.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use schedtask_experiments::serve_api::{
    escape_json, fnv1a64, parse_request, ClientTimeouts, Endpoint, Json, RequestOp, Response,
    ServeClient, PROTOCOL_VERSION,
};
use schedtask_kernel::SimStats;
use schedtask_obs::{Aggregator, Counter, CounterSnapshot, ObsEvent, Observer, SpanKind};

use crate::cache::{JobOutput, Lookup, ResultCache};

/// Virtual nodes per worker on the hash ring. Enough that adding or
/// removing one worker moves ~1/N of the key space and shard sizes stay
/// within a few percent of each other.
pub const RING_REPLICAS: usize = 100;

/// Tunables for one router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Downstream worker endpoints, in ring-index order.
    pub workers: Vec<Endpoint>,
    /// Virtual nodes per worker on the consistent-hash ring.
    pub replicas: usize,
    /// Socket timeouts for worker connections.
    pub timeouts: ClientTimeouts,
}

impl RouterConfig {
    /// A router over `workers` with default ring and timeout tuning.
    pub fn new(workers: Vec<Endpoint>) -> Self {
        RouterConfig {
            workers,
            replicas: RING_REPLICAS,
            timeouts: ClientTimeouts::default(),
        }
    }
}

/// Builds the consistent-hash ring: `replicas` points per worker, each
/// at the FNV-1a hash of `"{endpoint}#{replica}"`, sorted by point.
pub fn build_ring(workers: &[Endpoint], replicas: usize) -> Vec<(u64, usize)> {
    let mut ring = Vec::with_capacity(workers.len() * replicas);
    for (index, worker) in workers.iter().enumerate() {
        for replica in 0..replicas {
            let point = fnv1a64(format!("{worker}#{replica}").as_bytes());
            ring.push((point, index));
        }
    }
    ring.sort_unstable();
    ring
}

/// The worker owning `key`: the first ring point at or after the
/// rehashed key, wrapping at the top of the ring.
///
/// The key is itself an FNV-1a hash of the job's canonical text, but
/// rehashing its bytes decorrelates ring position from the original
/// hash structure, which keeps shards balanced.
pub fn route(ring: &[(u64, usize)], key: u64) -> usize {
    assert!(!ring.is_empty(), "cannot route on an empty ring");
    let h = fnv1a64(&key.to_le_bytes());
    let idx = ring.partition_point(|&(point, _)| point < h);
    ring[idx % ring.len()].1
}

/// The failover order for `key`: the owning worker, then each next
/// distinct worker walking clockwise around the ring.
pub fn route_candidates(ring: &[(u64, usize)], key: u64, worker_count: usize) -> Vec<usize> {
    assert!(!ring.is_empty(), "cannot route on an empty ring");
    let h = fnv1a64(&key.to_le_bytes());
    let start = ring.partition_point(|&(point, _)| point < h);
    let mut order = Vec::with_capacity(worker_count);
    for offset in 0..ring.len() {
        let worker = ring[(start + offset) % ring.len()].1;
        if !order.contains(&worker) {
            order.push(worker);
            if order.len() == worker_count {
                break;
            }
        }
    }
    order
}

/// The router core. Transport-agnostic like [`crate::Server`]: hand it
/// request lines from any number of connection threads.
pub struct Router {
    cfg: RouterConfig,
    ring: Vec<(u64, usize)>,
    /// Idle pooled connections per worker; forwards check one out and
    /// return it on success, so steady-state traffic re-uses sockets.
    pools: Vec<Mutex<Vec<ServeClient>>>,
    hot: ResultCache,
    agg: Aggregator,
    started: Instant,
    hop_ticket: AtomicU32,
}

impl Router {
    /// Connects to every worker, refusing to start unless each one
    /// answers `ping` with this build's protocol version.
    pub fn new(cfg: RouterConfig) -> Result<Router, String> {
        if cfg.workers.is_empty() {
            return Err("router needs at least one --worker endpoint".to_owned());
        }
        let mut pools = Vec::with_capacity(cfg.workers.len());
        for worker in &cfg.workers {
            let mut client = ServeClient::dial(worker, &cfg.timeouts)
                .map_err(|e| format!("cannot reach worker {worker}: {e}"))?;
            match client.ping_proto() {
                Ok(Some(proto)) if proto == PROTOCOL_VERSION => {}
                Ok(Some(proto)) => {
                    return Err(format!(
                        "worker {worker} speaks protocol v{proto}, \
                         this router speaks v{PROTOCOL_VERSION}; refusing to join"
                    ));
                }
                Ok(None) => {
                    return Err(format!(
                        "worker {worker} did not answer ping with a protocol version"
                    ));
                }
                Err(e) => return Err(format!("worker {worker} ping failed: {e}")),
            }
            pools.push(Mutex::new(vec![client]));
        }
        let ring = build_ring(&cfg.workers, cfg.replicas);
        Ok(Router {
            cfg,
            ring,
            pools,
            hot: ResultCache::new(),
            agg: Aggregator::new(),
            started: Instant::now(),
            hop_ticket: AtomicU32::new(0),
        })
    }

    /// Number of downstream workers.
    pub fn worker_count(&self) -> usize {
        self.cfg.workers.len()
    }

    /// Snapshot of the router's own counters.
    pub fn counters(&self) -> CounterSnapshot {
        self.agg.counters()
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Handles one request line; returns the response line and whether
    /// the connection should close (shutdown acknowledged).
    pub fn handle_request_line(&self, line: &str) -> (String, bool) {
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(err) => {
                let resp = Response::Error {
                    id: None,
                    code: err.code().map(str::to_owned),
                    error: err.to_string(),
                };
                return (resp.render(), false);
            }
        };
        match req.op {
            RequestOp::Ping => (
                Response::Pong {
                    id: req.id,
                    proto: PROTOCOL_VERSION,
                }
                .render(),
                false,
            ),
            RequestOp::Stats => (self.stats_response(&req.id), false),
            RequestOp::Shutdown => (Response::ShuttingDown { id: req.id }.render(), true),
            RequestOp::Run(spec, want_obs) => (self.handle_run(&spec, want_obs, &req.id), false),
        }
    }

    /// Routes one run request through the hot-key tier and the ring.
    fn handle_run(
        &self,
        spec: &schedtask_experiments::JobSpec,
        want_obs: bool,
        id: &Option<String>,
    ) -> String {
        let key = spec.cache_key();
        let started = Instant::now();
        // The canonical re-encode of the parsed spec: what we forward.
        // Round-tripping through JobSpec means the worker sees exactly
        // the bytes the cache key was derived from.
        let forward_line = spec.to_request_line(id.as_deref(), want_obs);

        // Requests that ask for the JSONL event stream bypass the hot
        // tier: the router caches only result bytes (obs streams are
        // large and rarely replayed), and the worker's own cache still
        // replays the jsonl byte-identically.
        if want_obs {
            return self.forward_with_failover(key, &forward_line, id);
        }

        match self.hot.lookup_or_claim(key) {
            Lookup::Hit(out) => {
                self.agg.event(&ObsEvent::RouterHotCacheHit {
                    at: self.now_ms(),
                    key,
                });
                Response::Ok {
                    id: id.clone(),
                    cached: true,
                    coalesced: false,
                    key: out.key.clone(),
                    queue_depth: 0,
                    latency_us: started.elapsed().as_micros() as u64,
                    result: out.stats_json.clone(),
                    jsonl: None,
                }
                .render()
            }
            Lookup::InFlight(slot) => {
                self.agg.event(&ObsEvent::RouterCoalesced {
                    at: self.now_ms(),
                    key,
                });
                match slot.wait() {
                    Ok(out) => Response::Ok {
                        id: id.clone(),
                        cached: false,
                        coalesced: true,
                        key: out.key.clone(),
                        queue_depth: 0,
                        latency_us: started.elapsed().as_micros() as u64,
                        result: out.stats_json.clone(),
                        jsonl: None,
                    }
                    .render(),
                    Err(error) => Response::Error {
                        id: id.clone(),
                        code: None,
                        error,
                    }
                    .render(),
                }
            }
            Lookup::Claimed(slot) => {
                let response = self.forward_with_failover(key, &forward_line, id);
                // Publish into the hot tier only on a successful run;
                // rejections and errors fail the slot so coalesced
                // duplicates see the outcome and a retry re-forwards.
                match Response::parse(&response) {
                    Ok(Response::Ok {
                        key: hex, result, ..
                    }) => {
                        self.hot.fill(
                            &slot,
                            JobOutput {
                                key: hex,
                                stats: SimStats::default(),
                                stats_json: result,
                                jsonl: String::new(),
                            },
                        );
                    }
                    Ok(Response::Rejected { retry_after_ms, .. }) => {
                        self.hot.fail(
                            key,
                            &slot,
                            format!("worker shed the job; retry after {retry_after_ms} ms"),
                        );
                    }
                    Ok(Response::Error { error, .. }) => {
                        self.hot.fail(key, &slot, error);
                    }
                    _ => {
                        self.hot
                            .fail(key, &slot, "unparseable worker response".to_owned());
                    }
                }
                response
            }
        }
    }

    /// Forwards a request line to the key's owner, walking the ring's
    /// failover order on transport failures. Worker-level rejections
    /// and errors are final (propagated, not retried elsewhere): the
    /// job's owner is the source of truth for backpressure.
    fn forward_with_failover(&self, key: u64, line: &str, id: &Option<String>) -> String {
        let order = route_candidates(&self.ring, key, self.cfg.workers.len());
        let mut previous: Option<usize> = None;
        for worker in order {
            if let Some(from) = previous {
                self.agg.event(&ObsEvent::RouterFailover {
                    at: self.now_ms(),
                    key,
                    from: from as u32,
                    to: worker as u32,
                });
            }
            match self.forward_once(worker, key, line) {
                Ok(response) => {
                    if let Ok(json) = Json::parse(&response) {
                        if json.get("status").and_then(Json::as_str) == Some("rejected") {
                            let hint = json
                                .get("retry_after_ms")
                                .and_then(Json::as_u64)
                                .unwrap_or(0);
                            self.agg.event(&ObsEvent::RouterShed {
                                at: self.now_ms(),
                                worker: worker as u32,
                                retry_after_ms: hint,
                            });
                        }
                    }
                    return response;
                }
                Err(_) => {
                    previous = Some(worker);
                }
            }
        }
        Response::Error {
            id: id.clone(),
            code: None,
            error: "all workers unreachable".to_owned(),
        }
        .render()
    }

    /// One forward attempt against one worker: check out (or dial) a
    /// connection, send, and return the connection to the pool on
    /// success. A send failure retries once on a fresh dial before
    /// reporting the worker down.
    fn forward_once(&self, worker: usize, key: u64, line: &str) -> Result<String, String> {
        let slot = self.hop_ticket.fetch_add(1, Ordering::Relaxed);
        self.agg
            .span_enter(Some(slot), SpanKind::RouterHop, self.now_us());
        let result = self.forward_on_conn(worker, line);
        self.agg
            .span_exit(Some(slot), SpanKind::RouterHop, self.now_us());
        if result.is_ok() {
            self.agg.event(&ObsEvent::RouterForwarded {
                at: self.now_ms(),
                key,
                worker: worker as u32,
            });
        }
        result
    }

    fn forward_on_conn(&self, worker: usize, line: &str) -> Result<String, String> {
        let pooled = {
            let mut pool = self.pools[worker].lock().unwrap_or_else(|e| e.into_inner());
            pool.pop()
        };
        if let Some(mut client) = pooled {
            if let Ok(response) = client.request_line(line) {
                self.return_conn(worker, client);
                return Ok(response);
            }
            // Pooled socket went stale (worker restarted, idle drop):
            // fall through to a fresh dial before declaring it down.
        }
        let endpoint = &self.cfg.workers[worker];
        let mut client = ServeClient::dial(endpoint, &self.cfg.timeouts)
            .map_err(|e| format!("dial {endpoint}: {e}"))?;
        let response = client
            .request_line(line)
            .map_err(|e| format!("request to {endpoint}: {e}"))?;
        self.return_conn(worker, client);
        Ok(response)
    }

    fn return_conn(&self, worker: usize, client: ServeClient) {
        let mut pool = self.pools[worker].lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < 8 {
            pool.push(client);
        }
    }

    /// The router's stats line: its own counters plus every worker's
    /// counters summed, so a fleet-wide execute-once assertion needs
    /// only this one response.
    fn stats_response(&self, id: &Option<String>) -> String {
        let mut worker_sums: Vec<(String, u64)> = Vec::new();
        let mut reachable = 0usize;
        for worker in 0..self.cfg.workers.len() {
            let Ok(line) = self.forward_on_conn(worker, "{\"v\":1,\"op\":\"stats\"}") else {
                continue;
            };
            let Ok(json) = Json::parse(&line) else {
                continue;
            };
            reachable += 1;
            if let Some(Json::Obj(fields)) = json.get("counters") {
                for (name, value) in fields {
                    let Some(v) = value.as_u64() else { continue };
                    match worker_sums.iter_mut().find(|(n, _)| n == name) {
                        Some((_, total)) => *total += v,
                        None => worker_sums.push((name.clone(), v)),
                    }
                }
            }
        }
        let id_field = match id {
            Some(id) => format!("\"id\":\"{}\",", escape_json(id)),
            None => String::new(),
        };
        let mut own = String::from("{");
        let snap = self.agg.counters();
        let mut first = true;
        for (c, v) in snap.iter().filter(|&(_, v)| v > 0) {
            if !first {
                own.push(',');
            }
            first = false;
            own.push_str(&format!("\"{}\":{v}", c.name()));
        }
        own.push('}');
        let mut workers = String::from("{");
        let mut first = true;
        for (name, v) in &worker_sums {
            if !first {
                workers.push(',');
            }
            first = false;
            workers.push_str(&format!("\"{name}\":{v}"));
        }
        workers.push('}');
        format!(
            "{{\"v\":{PROTOCOL_VERSION},{id_field}\"status\":\"ok\",\"router\":true,\
             \"workers\":{},\"workers_reachable\":{reachable},\
             \"hot_entries\":{},\"counters\":{own},\"worker_counters\":{workers}}}",
            self.cfg.workers.len(),
            self.hot.entries()
        )
    }

    /// The `--profile` shutdown table: the router's non-zero counters.
    pub fn profile_text(&self) -> String {
        let snap = self.agg.counters();
        let mut out = String::new();
        for (c, v) in snap.iter().filter(|&(_, v)| v > 0) {
            out.push_str(&format!("{}={v}\n", c.name()));
        }
        out
    }

    /// Lifetime count of one router counter (test hook).
    pub fn counter(&self, c: Counter) -> u64 {
        self.agg.counters().get(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoints(n: usize) -> Vec<Endpoint> {
        (0..n)
            .map(|i| Endpoint::Tcp(format!("10.0.0.{i}:7000")))
            .collect()
    }

    #[test]
    fn ring_is_sorted_and_covers_all_workers() {
        let ring = build_ring(&endpoints(4), RING_REPLICAS);
        assert_eq!(ring.len(), 4 * RING_REPLICAS);
        assert!(ring.windows(2).all(|w| w[0].0 <= w[1].0));
        for worker in 0..4 {
            assert!(ring.iter().any(|&(_, w)| w == worker));
        }
    }

    #[test]
    fn routing_is_deterministic_and_balanced() {
        let ring = build_ring(&endpoints(4), RING_REPLICAS);
        let mut counts = [0usize; 4];
        for key in 0..10_000u64 {
            let w = route(&ring, key);
            assert_eq!(w, route(&ring, key), "routing must be stable");
            counts[w] += 1;
        }
        // With 100 vnodes/worker, shards stay within a loose 2x band.
        for &c in &counts {
            assert!(c > 1_000, "shard too small: {counts:?}");
            assert!(c < 5_000, "shard too large: {counts:?}");
        }
    }

    #[test]
    fn adding_a_worker_moves_about_one_nth_of_keys() {
        const KEYS: u64 = 10_000;
        let before = build_ring(&endpoints(4), RING_REPLICAS);
        let after = build_ring(&endpoints(5), RING_REPLICAS);
        let moved = (0..KEYS)
            .filter(|&key| route(&before, key) != route(&after, key))
            .count();
        // Ideal is KEYS/5 = 2000: only the keys claimed by the new
        // worker move. Allow generous tolerance for hash variance, but
        // a naive `key % n` scheme would move ~80% and fail this.
        let frac = moved as f64 / KEYS as f64;
        assert!(
            frac > 0.10 && frac < 0.35,
            "moved fraction {frac:.3} outside consistent-hash band (moved {moved})"
        );
    }

    #[test]
    fn candidates_start_at_owner_and_cover_everyone_once() {
        let ring = build_ring(&endpoints(4), RING_REPLICAS);
        for key in [0u64, 1, 42, u64::MAX] {
            let order = route_candidates(&ring, key, 4);
            assert_eq!(order[0], route(&ring, key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "each worker appears exactly once");
        }
    }

    #[test]
    fn router_refuses_an_empty_worker_list() {
        let err = match Router::new(RouterConfig::new(Vec::new())) {
            Ok(_) => panic!("empty worker list must be refused"),
            Err(err) => err,
        };
        assert!(err.contains("at least one"));
    }
}
