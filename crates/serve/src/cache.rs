//! Content-addressed result cache with single-flight execution.
//!
//! Keys are the canonical FNV-1a hash of a
//! [`JobSpec`](schedtask_experiments::JobSpec). Each key maps to a
//! [`Slot`] holding the job's lifecycle: `Pending` while exactly one
//! execution is in flight, then `Ready` with the immutable output every
//! later submitter replays. Failed executions are evicted so a retry
//! re-executes instead of replaying the error forever; only successes
//! are cached.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use schedtask_kernel::SimStats;

/// Everything one successful execution produced, cached immutably.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Canonical cache key, as the wire-format hex string.
    pub key: String,
    /// The raw statistics.
    pub stats: SimStats,
    /// `SimStats::to_canonical_json` of `stats` — the response payload,
    /// byte-identical on every replay.
    pub stats_json: String,
    /// The labelled JSONL event stream captured during the run.
    pub jsonl: String,
}

#[derive(Debug)]
enum SlotState {
    /// Execution in flight; waiters block on the condvar.
    Pending,
    /// Execution finished; the output is immutable from here on.
    Ready(Arc<JobOutput>),
    /// Execution failed (or was rejected at admission); waiters get the
    /// error, and the slot is evicted so a retry re-executes.
    Failed(String),
}

/// One cache entry's synchronization point.
#[derive(Debug)]
pub struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

/// Generous upper bound on how long a waiter will block on an in-flight
/// execution before giving up; standard-size runs finish in seconds.
const WAIT_LIMIT: Duration = Duration::from_secs(600);

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        })
    }

    /// Blocks until the in-flight execution resolves.
    pub fn wait(&self) -> Result<Arc<JobOutput>, String> {
        let mut state = self.state.lock().expect("cache slot poisoned");
        let mut waited = Duration::ZERO;
        loop {
            match &*state {
                SlotState::Ready(out) => return Ok(Arc::clone(out)),
                SlotState::Failed(err) => return Err(err.clone()),
                SlotState::Pending => {
                    if waited >= WAIT_LIMIT {
                        return Err("timed out waiting for in-flight job".to_owned());
                    }
                    let step = Duration::from_millis(200);
                    let (next, _) = self
                        .cv
                        .wait_timeout(state, step)
                        .expect("cache slot poisoned");
                    state = next;
                    waited += step;
                }
            }
        }
    }
}

/// Result of a cache probe.
#[derive(Debug)]
pub enum Lookup {
    /// The output is already cached; replay it.
    Hit(Arc<JobOutput>),
    /// An identical job is executing right now; wait on the slot.
    InFlight(Arc<Slot>),
    /// The caller claimed the key and must execute the job, then call
    /// [`ResultCache::fill`] or [`ResultCache::fail`] on this slot.
    Claimed(Arc<Slot>),
}

/// The content-addressed cache. Probing is a single small critical
/// section; execution and waiting happen outside the map lock.
#[derive(Debug, Default)]
pub struct ResultCache {
    slots: Mutex<HashMap<u64, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Probes `key`, atomically claiming it when absent so exactly one
    /// caller executes each distinct job.
    pub fn lookup_or_claim(&self, key: u64) -> Lookup {
        let mut slots = self.slots.lock().expect("cache map poisoned");
        if let Some(slot) = slots.get(&key) {
            let slot = Arc::clone(slot);
            drop(slots);
            let state = slot.state.lock().expect("cache slot poisoned");
            return match &*state {
                SlotState::Ready(out) => {
                    let out = Arc::clone(out);
                    drop(state);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Lookup::Hit(out)
                }
                // `Failed` slots are evicted under the map lock before
                // release, so a mapped slot is Ready or Pending.
                _ => {
                    drop(state);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    Lookup::InFlight(slot)
                }
            };
        }
        let slot = Slot::new();
        slots.insert(key, Arc::clone(&slot));
        drop(slots);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Lookup::Claimed(slot)
    }

    /// Publishes a successful execution: waiters wake with the output
    /// and the entry stays cached.
    pub fn fill(&self, slot: &Arc<Slot>, output: JobOutput) -> Arc<JobOutput> {
        let output = Arc::new(output);
        let mut state = slot.state.lock().expect("cache slot poisoned");
        *state = SlotState::Ready(Arc::clone(&output));
        drop(state);
        slot.cv.notify_all();
        output
    }

    /// Publishes a failed execution: waiters wake with the error and
    /// the key is evicted so a later retry re-executes.
    pub fn fail(&self, key: u64, slot: &Arc<Slot>, error: String) {
        // Evict first (map lock, then slot lock) so no new waiter can
        // coalesce onto a slot that is about to fail.
        let mut slots = self.slots.lock().expect("cache map poisoned");
        if slots
            .get(&key)
            .is_some_and(|mapped| Arc::ptr_eq(mapped, slot))
        {
            slots.remove(&key);
        }
        let mut state = slot.state.lock().expect("cache slot poisoned");
        *state = SlotState::Failed(error);
        drop(state);
        drop(slots);
        slot.cv.notify_all();
    }

    /// Number of cached (ready) results.
    pub fn entries(&self) -> usize {
        let slots = self.slots.lock().expect("cache map poisoned");
        slots
            .values()
            .filter(|slot| {
                matches!(
                    &*slot.state.lock().expect("cache slot poisoned"),
                    SlotState::Ready(_)
                )
            })
            .count()
    }

    /// Lifetime cache hits.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache misses (claims).
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime coalesced waits on in-flight executions.
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn output(key: u64) -> JobOutput {
        JobOutput {
            key: format!("{key:016x}"),
            stats: SimStats::default(),
            stats_json: format!("{{\"k\":{key}}}"),
            jsonl: String::new(),
        }
    }

    #[test]
    fn claim_fill_hit_replays_identical_output() {
        let cache = ResultCache::new();
        let slot = match cache.lookup_or_claim(7) {
            Lookup::Claimed(slot) => slot,
            other => panic!("expected claim, got {other:?}"),
        };
        cache.fill(&slot, output(7));
        for _ in 0..3 {
            match cache.lookup_or_claim(7) {
                Lookup::Hit(out) => assert_eq!(out.stats_json, "{\"k\":7}"),
                other => panic!("expected hit, got {other:?}"),
            }
        }
        assert_eq!(cache.miss_count(), 1);
        assert_eq!(cache.hit_count(), 3);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn failure_evicts_so_retry_reclaims() {
        let cache = ResultCache::new();
        let slot = match cache.lookup_or_claim(9) {
            Lookup::Claimed(slot) => slot,
            other => panic!("expected claim, got {other:?}"),
        };
        cache.fail(9, &slot, "boom".to_owned());
        assert_eq!(slot.wait().expect_err("failed slot"), "boom");
        match cache.lookup_or_claim(9) {
            Lookup::Claimed(_) => {}
            other => panic!("expected a fresh claim after failure, got {other:?}"),
        }
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn concurrent_submitters_single_flight() {
        let cache = Arc::new(ResultCache::new());
        let claims = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let claims = Arc::clone(&claims);
            handles.push(thread::spawn(move || -> String {
                match cache.lookup_or_claim(42) {
                    Lookup::Hit(out) => out.stats_json.clone(),
                    Lookup::InFlight(slot) => slot.wait().expect("fills").stats_json.clone(),
                    Lookup::Claimed(slot) => {
                        claims.fetch_add(1, Ordering::Relaxed);
                        // Simulate a slow execution so peers coalesce.
                        thread::sleep(Duration::from_millis(30));
                        cache.fill(&slot, output(42)).stats_json.clone()
                    }
                }
            }));
        }
        let results: Vec<String> = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        assert_eq!(claims.load(Ordering::Relaxed), 1, "exactly one execution");
        assert!(results.iter().all(|r| r == "{\"k\":42}"));
    }
}
