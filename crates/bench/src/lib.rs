//! Criterion benchmark harness for the SchedTask reproduction.
//!
//! One bench target per paper table/figure lives in `benches/`; this
//! library provides the shared reduced-size parameters so a full
//! `cargo bench` stays in the minutes range. Use the `repro` binary from
//! `schedtask-experiments` for full-size regeneration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use schedtask_experiments::ExpParams;

/// Reduced parameters shared by all Criterion benches: 8 cores, a small
/// instruction budget, short epochs.
pub fn bench_params() -> ExpParams {
    let mut p = ExpParams::quick();
    p.cores = 8;
    p.max_instructions = 1_200_000;
    p.warmup_instructions = 300_000;
    p
}

/// The benchmark subset used by per-figure benches (one IO-heavy, one
/// syscall-heavy, one app-heavy).
pub fn bench_kinds() -> Vec<schedtask_workload::BenchmarkKind> {
    use schedtask_workload::BenchmarkKind::*;
    vec![Find, MailSrvIo, Dss]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_are_reduced() {
        let p = bench_params();
        assert!(p.max_instructions <= 2_000_000);
        assert_eq!(p.cores, 8);
        assert_eq!(bench_kinds().len(), 3);
    }
}
