//! Micro-benchmarks of the substrate itself: cache lookups, heatmap
//! operations, walker throughput, and raw engine speed. These track the
//! simulator's own performance rather than a paper artefact.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use schedtask_kernel::{Engine, EngineConfig, GlobalFifoScheduler, WorkloadSpec};
use schedtask_sim::{CacheParams, PageHeatmap, SetAssocCache, SystemConfig};
use schedtask_workload::{BenchmarkKind, Footprint, FootprintWalker, PageAllocator, WalkParams};
use std::sync::Arc;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");
    g.bench_function("l1_lookup_hit", |b| {
        let mut cache = SetAssocCache::new(CacheParams::new(32 * 1024, 4, 64, 3));
        for line in 0..512 {
            cache.access(line);
        }
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 1) % 512;
            black_box(cache.access(line))
        });
    });
    g.bench_function("heatmap_insert_and_overlap", |b| {
        let mut a = PageHeatmap::new(512);
        let other = {
            let mut h = PageHeatmap::new(512);
            for p in 0..64 {
                h.insert_pfn(p);
            }
            h
        };
        let mut pfn = 0u64;
        b.iter(|| {
            pfn += 1;
            a.insert_pfn(pfn % 1024);
            black_box(a.overlap(&other))
        });
    });
    g.finish();
}

fn bench_walker(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");
    let mut alloc = PageAllocator::new();
    let code = Arc::new(Footprint::from_regions([&alloc.anonymous("code", 32)]));
    let data = Arc::new(Footprint::from_regions([&alloc.anonymous("data", 8)]));
    let mut w = FootprintWalker::new(code, data.clone(), data, WalkParams::default(), 7);
    g.bench_function("walker_next_block", |b| {
        b.iter(|| black_box(w.next_block()))
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");
    g.sample_size(10);
    g.bench_function("engine_500k_instructions", |b| {
        b.iter(|| {
            let cfg = EngineConfig::fast()
                .with_system(SystemConfig::table2().with_cores(4))
                .with_max_instructions(500_000);
            let mut engine = Engine::new(
                cfg,
                &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
                Box::new(GlobalFifoScheduler::new()),
            )
            .expect("engine builds");
            black_box(engine.run().expect("run succeeds").total_instructions())
        });
    });
    g.finish();
}

criterion_group!(micro, bench_cache, bench_walker, bench_engine);
criterion_main!(micro);
