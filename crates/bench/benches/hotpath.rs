//! Micro-benchmarks of the data-oriented hot-path structures: the flat
//! set-associative cache, the open-addressed TLB, the open-addressed
//! coherence directory, the calendar event queue, and an in-situ
//! replica of the engine's per-block execute loop. These are the
//! structures every simulated instruction flows through; `repro perf`
//! measures the same path end-to-end (see `BENCH_*.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use schedtask_kernel::BenchEventQueue;
use schedtask_sim::{
    CacheParams, CodeDomain, Directory, GshareBranchPredictor, MemorySystem, PageHeatmap,
    SetAssocCache, SystemConfig, Tlb,
};
use schedtask_workload::{Footprint, FootprintWalker, PageAllocator, WalkParams};
use std::sync::Arc;

/// A tiny deterministic stream generator (xorshift64*), so every bench
/// replays the same mixed access pattern.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The vendored criterion runs exactly `sample_size` iterations with no
/// warm-up phase, so ns-scale loops need a large sample to amortize
/// cold page faults on the structures' first touches.
const SAMPLES: usize = 200_000;

/// L1-shaped cache on a hit-heavy stream with occasional conflict misses
/// (the access mix `fetch_code` sees).
fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(SAMPLES);
    g.bench_function("cache_access_mixed", |b| {
        let mut cache = SetAssocCache::new(CacheParams::new(32 * 1024, 4, 64, 3));
        let mut s = Stream(0x1234_5678);
        b.iter(|| {
            // ~7/8 of accesses fall in a 128-line hot set, the rest roam.
            let r = s.next();
            let line = if r & 7 != 0 { r % 128 } else { r % 8192 };
            black_box(cache.access(line))
        });
    });
    g.finish();
}

/// 128-entry TLB on a page stream with strong locality (the iTLB/dTLB
/// mix): mostly repeats of a few hot pages, sporadic cold pages that
/// force the min-stamp eviction scan.
fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(SAMPLES);
    g.bench_function("tlb_access_hot", |b| {
        let mut tlb = Tlb::new(128);
        let mut s = Stream(0x9E37_79B9);
        b.iter(|| {
            let r = s.next();
            let page = if r & 15 != 0 { r % 8 } else { r % 4096 };
            black_box(tlb.access(page))
        });
    });
    g.finish();
}

/// Directory read/write/evict churn over a working set that exercises
/// probe chains and sharer-mask updates.
fn bench_directory(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(SAMPLES);
    g.bench_function("directory_rw_churn", |b| {
        let mut dir = Directory::new(32);
        let mut s = Stream(0xD1CE);
        b.iter(|| {
            let r = s.next();
            let line = r % 4096;
            let core = (r >> 32) as usize % 32;
            match r >> 62 {
                0 => {
                    black_box(dir.on_write(core, line));
                }
                3 => dir.on_evict(core, line),
                _ => {
                    black_box(dir.on_read(core, line));
                }
            }
        });
    });
    g.finish();
}

/// Calendar event queue under the engine's real traffic shape: mostly
/// near-future pushes (device completions, timer ticks) with a far tail,
/// interleaved pops.
fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(SAMPLES);
    g.bench_function("event_queue_push_pop", |b| {
        let mut q = BenchEventQueue::new();
        let mut now = 0u64;
        let mut s = Stream(0xE4E7);
        for _ in 0..64 {
            q.push(1000);
        }
        b.iter(|| {
            let r = s.next();
            // Near-future deltas dominate; 1/16 land past the ring window.
            let delta = if r & 15 != 0 {
                r % 200_000
            } else {
                10_000_000 + r % 5_000_000
            };
            q.push(now + delta);
            if let Some(t) = q.pop() {
                now = now.max(t);
            }
            black_box(now)
        });
    });
    g.finish();
}

/// In-situ replica of `execute_quantum`'s per-block body: walker block,
/// i-side fetch, heatmap update, d-side access, branch predictor. This
/// is the per-block floor the end-to-end `repro perf` number divides
/// into (8 instructions per block).
fn bench_block_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(SAMPLES);
    let cfg = SystemConfig::table2().with_cores(32);
    let mut mem = MemorySystem::new(&cfg);
    let mut alloc = PageAllocator::new();
    let code = Arc::new(Footprint::from_regions([&alloc.anonymous("code", 24)]));
    let shared = Arc::new(Footprint::from_regions([&alloc.anonymous("shared", 8)]));
    let private = Arc::new(Footprint::from_regions([&alloc.anonymous("priv", 4)]));
    let mut walker = FootprintWalker::new(code, shared, private, WalkParams::default(), 11);
    let mut heatmap = PageHeatmap::new(512);
    let mut bp = GshareBranchPredictor::new(4096);
    let lines_per_page = mem.lines_per_page();
    g.bench_function("walker_only", |b| {
        b.iter(|| black_box(walker.next_block()));
    });
    g.bench_function("fetch_code_only", |b| {
        b.iter(|| {
            let block = walker.next_block();
            black_box(mem.fetch_code(0, block.line, CodeDomain::Application))
        });
    });
    g.bench_function("access_data_only", |b| {
        b.iter(|| {
            let block = walker.next_block();
            if let Some(d) = block.data_ref {
                black_box(mem.access_data(0, d.line, d.write, CodeDomain::Application));
            }
        });
    });
    g.bench_function("engine_block_replica", |b| {
        b.iter(|| {
            let block = walker.next_block();
            let mut cycles = mem.fetch_code(0, block.line, CodeDomain::Application);
            heatmap.insert_pfn(block.line / lines_per_page);
            if let Some(d) = block.data_ref {
                cycles += mem.access_data(0, d.line, d.write, CodeDomain::Application);
            }
            if !bp.predict_and_train(block.line, block.branch_taken) {
                cycles += 14;
            }
            black_box(cycles)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_tlb,
    bench_directory,
    bench_event_queue,
    bench_block_loop
);
criterion_main!(benches);
