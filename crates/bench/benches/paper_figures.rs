//! Criterion benches: one group per paper table/figure. Each bench runs
//! a reduced-size version of the experiment that regenerates the
//! artefact, so `cargo bench` both times the simulator and re-derives
//! every result's shape.

use criterion::{criterion_group, criterion_main, Criterion};
use schedtask::{SchedTaskConfig, SchedTaskScheduler, StealPolicy};
use schedtask_bench::{bench_kinds, bench_params};
use schedtask_experiments::{
    appendix, fig04_breakup, fig09_stealing, fig11_heatmap, overheads, table4_workload,
};
use schedtask_experiments::{runner, Comparison, RunBuilder, Technique};
use schedtask_kernel::WorkloadSpec;
use schedtask_sim::HierarchyConfig;
use schedtask_workload::BenchmarkKind;

fn small(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g
}

/// Figure 4: instruction breakup characterization.
fn bench_fig04(c: &mut Criterion) {
    let mut g = small(c);
    let mut p = bench_params();
    p.max_instructions = 600_000;
    g.bench_function("fig04_breakup", |b| {
        b.iter(|| fig04_breakup::run(&p));
    });
    g.finish();
}

/// Figures 7 / 8 / 10 share the main comparison harness.
fn bench_fig07_08_10(c: &mut Criterion) {
    let mut g = small(c);
    let p = bench_params();
    let kinds = bench_kinds();
    g.bench_function("fig07_08_10_comparison", |b| {
        b.iter(|| {
            let cmp = Comparison::run_subset(&p, 2.0, &kinds).expect("comparison runs");
            (
                cmp.fig07_performance(),
                cmp.fig08_all(),
                cmp.fig10_migrations(),
            )
        });
    });
    g.finish();
}

/// Figure 9: work-stealing strategies.
fn bench_fig09(c: &mut Criterion) {
    let mut g = small(c);
    let mut p = bench_params();
    p.max_instructions = 600_000;
    g.bench_function("fig09_stealing", |b| {
        b.iter(|| fig09_stealing::run(&p, &[StealPolicy::Nothing, StealPolicy::SimilarWorkAlso]));
    });
    g.finish();
}

/// Figure 11: heatmap register width sweep (reduced to 2 widths).
fn bench_fig11(c: &mut Criterion) {
    let mut g = small(c);
    let mut p = bench_params();
    p.max_instructions = 500_000;
    g.bench_function("fig11_heatmap_single_width", |b| {
        b.iter(|| {
            let (sched, _observer) =
                SchedTaskScheduler::with_ranking_observer(p.cores, SchedTaskConfig::default());
            RunBuilder::new(&p)
                .scheduler(Box::new(sched))
                .workload(&WorkloadSpec::single(BenchmarkKind::Find, 2.0))
                .run()
        });
    });
    g.bench_function("fig11_heatmap_sweep", |b| {
        b.iter(|| fig11_heatmap::run(&p, &[BenchmarkKind::Find]));
    });
    g.finish();
}

/// Section 6.1 overheads.
fn bench_overheads(c: &mut Criterion) {
    let mut g = small(c);
    let mut p = bench_params();
    p.max_instructions = 400_000;
    g.bench_function("sec61_overheads", |b| {
        b.iter(|| overheads::run(&p));
    });
    g.finish();
}

/// Table 4: workload scaling (reduced to two scales).
fn bench_table4(c: &mut Criterion) {
    let mut g = small(c);
    let mut p = bench_params();
    p.max_instructions = 400_000;
    g.bench_function("table4_workload_scaling", |b| {
        b.iter(|| table4_workload::run(&p, &[1.0, 4.0]));
    });
    g.finish();
}

/// Appendix Figure 1: one multi-programmed bag across techniques.
fn bench_appendix_mpw(c: &mut Criterion) {
    let mut g = small(c);
    let mut p = bench_params();
    p.max_instructions = 600_000;
    let bag = schedtask_workload::MultiProgrammedWorkload::by_name("MPW-A").expect("exists");
    let w = WorkloadSpec::from(&bag);
    g.bench_function("appendix_fig1_mpw_a", |b| {
        b.iter(|| {
            let base = RunBuilder::new(&p)
                .technique(Technique::Linux)
                .workload(&w)
                .run()
                .expect("run succeeds");
            let st = RunBuilder::new(&p)
                .technique(Technique::SchedTask)
                .workload(&w)
                .run()
                .expect("run succeeds");
            runner::throughput_change(&base, &st)
        });
    });
    g.finish();
}

/// Appendix Table 2: i-cache size (one size, one benchmark per iter).
fn bench_appendix_icache(c: &mut Criterion) {
    let mut g = small(c);
    let p = bench_params();
    g.bench_function("appendix_table2_icache_16k", |b| {
        let system = p
            .system
            .clone()
            .with_hierarchy(p.system.hierarchy.clone().with_icache_size(16 * 1024));
        let pp = p.clone().with_system(system);
        b.iter(|| Comparison::run_subset(&pp, 2.0, &[BenchmarkKind::Find]));
    });
    g.finish();
}

/// Appendix Table 3: cache configurations.
fn bench_appendix_cacheconfig(c: &mut Criterion) {
    let mut g = small(c);
    let p = bench_params();
    g.bench_function("appendix_table3_config1", |b| {
        let system = p.system.clone().with_hierarchy(HierarchyConfig::config1());
        let pp = p.clone().with_system(system);
        b.iter(|| Comparison::run_subset(&pp, 2.0, &[BenchmarkKind::MailSrvIo]));
    });
    g.finish();
}

/// Appendix Table 4: core counts.
fn bench_appendix_cores(c: &mut Criterion) {
    let mut g = small(c);
    let mut p = bench_params();
    p.max_instructions = 400_000;
    g.bench_function("appendix_table4_core_sweep", |b| {
        b.iter(|| appendix::core_count_sweep(&p, &[4, 8]));
    });
    g.finish();
}

/// Appendix Figures 2-3: prefetcher and trace cache.
fn bench_appendix_frontend(c: &mut Criterion) {
    let mut g = small(c);
    let p = bench_params();
    g.bench_function("appendix_fig2_prefetcher", |b| {
        let system = p.system.clone().with_call_graph_prefetcher();
        let pp = p.clone().with_system(system);
        b.iter(|| Comparison::run_subset(&pp, 2.0, &[BenchmarkKind::Find]));
    });
    g.bench_function("appendix_fig3_trace_cache", |b| {
        let system = p.system.clone().with_trace_cache();
        let pp = p.clone().with_system(system);
        b.iter(|| Comparison::run_subset(&pp, 2.0, &[BenchmarkKind::Find]));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig04,
    bench_fig07_08_10,
    bench_fig09,
    bench_fig11,
    bench_overheads,
    bench_table4,
    bench_appendix_mpw,
    bench_appendix_icache,
    bench_appendix_cacheconfig,
    bench_appendix_cores,
    bench_appendix_frontend,
);
criterion_main!(benches);
