//! Overhead of the observability layer.
//!
//! Two configurations of the same quick engine run are timed back to
//! back: one with no observer attached (the unobserved fast path, where
//! `ObserverSet::emit` skips event construction entirely) and one with
//! a [`NoopObserver`] attached (every event is built and dispatched to
//! a sink that discards it).
//!
//! The contract DESIGN.md §9 documents — and the CI `obs-overhead` job
//! enforces — is that the no-op observer costs **under 1 %**: the emit
//! path must never become a reason to leave observability off. Rounds
//! are interleaved and summarized by their minimum — timing noise is
//! one-sided, so the min converges on the noise-free run time — and
//! the assertion itself only fires when
//! `OBS_OVERHEAD_ASSERT=1` is set (the CI job) and re-measures up to
//! three times before failing, since the real regressions it guards
//! against — event construction leaking onto the unobserved path, or
//! per-event work growing by an order of magnitude — fail every
//! attempt, while scheduler noise does not.

use criterion::black_box;
use schedtask_kernel::obs::NoopObserver;
use schedtask_kernel::{Engine, EngineConfig, GlobalFifoScheduler, WorkloadSpec};
use schedtask_sim::SystemConfig;
use schedtask_workload::BenchmarkKind;
use std::sync::Arc;
use std::time::{Duration, Instant};

// Long enough that per-round times are dominated by simulation work
// rather than scheduler jitter.
const INSTRUCTIONS: u64 = 4_000_000;
const ROUNDS: usize = 12;
const BUDGET: f64 = 0.01;
const ATTEMPTS: usize = 3;

/// One full engine run; returns the wall-clock time of `run()` only
/// (construction and observer attachment are outside the window).
fn run_once(observed: bool) -> Duration {
    let cfg = EngineConfig::fast()
        .with_system(SystemConfig::table2().with_cores(4))
        .with_max_instructions(INSTRUCTIONS);
    let mut engine = Engine::new(
        cfg,
        &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
        Box::new(GlobalFifoScheduler::new()),
    )
    .expect("engine builds");
    if observed {
        engine.add_observer(Arc::new(NoopObserver));
    }
    let start = Instant::now();
    black_box(engine.run().expect("run succeeds").total_instructions());
    start.elapsed()
}

/// Relative overhead of the no-op observer over `ROUNDS` interleaved
/// rounds, plus the two minima it was computed from.
fn measure() -> (f64, Duration, Duration) {
    let mut base = Duration::MAX;
    let mut obs = Duration::MAX;
    for _ in 0..ROUNDS {
        base = base.min(run_once(false));
        obs = obs.min(run_once(true));
    }
    (obs.as_secs_f64() / base.as_secs_f64() - 1.0, base, obs)
}

fn main() {
    // Warm-up: fault in code and caches before the timed rounds.
    run_once(false);
    run_once(true);

    let assert = std::env::var("OBS_OVERHEAD_ASSERT").as_deref() == Ok("1");
    let mut overhead = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        let (o, base, obs) = measure();
        overhead = o;
        println!("obs_overhead/unobserved:    {base:>12.3?} (min of {ROUNDS})");
        println!("obs_overhead/noop_observer: {obs:>12.3?} (min of {ROUNDS})");
        println!("obs_overhead/relative:      {:+.3}%", overhead * 100.0);
        if !assert || overhead < BUDGET {
            break;
        }
        if attempt < ATTEMPTS {
            println!("obs_overhead/retry:         over budget, re-measuring");
        }
    }

    if assert {
        assert!(
            overhead < BUDGET,
            "no-op observer overhead {:.3}% exceeds the {:.0}% budget on {} consecutive measurements",
            overhead * 100.0,
            BUDGET * 100.0,
            ATTEMPTS
        );
        println!("obs_overhead/assert:        ok (< 1%)");
    }
}
