//! Dev utility: standalone walker-vs-L1i hit rate check.
use schedtask_sim::{CacheParams, SetAssocCache};
use schedtask_workload::{Footprint, FootprintWalker, PageAllocator, WalkParams};
use std::sync::Arc;

fn main() {
    let mut alloc = PageAllocator::new();
    for (pages, hot) in [(36u64, 0.14f64), (13, 0.3), (92, 0.06)] {
        let r = alloc.anonymous("x", pages);
        let code = Arc::new(Footprint::from_regions([&r]));
        let empty = Arc::new(Footprint::new());
        let mut w = FootprintWalker::new(
            code,
            empty.clone(),
            empty.clone(),
            WalkParams {
                hot_fraction: hot,
                ..WalkParams::default()
            },
            42,
        );
        let mut l1 = SetAssocCache::new(CacheParams::new(32 * 1024, 4, 64, 3));
        for _ in 0..200_000 {
            l1.access(w.next_block().line);
        }
        println!("pages {pages} hot {hot}: i-hit {:.3}", l1.hit_rate());
    }
}
