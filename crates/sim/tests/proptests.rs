//! Property-based tests for the cache/TLB substrate.

use proptest::prelude::*;
use schedtask_sim::{CacheParams, CodeDomain, MemorySystem, SetAssocCache, SystemConfig, Tlb};

proptest! {
    /// After any access sequence, the most recently accessed line is
    /// always resident (LRU never evicts the MRU line).
    #[test]
    fn mru_line_always_resident(lines in prop::collection::vec(0u64..4096, 1..256)) {
        let mut c = SetAssocCache::new(CacheParams::new(1024, 2, 64, 1));
        for &l in &lines {
            c.access(l);
            prop_assert!(c.probe(l));
        }
    }

    /// Residency never exceeds capacity.
    #[test]
    fn residency_bounded_by_capacity(lines in prop::collection::vec(0u64..100_000, 0..512)) {
        let params = CacheParams::new(2048, 4, 64, 1);
        let capacity = params.num_lines() as usize;
        let mut c = SetAssocCache::new(params);
        for &l in &lines {
            c.access(l);
        }
        prop_assert!(c.resident_lines() <= capacity);
    }

    /// hits + misses equals the number of accesses.
    #[test]
    fn access_accounting(lines in prop::collection::vec(0u64..512, 0..512)) {
        let mut c = SetAssocCache::new(CacheParams::new(1024, 2, 64, 1));
        for &l in &lines {
            c.access(l);
        }
        prop_assert_eq!(c.hits() + c.misses(), lines.len() as u64);
    }

    /// A working set that fits in one set's ways never misses after the
    /// first touch (LRU with no conflict).
    #[test]
    fn fitting_set_never_remisses(start in 0u64..1000) {
        let params = CacheParams::new(1024, 4, 64, 1); // 4 sets x 4 ways
        let mut c = SetAssocCache::new(params);
        let num_sets = 4u64;
        // 4 lines all in the same set, equal to associativity.
        let lines: Vec<u64> = (0..4).map(|i| start * num_sets + i * num_sets).collect();
        for _ in 0..5 {
            for &l in &lines {
                c.access(l);
            }
        }
        prop_assert_eq!(c.misses(), 4);
    }

    /// TLB: hits + misses = accesses; residency bounded.
    #[test]
    fn tlb_accounting(pages in prop::collection::vec(0u64..1000, 0..400)) {
        let mut t = Tlb::new(32);
        for &p in &pages {
            t.access(p);
        }
        prop_assert_eq!(t.hits() + t.misses(), pages.len() as u64);
        prop_assert!(t.resident_entries() <= 32);
    }

    /// Memory system: every fetch penalty is one of the legal stall values
    /// (combinations of TLB penalty and level latencies).
    #[test]
    fn fetch_penalties_are_legal(lines in prop::collection::vec(0u64..10_000, 1..200)) {
        let cfg = SystemConfig::table2().with_cores(1);
        let mut mem = MemorySystem::new(&cfg);
        let tlb = cfg.tlb_miss_penalty;
        let l2 = cfg.hierarchy.l2.unwrap().latency_cycles;
        let llc = cfg.hierarchy.llc.latency_cycles;
        let memlat = cfg.hierarchy.memory_latency;
        let legal = [0, tlb, l2, llc, memlat, tlb + l2, tlb + llc, tlb + memlat];
        for &l in &lines {
            let p = mem.fetch_code(0, l, CodeDomain::Os);
            prop_assert!(legal.contains(&p), "illegal penalty {p}");
        }
    }

    /// Fetching the same line twice in a row is always free the second
    /// time, on any core.
    #[test]
    fn immediate_refetch_free(line in 0u64..1_000_000, core in 0usize..4) {
        let mut mem = MemorySystem::new(&SystemConfig::table2().with_cores(4));
        mem.fetch_code(core, line, CodeDomain::Application);
        prop_assert_eq!(mem.fetch_code(core, line, CodeDomain::Application), 0);
    }

    /// Total i-cache stats equal the number of fetches (no trace cache).
    #[test]
    fn memsystem_stat_accounting(lines in prop::collection::vec(0u64..4096, 1..300)) {
        let mut mem = MemorySystem::new(&SystemConfig::table2().with_cores(2));
        for (i, &l) in lines.iter().enumerate() {
            let domain = if i % 2 == 0 { CodeDomain::Application } else { CodeDomain::Os };
            mem.fetch_code(i % 2, l, domain);
        }
        let s = mem.stats();
        prop_assert_eq!(
            s.icache_app.total() + s.icache_os.total(),
            lines.len() as u64
        );
    }
}

mod coherence_props {
    use proptest::prelude::*;
    use schedtask_sim::coherence::Directory;
    use schedtask_sim::LineState;

    proptest! {
        /// After any access sequence, every tracked line is in a legal
        /// state, and a write always leaves its line Modified with the
        /// writer as the only sharer.
        #[test]
        fn directory_states_stay_legal(
            ops in prop::collection::vec((0usize..8, 0u64..32, prop::bool::ANY), 1..200),
        ) {
            let mut dir = Directory::new(8);
            for &(core, line, write) in &ops {
                if write {
                    let out = dir.on_write(core, line);
                    prop_assert!(!out.invalidate.contains(core));
                    prop_assert_eq!(dir.state_of(line), LineState::Modified);
                } else {
                    dir.on_read(core, line);
                    prop_assert_ne!(dir.state_of(line), LineState::Invalid);
                }
            }
        }

        /// Invalidation messages never exceed (sharers before the write),
        /// summed over the run: bounded by total reads + writes.
        #[test]
        fn invalidations_are_bounded(
            ops in prop::collection::vec((0usize..4, 0u64..8, prop::bool::ANY), 1..200),
        ) {
            let mut dir = Directory::new(4);
            for &(core, line, write) in &ops {
                if write {
                    dir.on_write(core, line);
                } else {
                    dir.on_read(core, line);
                }
            }
            prop_assert!(dir.invalidations() <= 3 * ops.len() as u64);
            prop_assert!(dir.transfers() <= ops.len() as u64);
        }

        /// Evicting every sharer returns the line to Invalid.
        #[test]
        fn full_eviction_returns_to_invalid(cores in prop::collection::hash_set(0usize..8, 1..8)) {
            let mut dir = Directory::new(8);
            for &c in &cores {
                dir.on_read(c, 7);
            }
            for &c in &cores {
                dir.on_evict(c, 7);
            }
            prop_assert_eq!(dir.state_of(7), LineState::Invalid);
            prop_assert_eq!(dir.tracked_lines(), 0);
        }
    }
}
