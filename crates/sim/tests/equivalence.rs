//! Observational-equivalence proptests for the data-oriented hot-path
//! rewrites.
//!
//! Each test replays a random operation stream through the production
//! structure and through a straightforward reference model written in
//! the style of the *old* implementation (per-set `Vec<Vec<u64>>` for
//! the cache, front-is-MRU `Vec` for the TLB, `HashMap` for the
//! directory), asserting the observable behaviour — hit/miss sequences,
//! invalidation sets, outcomes, counters — is identical step for step.
//! The flat layouts are pure wall-clock optimizations; these tests pin
//! that contract.

use proptest::prelude::*;
use schedtask_sim::cache::LEGACY_RNG_SEED;
use schedtask_sim::coherence::{Directory, LineState, ReadOutcome};
use schedtask_sim::{CacheParams, ReplacementPolicy, SetAssocCache, Tlb};
use std::collections::HashMap;

/// The cache's victim RNG (xorshift64*), replicated so the reference
/// model draws the identical victim sequence under `Random`.
fn next_random(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Reference set-associative cache: one `Vec<u64>` per set, front = MRU
/// (the layout `SetAssocCache` used before the flat rewrite).
struct RefCache {
    sets: Vec<Vec<u64>>,
    assoc: usize,
    policy: ReplacementPolicy,
    rng_state: u64,
    hits: u64,
    misses: u64,
}

impl RefCache {
    fn new(num_sets: usize, assoc: usize, policy: ReplacementPolicy) -> Self {
        RefCache {
            sets: vec![Vec::new(); num_sets],
            assoc,
            policy,
            rng_state: LEGACY_RNG_SEED,
            hits: 0,
            misses: 0,
        }
    }

    fn access(&mut self, line: u64) -> bool {
        let num_sets = self.sets.len() as u64;
        let set = &mut self.sets[(line % num_sets) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if self.policy == ReplacementPolicy::Lru {
                set.remove(pos);
                set.insert(0, line);
            }
            self.hits += 1;
            true
        } else {
            if set.len() == self.assoc {
                let victim = match self.policy {
                    ReplacementPolicy::Lru | ReplacementPolicy::Fifo => set.len() - 1,
                    ReplacementPolicy::Random => {
                        (next_random(&mut self.rng_state) % set.len() as u64) as usize
                    }
                };
                set.remove(victim);
            }
            set.insert(0, line);
            self.misses += 1;
            false
        }
    }

    fn probe(&self, line: u64) -> bool {
        self.sets[(line % self.sets.len() as u64) as usize].contains(&line)
    }

    fn invalidate(&mut self, line: u64) -> bool {
        let num_sets = self.sets.len() as u64;
        let set = &mut self.sets[(line % num_sets) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

fn policy_strategy() -> impl Strategy<Value = ReplacementPolicy> {
    (0u8..3).prop_map(|p| match p {
        0 => ReplacementPolicy::Lru,
        1 => ReplacementPolicy::Fifo,
        _ => ReplacementPolicy::Random,
    })
}

proptest! {
    /// The flat cache and the reference per-set-`Vec` model agree on
    /// every access's hit/miss result, on probes, on invalidations, and
    /// on the final counters — under all three replacement policies.
    /// Selector: 0-7 access, 8 invalidate, 9 flush. Every 37th operation
    /// shifts its line past `u32::MAX` so the narrow→wide tag-store
    /// transition is also exercised.
    #[test]
    fn cache_matches_reference_model(
        policy in policy_strategy(),
        ops in prop::collection::vec((0u8..10, 0u64..512), 0..400),
    ) {
        // 8 sets x 4 ways: small enough that random streams evict.
        let params = CacheParams::new(2048, 4, 64, 1);
        let mut fast = SetAssocCache::with_policy(params, policy);
        let mut reference = RefCache::new(8, 4, policy);
        for (i, &(sel, l)) in ops.iter().enumerate() {
            let l = if i % 37 == 36 { l + (u32::MAX as u64 + 1) } else { l };
            match sel {
                0..=7 => {
                    prop_assert_eq!(fast.access(l), reference.access(l), "access #{} line {}", i, l);
                }
                8 => {
                    prop_assert_eq!(fast.invalidate(l), reference.invalidate(l));
                }
                _ => {
                    fast.flush();
                    reference.sets.iter_mut().for_each(Vec::clear);
                }
            }
        }
        prop_assert_eq!(fast.hits(), reference.hits);
        prop_assert_eq!(fast.misses(), reference.misses);
        prop_assert_eq!(fast.resident_lines(), reference.resident());
        for l in 0..512 {
            prop_assert_eq!(fast.probe(l), reference.probe(l), "probe {}", l);
        }
    }

    /// The open-addressed TLB and a front-is-MRU `Vec` reference LRU
    /// agree on every access over random page streams with interleaved
    /// flushes.
    #[test]
    fn tlb_matches_reference_lru(
        entries in 1usize..24,
        ops in prop::collection::vec((0u64..200, prop::bool::ANY), 0..600),
    ) {
        let mut tlb = Tlb::new(entries);
        let mut reference: Vec<u64> = Vec::new(); // front = MRU
        for &(page, flush) in &ops {
            if flush {
                tlb.flush();
                reference.clear();
                continue;
            }
            let expect = if let Some(pos) = reference.iter().position(|&p| p == page) {
                reference.remove(pos);
                reference.insert(0, page);
                true
            } else {
                if reference.len() == entries {
                    reference.pop();
                }
                reference.insert(0, page);
                false
            };
            prop_assert_eq!(tlb.access(page), expect, "page {}", page);
            prop_assert_eq!(tlb.resident_entries(), reference.len());
        }
    }
}

/// Reference MSI directory: the `HashMap` the open-addressed table
/// replaced. Sharers as a sorted list of cores (the old `Vec<usize>`).
#[derive(Default)]
struct RefDirectory {
    lines: HashMap<u64, (Vec<usize>, bool)>, // (sharers ascending, modified)
    invalidations: u64,
    transfers: u64,
    upgrades: u64,
    downgrades: u64,
}

impl RefDirectory {
    fn on_read(&mut self, core: usize, line: u64) -> ReadOutcome {
        let (sharers, modified) = self.lines.entry(line).or_default();
        if *modified && !sharers.contains(&core) {
            let owner = sharers[0];
            *modified = false;
            sharers.push(core);
            sharers.sort_unstable();
            self.transfers += 1;
            self.downgrades += 1;
            ReadOutcome::CacheToCache { owner }
        } else {
            if !sharers.contains(&core) {
                sharers.push(core);
                sharers.sort_unstable();
            }
            ReadOutcome::FromMemoryPath
        }
    }

    /// Returns (invalidation set ascending, silent).
    fn on_write(&mut self, core: usize, line: u64) -> (Vec<usize>, bool) {
        let (sharers, modified) = self.lines.entry(line).or_default();
        if *modified && sharers.as_slice() == [core] {
            return (Vec::new(), true);
        }
        let others: Vec<usize> = sharers.iter().copied().filter(|&c| c != core).collect();
        self.invalidations += others.len() as u64;
        if !others.is_empty() || sharers.contains(&core) {
            self.upgrades += 1;
        }
        *sharers = vec![core];
        *modified = true;
        (others, false)
    }

    fn on_evict(&mut self, core: usize, line: u64) {
        if let Some((sharers, _)) = self.lines.get_mut(&line) {
            sharers.retain(|&c| c != core);
            if sharers.is_empty() {
                self.lines.remove(&line);
            }
        }
    }

    fn state_of(&self, line: u64) -> LineState {
        match self.lines.get(&line) {
            None => LineState::Invalid,
            Some((s, _)) if s.is_empty() => LineState::Invalid,
            Some((_, true)) => LineState::Modified,
            Some((_, false)) => LineState::Shared,
        }
    }
}

proptest! {
    /// The open-addressed directory and the `HashMap` reference agree on
    /// every read outcome, every write's exact invalidation set (as an
    /// ascending core list, the old `Vec<usize>` representation), all
    /// four traffic counters, per-line states, and the tracked-line
    /// count. Selector: 0-2 read, 3-4 write, 5 evict. Line ids are
    /// spread over a wide range so the table grows and probe chains
    /// wrap.
    #[test]
    fn directory_matches_reference_model(
        ops in prop::collection::vec((0u8..6, 0usize..32, 0u64..(1 << 40)), 0..500),
    ) {
        let mut fast = Directory::new(32);
        let mut reference = RefDirectory::default();
        let mut touched = Vec::new();
        for (i, &(sel, c, l)) in ops.iter().enumerate() {
            match sel {
                0..=2 => {
                    touched.push(l);
                    prop_assert_eq!(fast.on_read(c, l), reference.on_read(c, l), "read #{}", i);
                }
                3..=4 => {
                    touched.push(l);
                    let out = fast.on_write(c, l);
                    let (ref_inval, ref_silent) = reference.on_write(c, l);
                    let inval: Vec<usize> = out.invalidate.iter().collect();
                    prop_assert_eq!(inval, ref_inval, "write #{} invalidation set", i);
                    prop_assert_eq!(out.silent, ref_silent, "write #{} silent flag", i);
                }
                _ => {
                    fast.on_evict(c, l);
                    reference.on_evict(c, l);
                }
            }
        }
        prop_assert_eq!(fast.invalidations(), reference.invalidations);
        prop_assert_eq!(fast.transfers(), reference.transfers);
        prop_assert_eq!(fast.upgrades(), reference.upgrades);
        prop_assert_eq!(fast.downgrades(), reference.downgrades);
        prop_assert_eq!(fast.tracked_lines(), reference.lines.len());
        for &l in &touched {
            prop_assert_eq!(fast.state_of(l), reference.state_of(l), "state of {}", l);
        }
    }
}
