//! NUCA (non-uniform cache access) latency model for the shared LLC.
//!
//! Table 2 describes the L3 as a "Shared NUCA cache" with an *average*
//! latency of 18 cycles. The default timing model uses that flat
//! average; this module provides the explicit banked model for the NUCA
//! ablation: the LLC is distributed across one bank per core on a 2-D
//! mesh, and an access from core `c` to the bank holding the line pays
//! the Manhattan hop distance.

/// Banked NUCA latency model over a square(ish) mesh.
///
/// # Examples
///
/// ```
/// use schedtask_sim::NucaModel;
///
/// let nuca = NucaModel::new(16, 12, 2); // 16 banks, 12-cycle base, 2 cycles/hop
/// // Same tile: base latency only.
/// assert_eq!(nuca.latency(0, 0), 12);
/// // Distant bank costs hops.
/// assert!(nuca.latency(0, 15) > nuca.latency(0, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NucaModel {
    banks: usize,
    mesh_width: usize,
    base_latency: u64,
    per_hop: u64,
}

impl NucaModel {
    /// Creates a model with `banks` banks (one per core tile), a bank
    /// access latency of `base_latency`, and `per_hop` cycles per mesh
    /// hop.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(banks: usize, base_latency: u64, per_hop: u64) -> Self {
        assert!(banks > 0, "need at least one bank");
        let mesh_width = (banks as f64).sqrt().ceil() as usize;
        NucaModel {
            banks,
            mesh_width: mesh_width.max(1),
            base_latency,
            per_hop,
        }
    }

    /// The bank holding `line` (static line interleaving).
    pub fn bank_of(&self, line: u64) -> usize {
        (line % self.banks as u64) as usize
    }

    fn coords(&self, tile: usize) -> (usize, usize) {
        (tile % self.mesh_width, tile / self.mesh_width)
    }

    /// Manhattan hop distance between two tiles.
    pub fn hops(&self, from_tile: usize, to_tile: usize) -> u64 {
        let (x0, y0) = self.coords(from_tile);
        let (x1, y1) = self.coords(to_tile);
        (x0.abs_diff(x1) + y0.abs_diff(y1)) as u64
    }

    /// Access latency from `core` to the bank holding `line`.
    pub fn latency(&self, core: usize, line: u64) -> u64 {
        let bank = self.bank_of(line);
        self.base_latency + self.per_hop * self.hops(core % self.banks, bank)
    }

    /// Mean latency over all (core, bank) pairs — useful for checking
    /// the model against Table 2's quoted average.
    pub fn mean_latency(&self) -> f64 {
        let mut total = 0u64;
        for c in 0..self.banks {
            for b in 0..self.banks {
                total += self.base_latency + self.per_hop * self.hops(c, b);
            }
        }
        total as f64 / (self.banks * self.banks) as f64
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_tile_pays_base_only() {
        let n = NucaModel::new(16, 12, 2);
        for t in 0..16 {
            assert_eq!(n.latency(t, t as u64), 12);
        }
    }

    #[test]
    fn hops_are_symmetric_and_triangle() {
        let n = NucaModel::new(16, 12, 2);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(n.hops(a, b), n.hops(b, a));
                for c in 0..16 {
                    assert!(n.hops(a, c) <= n.hops(a, b) + n.hops(b, c));
                }
            }
        }
    }

    #[test]
    fn corner_to_corner_is_maximal() {
        let n = NucaModel::new(16, 12, 2); // 4x4 mesh
        let max = (0..16)
            .flat_map(|a| (0..16).map(move |b| (a, b)))
            .map(|(a, b)| n.hops(a, b))
            .max()
            .unwrap();
        assert_eq!(n.hops(0, 15), max);
        assert_eq!(max, 6); // (3 + 3) hops on a 4x4 mesh
    }

    #[test]
    fn mean_latency_can_match_table2_average() {
        // 32 banks at base 12 with 2 cycles/hop averages near the
        // paper's quoted 18 cycles.
        let n = NucaModel::new(32, 12, 2);
        let mean = n.mean_latency();
        assert!((16.0..20.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn line_interleaving_covers_all_banks() {
        let n = NucaModel::new(8, 10, 1);
        let banks: std::collections::HashSet<usize> = (0..64u64).map(|l| n.bank_of(l)).collect();
        assert_eq!(banks.len(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        NucaModel::new(0, 1, 1);
    }
}
