//! Cycle-approximate multicore memory-hierarchy substrate for the
//! SchedTask reproduction.
//!
//! The paper evaluates scheduling techniques on a 32-core machine
//! simulated by Tejas (Table 2). This crate supplies the equivalent
//! substrate: set-associative caches with LRU replacement, instruction and
//! data TLBs, a lightweight ownership-based coherence model, the
//! appendix's optional instruction prefetcher and trace cache, and the
//! machine configurations used in every experiment (Table 2 baseline,
//! Config1/2/3, i-cache and core-count sweeps).
//!
//! The central type is [`MemorySystem`]: the discrete-event engine in
//! `schedtask-kernel` calls [`MemorySystem::fetch_code`] for every
//! executed instruction cache line and [`MemorySystem::access_data`] for
//! every data reference, and receives stall cycles back.
//!
//! # Examples
//!
//! ```
//! use schedtask_sim::{CodeDomain, MemorySystem, SystemConfig};
//!
//! let cfg = SystemConfig::table2().with_cores(2);
//! let mut mem = MemorySystem::new(&cfg);
//!
//! // A cold fetch pays the full memory round-trip...
//! let cold = mem.fetch_code(0, 0x4_0000, CodeDomain::Application);
//! // ...and a warm one is free (latency hidden by the pipeline).
//! let warm = mem.fetch_code(0, 0x4_0000, CodeDomain::Application);
//! assert!(cold > 0 && warm == 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod branch;
pub mod cache;
pub mod coherence;
pub mod config;
pub mod heatmap;
pub mod memory;
pub mod nuca;
pub mod prefetch;
pub mod stats;
pub mod tlb;
pub mod trace_cache;

pub use branch::GshareBranchPredictor;
pub use cache::{ReplacementPolicy, SetAssocCache};
pub use coherence::{Directory, LineState, ReadOutcome, SharerMask, WriteOutcome};
pub use config::{CacheParams, HierarchyConfig, PrefetcherConfig, SystemConfig, TraceCacheConfig};
pub use heatmap::PageHeatmap;
pub use memory::{MemorySystem, PAGE_BYTES};
pub use nuca::NucaModel;
pub use prefetch::{CallGraphPrefetcher, StrideDataPrefetcher};
pub use stats::{CodeDomain, HitMiss, MemStats};
pub use tlb::Tlb;
pub use trace_cache::TraceCache;
