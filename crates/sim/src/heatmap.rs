//! The Page-heatmap register (Section 3.2): the paper's proposed hardware
//! Bloom filter summarizing the physical page frames a SuperFunction type
//! fetched instructions from.
//!
//! The hardware is a B-bit register (512 bits in the paper's chosen
//! configuration; Figure 11 sweeps 128-2048). When an instruction with
//! page frame number `pf` commits, the bit `hash(pf) mod B` is set, with
//!
//! ```text
//! hash(pf) = pf + (pf ≫ 9) + (pf ≫ 18) + (pf ≫ 27) + (pf ≫ 36) + (pf ≫ 45)
//! ```
//!
//! so that all 52 PFN bits participate. Similarity between two types is
//! the Hamming weight of the bitwise AND of their heatmaps (Figure 3).

/// A Page-heatmap Bloom filter of configurable width.
///
/// # Examples
///
/// ```
/// use schedtask_sim::PageHeatmap;
///
/// let mut a = PageHeatmap::new(512);
/// let mut b = PageHeatmap::new(512);
/// for pfn in 0..20 {
///     a.insert_pfn(pfn);
///     b.insert_pfn(pfn + 10); // pages 10..20 shared
/// }
/// assert!(a.overlap(&b) >= 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PageHeatmap {
    bits: Vec<u64>,
    num_bits: u32,
    /// `num_bits - 1` when the width is a power of two (every paper
    /// width is), so the hot-path bit select masks instead of dividing.
    bit_mask: u32,
}

impl PageHeatmap {
    /// The paper's chosen register width.
    pub const DEFAULT_BITS: u32 = 512;

    /// Creates an all-zero heatmap of `num_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits` is zero or not a multiple of 64 (the register
    /// is manipulated in word-sized chunks, as the paper's sixteen 32-bit
    /// AND operations suggest).
    pub fn new(num_bits: u32) -> Self {
        assert!(
            num_bits > 0 && num_bits.is_multiple_of(64),
            "width must be a positive multiple of 64"
        );
        PageHeatmap {
            bits: vec![0; (num_bits / 64) as usize],
            num_bits,
            bit_mask: if num_bits.is_power_of_two() {
                num_bits - 1
            } else {
                0
            },
        }
    }

    /// The paper's PFN hash: sum of the PFN and five right-shifts by
    /// multiples of 9, covering all 52 PFN bits.
    pub fn hash_pfn(pfn: u64) -> u64 {
        pfn.wrapping_add(pfn >> 9)
            .wrapping_add(pfn >> 18)
            .wrapping_add(pfn >> 27)
            .wrapping_add(pfn >> 36)
            .wrapping_add(pfn >> 45)
    }

    /// Register width in bits.
    pub fn num_bits(&self) -> u32 {
        self.num_bits
    }

    /// Sets the bit for `pfn` (the hardware action at instruction commit).
    pub fn insert_pfn(&mut self, pfn: u64) {
        let bit = self.bit_of(pfn);
        self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    /// Register bit selected by `pfn` (`hash mod B`, masked when B is a
    /// power of two).
    #[inline]
    fn bit_of(&self, pfn: u64) -> u32 {
        let h = Self::hash_pfn(pfn);
        if self.bit_mask != 0 {
            h as u32 & self.bit_mask
        } else {
            (h % self.num_bits as u64) as u32
        }
    }

    /// True if the bit for `pfn` is set (membership may be a false
    /// positive, never a false negative — Bloom semantics).
    pub fn maybe_contains(&self, pfn: u64) -> bool {
        let bit = self.bit_of(pfn);
        self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
    }

    /// Page overlap between two heatmaps: the Hamming weight of their
    /// bitwise AND (Figure 3).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn overlap(&self, other: &PageHeatmap) -> u32 {
        assert_eq!(self.num_bits, other.num_bits, "heatmap widths must match");
        self.bits
            .iter()
            .zip(other.bits.iter())
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Ors `other` into `self` (TAlloc's per-core aggregation, Figure 6).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn union_with(&mut self, other: &PageHeatmap) {
        assert_eq!(self.num_bits, other.num_bits, "heatmap widths must match");
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
    }

    /// Toggles one bit of the register, as an SRAM soft error would.
    /// `bit` is reduced modulo the register width, so any `u32` is a
    /// valid input. Used by the kernel's fault injector to model
    /// heatmap corruption; Bloom semantics degrade (a cleared bit can
    /// produce a false negative) which is exactly the degradation the
    /// robustness experiments measure.
    pub fn toggle_bit(&mut self, bit: u32) {
        let bit = bit % self.num_bits;
        self.bits[(bit / 64) as usize] ^= 1u64 << (bit % 64);
    }

    /// Number of set bits.
    pub fn popcount(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Clears every bit (done at the start of each epoch).
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

impl Default for PageHeatmap {
    fn default() -> Self {
        PageHeatmap::new(Self::DEFAULT_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_matches_paper_formula() {
        let pfn = 0x000F_1234_5678u64;
        let expected = pfn + (pfn >> 9) + (pfn >> 18) + (pfn >> 27) + (pfn >> 36) + (pfn >> 45);
        assert_eq!(PageHeatmap::hash_pfn(pfn), expected);
    }

    #[test]
    fn insert_sets_exactly_one_bit() {
        let mut hm = PageHeatmap::new(512);
        hm.insert_pfn(42);
        assert_eq!(hm.popcount(), 1);
        assert!(hm.maybe_contains(42));
    }

    #[test]
    fn no_false_negatives() {
        let mut hm = PageHeatmap::new(128);
        for pfn in 0..1000 {
            hm.insert_pfn(pfn * 37);
        }
        for pfn in 0..1000 {
            assert!(hm.maybe_contains(pfn * 37));
        }
    }

    #[test]
    fn overlap_counts_common_bits() {
        let mut a = PageHeatmap::new(512);
        let mut b = PageHeatmap::new(512);
        a.insert_pfn(1);
        a.insert_pfn(2);
        b.insert_pfn(2);
        b.insert_pfn(3);
        assert!(a.overlap(&b) >= 1);
        assert_eq!(a.overlap(&a), a.popcount());
    }

    #[test]
    fn disjoint_small_sets_have_low_overlap() {
        let mut a = PageHeatmap::new(2048);
        let mut b = PageHeatmap::new(2048);
        for pfn in 0..8 {
            a.insert_pfn(pfn);
            b.insert_pfn(pfn + 1000);
        }
        assert!(
            a.overlap(&b) <= 1,
            "collision noise should be tiny at 2048 bits"
        );
    }

    #[test]
    fn union_is_bitwise_or() {
        let mut a = PageHeatmap::new(512);
        let mut b = PageHeatmap::new(512);
        a.insert_pfn(5);
        b.insert_pfn(700);
        a.union_with(&b);
        assert!(a.maybe_contains(5));
        assert!(a.maybe_contains(700));
    }

    #[test]
    fn clear_resets() {
        let mut a = PageHeatmap::new(512);
        a.insert_pfn(9);
        assert!(!a.is_empty());
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.popcount(), 0);
    }

    #[test]
    fn toggle_flips_and_restores() {
        let mut hm = PageHeatmap::new(512);
        hm.insert_pfn(42);
        let before = hm.clone();
        hm.toggle_bit(7);
        assert_ne!(hm, before);
        hm.toggle_bit(7);
        assert_eq!(hm, before);
        // Out-of-range indices wrap instead of panicking.
        hm.toggle_bit(u32::MAX);
        assert_ne!(hm, before);
    }

    #[test]
    fn narrower_registers_collide_more() {
        // With 1024 distinct pages, a 128-bit filter saturates while a
        // 2048-bit filter retains discrimination (the premise of Fig 11).
        let mut small = PageHeatmap::new(128);
        let mut large = PageHeatmap::new(2048);
        for pfn in 0..1024 {
            small.insert_pfn(pfn);
            large.insert_pfn(pfn);
        }
        assert_eq!(small.popcount(), 128); // fully saturated
        assert!(large.popcount() > 400);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn ragged_width_rejected() {
        PageHeatmap::new(100);
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn mismatched_overlap_rejected() {
        let a = PageHeatmap::new(128);
        let b = PageHeatmap::new(256);
        a.overlap(&b);
    }

    #[test]
    fn default_is_512_bits() {
        assert_eq!(PageHeatmap::default().num_bits(), 512);
    }
}
