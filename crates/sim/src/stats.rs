//! Memory-system statistics, split by code domain (application vs. OS)
//! exactly the way the paper reports them (Figures 8c-8f).

/// Whether the executing code belongs to the application or to the OS.
///
/// The paper splits i-cache and d-cache hit rates by this domain:
/// application SuperFunctions count as [`CodeDomain::Application`], while
/// system-call, interrupt, and bottom-half handlers (and scheduler
/// routines) count as [`CodeDomain::Os`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeDomain {
    /// User-mode application code.
    Application,
    /// Kernel code: system calls, interrupts, bottom halves, scheduler.
    Os,
}

/// Hit/miss counters for one cache, one domain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitMiss {
    /// Number of hits.
    pub hits: u64,
    /// Number of misses.
    pub misses: u64,
}

impl HitMiss {
    /// Records an access.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; 0.0 before any access.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Adds another counter pair into this one.
    pub fn merge(&mut self, other: &HitMiss) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// System-wide memory statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 i-cache accesses from application code.
    pub icache_app: HitMiss,
    /// L1 i-cache accesses from OS code.
    pub icache_os: HitMiss,
    /// L1 d-cache accesses from application code.
    pub dcache_app: HitMiss,
    /// L1 d-cache accesses from OS code.
    pub dcache_os: HitMiss,
    /// Unified L2 accesses (all domains).
    pub l2: HitMiss,
    /// Shared last-level cache accesses (all domains).
    pub llc: HitMiss,
    /// Instruction TLB accesses.
    pub itlb: HitMiss,
    /// Data TLB accesses.
    pub dtlb: HitMiss,
    /// Coherence invalidations sent (write by a non-owner core).
    pub coherence_invalidations: u64,
    /// Cache-to-cache transfers served by a remote private cache.
    pub coherence_transfers: u64,
    /// Prefetch fills issued by the instruction prefetcher.
    pub prefetch_fills: u64,
    /// Demand fetches covered by the trace cache (bypassing the i-cache).
    pub trace_cache_covered: u64,
}

impl MemStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// L1 i-cache counters for the given domain.
    pub fn icache(&self, domain: CodeDomain) -> &HitMiss {
        match domain {
            CodeDomain::Application => &self.icache_app,
            CodeDomain::Os => &self.icache_os,
        }
    }

    /// L1 d-cache counters for the given domain.
    pub fn dcache(&self, domain: CodeDomain) -> &HitMiss {
        match domain {
            CodeDomain::Application => &self.dcache_app,
            CodeDomain::Os => &self.dcache_os,
        }
    }

    /// Overall i-cache hit rate across both domains.
    pub fn icache_overall_hit_rate(&self) -> f64 {
        let mut all = self.icache_app;
        all.merge(&self.icache_os);
        all.hit_rate()
    }

    /// Overall d-cache hit rate across both domains.
    pub fn dcache_overall_hit_rate(&self) -> f64 {
        let mut all = self.dcache_app;
        all.merge(&self.dcache_os);
        all.hit_rate()
    }

    /// Resets every counter to zero (used after cache warm-up).
    pub fn reset(&mut self) {
        *self = MemStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hitmiss_rates() {
        let mut hm = HitMiss::default();
        assert_eq!(hm.hit_rate(), 0.0);
        hm.record(true);
        hm.record(true);
        hm.record(false);
        assert_eq!(hm.total(), 3);
        assert!((hm.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hitmiss_merge() {
        let mut a = HitMiss { hits: 1, misses: 2 };
        a.merge(&HitMiss { hits: 3, misses: 4 });
        assert_eq!(a, HitMiss { hits: 4, misses: 6 });
    }

    #[test]
    fn domain_selection() {
        let mut s = MemStats::new();
        s.icache_app.record(true);
        s.icache_os.record(false);
        assert_eq!(s.icache(CodeDomain::Application).hits, 1);
        assert_eq!(s.icache(CodeDomain::Os).misses, 1);
    }

    #[test]
    fn overall_rates_combine_domains() {
        let mut s = MemStats::new();
        s.icache_app = HitMiss { hits: 3, misses: 1 };
        s.icache_os = HitMiss { hits: 1, misses: 3 };
        assert!((s.icache_overall_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = MemStats::new();
        s.llc.record(false);
        s.coherence_invalidations = 7;
        s.reset();
        assert_eq!(s, MemStats::new());
    }
}
