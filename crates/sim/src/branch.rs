//! Branch prediction.
//!
//! Table 2's machine uses a TAGE predictor. The engine's default timing
//! model folds branch effects into the base CPI (a flat average, like
//! the LLC's "Avg. Latency"); this module provides an explicit
//! gshare-style predictor for the branch-modeling ablation, where
//! mispredictions are charged per taken-branch outcome instead.

/// A gshare branch predictor: a table of 2-bit saturating counters
/// indexed by the branch line XOR the global history.
///
/// # Examples
///
/// ```
/// use schedtask_sim::GshareBranchPredictor;
///
/// let mut bp = GshareBranchPredictor::new(1024);
/// // A loop branch that is always taken becomes predictable.
/// for _ in 0..8 {
///     bp.predict_and_train(42, true);
/// }
/// assert!(bp.predict_and_train(42, true));
/// ```
#[derive(Debug, Clone)]
pub struct GshareBranchPredictor {
    /// 2-bit saturating counters (0-1 predict not-taken, 2-3 taken).
    counters: Vec<u8>,
    history: u64,
    correct: u64,
    wrong: u64,
}

impl GshareBranchPredictor {
    /// Creates a predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: u32) -> Self {
        assert!(entries > 0, "need at least one counter");
        GshareBranchPredictor {
            counters: vec![2; entries as usize], // weakly taken
            history: 0,
            correct: 0,
            wrong: 0,
        }
    }

    fn index(&self, line: u64) -> usize {
        ((line ^ self.history) % self.counters.len() as u64) as usize
    }

    /// Predicts the branch at `line`, trains with the actual `taken`
    /// outcome, and returns whether the prediction was correct.
    pub fn predict_and_train(&mut self, line: u64, taken: bool) -> bool {
        let idx = self.index(line);
        let predicted_taken = self.counters[idx] >= 2;
        let correct = predicted_taken == taken;
        // Train the counter.
        if taken {
            self.counters[idx] = (self.counters[idx] + 1).min(3);
        } else {
            self.counters[idx] = self.counters[idx].saturating_sub(1);
        }
        // Shift the history.
        self.history = (self.history << 1) | taken as u64;
        if correct {
            self.correct += 1;
        } else {
            self.wrong += 1;
        }
        correct
    }

    /// Correct predictions so far.
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Mispredictions so far.
    pub fn mispredictions(&self) -> u64 {
        self.wrong
    }

    /// Prediction accuracy in [0, 1]; 0.0 before any branch.
    pub fn accuracy(&self) -> f64 {
        let total = self.correct + self.wrong;
        if total == 0 {
            0.0
        } else {
            self.correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn always_taken_branch_learns() {
        let mut bp = GshareBranchPredictor::new(256);
        for _ in 0..50 {
            bp.predict_and_train(7, true);
        }
        assert!(bp.accuracy() > 0.9);
    }

    #[test]
    fn alternating_branch_with_history_learns() {
        // T,N,T,N...: gshare's history bit makes this predictable after
        // warm-up.
        let mut bp = GshareBranchPredictor::new(4096);
        let mut taken = false;
        for _ in 0..2_000 {
            taken = !taken;
            bp.predict_and_train(9, taken);
        }
        assert!(bp.accuracy() > 0.8, "accuracy {}", bp.accuracy());
    }

    #[test]
    fn random_branches_hover_near_chance() {
        let mut bp = GshareBranchPredictor::new(1024);
        let mut rng = SmallRng::seed_from_u64(3);
        for i in 0..20_000u64 {
            bp.predict_and_train(i % 64, rng.gen_bool(0.5));
        }
        assert!(
            (0.4..0.6).contains(&bp.accuracy()),
            "accuracy {}",
            bp.accuracy()
        );
    }

    #[test]
    fn counters_saturate() {
        let mut bp = GshareBranchPredictor::new(1);
        for _ in 0..10 {
            bp.predict_and_train(0, true);
        }
        // Saturated taken: one not-taken outcome is mispredicted, but
        // the counter only steps down one notch.
        assert!(!bp.predict_and_train(0, false));
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_entries_rejected() {
        GshareBranchPredictor::new(0);
    }

    #[test]
    fn stats_accounting() {
        let mut bp = GshareBranchPredictor::new(64);
        for _ in 0..10 {
            bp.predict_and_train(1, true);
        }
        assert_eq!(bp.correct() + bp.mispredictions(), 10);
    }
}
