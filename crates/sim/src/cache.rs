//! Set-associative cache with true-LRU replacement.
//!
//! Addresses are pre-translated to *line identifiers* (`u64`) by the
//! caller; the cache indexes sets with the low-order bits of the line id,
//! exactly as a physically-indexed cache indexes sets with the low-order
//! bits above the line offset.

use crate::config::CacheParams;

/// Replacement policy for a [`SetAssocCache`].
///
/// The paper's machine uses true LRU everywhere; the alternatives exist
/// for the replacement-policy ablation (`repro ablations`), which shows
/// how much of the core-specialization benefit survives weaker
/// policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used (the default).
    #[default]
    Lru,
    /// First-in-first-out: insertion order, no recency update on hits.
    Fifo,
    /// Pseudo-random victim (deterministic xorshift, seeded per cache).
    Random,
}

/// A set-associative cache with LRU replacement over abstract line ids.
///
/// # Examples
///
/// ```
/// use schedtask_sim::{CacheParams, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheParams::new(1024, 2, 64, 1));
/// assert!(!c.access(7));      // cold miss
/// assert!(c.access(7));       // now resident
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    params: CacheParams,
    /// `sets[s]` holds resident line ids in LRU order: index 0 is the
    /// most recently used, the last element the LRU victim.
    sets: Vec<Vec<u64>>,
    num_sets: u64,
    hits: u64,
    misses: u64,
    policy: ReplacementPolicy,
    rng_state: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry and LRU
    /// replacement.
    pub fn new(params: CacheParams) -> Self {
        Self::with_policy(params, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    pub fn with_policy(params: CacheParams, policy: ReplacementPolicy) -> Self {
        let num_sets = params.num_sets();
        SetAssocCache {
            params,
            sets: vec![Vec::with_capacity(params.associativity as usize); num_sets as usize],
            num_sets,
            hits: 0,
            misses: 0,
            policy,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*: deterministic, cheap, good enough for victim
        // selection.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Index of the victim way in a full set under the current policy.
    fn victim_index(&mut self, set_len: usize) -> usize {
        match self.policy {
            // Sets are kept in recency order (MRU first), so both LRU
            // and FIFO evict the last element; they differ in whether
            // hits refresh position.
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => set_len - 1,
            ReplacementPolicy::Random => (self.next_random() % set_len as u64) as usize,
        }
    }

    fn set_index(&self, line: u64) -> usize {
        (line % self.num_sets) as usize
    }

    /// Accesses `line`; returns `true` on hit. On a miss the line is
    /// inserted, evicting a victim chosen by the replacement policy if
    /// the set is full.
    pub fn access(&mut self, line: u64) -> bool {
        let set_idx = self.set_index(line);
        let assoc = self.params.associativity as usize;
        let refresh = self.policy == ReplacementPolicy::Lru;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if refresh {
                // Move to MRU position (LRU only; FIFO/Random keep
                // insertion order).
                let l = set.remove(pos);
                set.insert(0, l);
            }
            self.hits += 1;
            true
        } else {
            if set.len() == assoc {
                let victim = self.victim_index(assoc);
                self.sets[set_idx].remove(victim);
            }
            self.sets[set_idx].insert(0, line);
            self.misses += 1;
            false
        }
    }

    /// Checks residency without updating recency or statistics.
    pub fn probe(&self, line: u64) -> bool {
        self.sets[self.set_index(line)].contains(&line)
    }

    /// Inserts `line` without counting a demand access (used by
    /// prefetchers). Returns `true` if the line was already resident.
    pub fn fill(&mut self, line: u64) -> bool {
        let set_idx = self.set_index(line);
        let assoc = self.params.associativity as usize;
        let refresh = self.policy == ReplacementPolicy::Lru;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            if refresh {
                let l = set.remove(pos);
                set.insert(0, l);
            }
            true
        } else {
            if set.len() == assoc {
                let victim = self.victim_index(assoc);
                self.sets[set_idx].remove(victim);
            }
            self.sets[set_idx].insert(0, line);
            false
        }
    }

    /// Removes `line` if resident; returns whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Empties the cache, keeping statistics.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1]; 0.0 before any access.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resets hit/miss counters without touching contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// The geometry this cache was built with.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways, 64-byte lines.
        SetAssocCache::new(CacheParams::new(256, 2, 64, 1))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets). Ways = 2.
        c.access(0);
        c.access(2);
        c.access(0); // 0 becomes MRU; LRU is 2
        c.access(4); // evicts 2
        assert!(c.probe(0));
        assert!(!c.probe(2));
        assert!(c.probe(4));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(1); // set 1
        c.access(2); // set 0
        c.access(3); // set 1
        assert!(c.probe(0) && c.probe(1) && c.probe(2) && c.probe(3));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.access(0);
        c.access(2);
        // probing 0 must NOT refresh it.
        assert!(c.probe(0));
        c.access(4); // evicts LRU = 0
        assert!(!c.probe(0));
        assert!(c.probe(2));
    }

    #[test]
    fn fill_does_not_count_stats() {
        let mut c = tiny();
        assert!(!c.fill(0));
        assert!(c.fill(0));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.access(0)); // but the line is usable
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.access(0);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(0));
        assert!(!c.probe(0));
    }

    #[test]
    fn flush_empties_but_keeps_stats() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_respected() {
        let mut c = tiny();
        for line in 0..100 {
            c.access(line);
        }
        assert!(c.resident_lines() <= 4);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.access(0);
        c.reset_stats();
        assert_eq!(c.misses(), 0);
        assert!(c.probe(0));
    }

    #[test]
    fn hit_rate_empty_is_zero() {
        assert_eq!(tiny().hit_rate(), 0.0);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = SetAssocCache::new(CacheParams::new(32 * 1024, 4, 64, 3));
        let lines = c.params().num_lines() * 2;
        // Two sequential sweeps over 2x capacity: second sweep still misses
        // everywhere under LRU.
        for _ in 0..2 {
            for line in 0..lines {
                c.access(line);
            }
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), lines * 2);
    }

    #[test]
    fn working_set_smaller_than_cache_stays_resident() {
        let mut c = SetAssocCache::new(CacheParams::new(32 * 1024, 4, 64, 3));
        let lines = c.params().num_lines() / 2;
        for line in 0..lines {
            c.access(line);
        }
        for line in 0..lines {
            assert!(c.access(line), "line {line} should be resident");
        }
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    fn tiny_with(policy: ReplacementPolicy) -> SetAssocCache {
        SetAssocCache::with_policy(CacheParams::new(256, 2, 64, 1), policy)
    }

    #[test]
    fn fifo_does_not_refresh_on_hit() {
        let mut c = tiny_with(ReplacementPolicy::Fifo);
        // Set 0 candidates: 0, 2, 4 (2 sets).
        c.access(0);
        c.access(2);
        c.access(0); // hit, but FIFO keeps 0 as the oldest
        c.access(4); // evicts the oldest = 0 under FIFO
        assert!(!c.probe(0), "FIFO must evict the first-inserted line");
        assert!(c.probe(2) && c.probe(4));
    }

    #[test]
    fn lru_refresh_differs_from_fifo() {
        let mut c = tiny_with(ReplacementPolicy::Lru);
        c.access(0);
        c.access(2);
        c.access(0);
        c.access(4); // LRU evicts 2
        assert!(c.probe(0) && !c.probe(2));
    }

    #[test]
    fn random_policy_is_deterministic_and_bounded() {
        let run = || {
            let mut c = tiny_with(ReplacementPolicy::Random);
            for line in 0..200u64 {
                c.access(line % 16);
            }
            (c.hits(), c.misses(), c.resident_lines())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "random policy must be reproducible");
        assert!(a.2 <= 4);
    }

    #[test]
    fn policy_accessor() {
        assert_eq!(
            tiny_with(ReplacementPolicy::Fifo).policy(),
            ReplacementPolicy::Fifo
        );
        assert_eq!(
            SetAssocCache::new(CacheParams::new(256, 2, 64, 1)).policy(),
            ReplacementPolicy::Lru
        );
    }

    #[test]
    fn lru_beats_fifo_and_random_on_skewed_reuse() {
        // A hot line re-touched constantly plus a conflict stream: LRU
        // protects the hot line best.
        let rate = |policy| {
            let mut c = SetAssocCache::with_policy(CacheParams::new(512, 2, 64, 1), policy);
            for i in 0..4000u64 {
                c.access(0); // hot
                c.access(4 * (i % 7) + 8); // conflicting stream, same set
            }
            c.hit_rate()
        };
        let lru = rate(ReplacementPolicy::Lru);
        let fifo = rate(ReplacementPolicy::Fifo);
        assert!(lru >= fifo, "LRU {lru} should be at least FIFO {fifo}");
    }
}
