//! Set-associative cache with true-LRU replacement.
//!
//! Addresses are pre-translated to *line identifiers* (`u64`) by the
//! caller; the cache indexes sets with the low-order bits of the line id,
//! exactly as a physically-indexed cache indexes sets with the low-order
//! bits above the line offset.
//!
//! # Data layout
//!
//! All ways of all sets live in one contiguous `Box<[u64]>`: set `s`
//! owns `lines[s*assoc .. (s+1)*assoc]`. Within a set's slice the
//! resident lines are stored *in recency order* — index 0 is the MRU
//! way, the last occupied index the LRU victim — and a packed per-set
//! occupancy array records how many ways are valid, so no sentinel line
//! id is ever needed. This is observationally identical to the previous
//! `Vec<Vec<u64>>` representation (same hit/miss sequence, same
//! victims, same RNG consumption) but with zero pointer chasing: a whole
//! 4–8-way set is one or two hardware cache lines, recency refresh is a
//! `copy_within` of at most `assoc` words, and the common repeat-hit on
//! the MRU way early-returns after a single load.
//!
//! Tags are stored *narrow* (`u32`) while every resident line id fits in
//! 32 bits — true for all the repo's workloads, whose line ids are dense
//! page numbers — which halves the tag footprint the host's own caches
//! must keep warm across 32 simulated cores. The first access with a
//! line id above `u32::MAX` transparently widens the store to `u64`, so
//! behaviour over arbitrary inputs is unchanged.

use crate::config::CacheParams;

/// Replacement policy for a [`SetAssocCache`].
///
/// The paper's machine uses true LRU everywhere; the alternatives exist
/// for the replacement-policy ablation (`repro ablations`), which shows
/// how much of the core-specialization benefit survives weaker
/// policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used (the default).
    #[default]
    Lru,
    /// First-in-first-out: insertion order, no recency update on hits.
    Fifo,
    /// Pseudo-random victim (deterministic xorshift, seeded per cache).
    Random,
}

/// The historical constant every Random-policy cache was seeded with
/// before per-cache seeding existed. [`SetAssocCache::with_policy`]
/// still uses it so legacy ablation numbers stay reproducible;
/// [`SetAssocCache::with_policy_seeded`] mixes a caller salt into it.
pub const LEGACY_RNG_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Tag storage: narrow (`u32`) until a line id needs 64 bits, then
/// widened once. Both variants keep set `s` at `[s*assoc..(s+1)*assoc]`,
/// valid entries first, in recency order (index 0 = MRU).
#[derive(Debug, Clone)]
enum TagStore {
    Narrow(Box<[u32]>),
    Wide(Box<[u64]>),
}

/// A set-associative cache with LRU replacement over abstract line ids.
///
/// # Examples
///
/// ```
/// use schedtask_sim::{CacheParams, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheParams::new(1024, 2, 64, 1));
/// assert!(!c.access(7));      // cold miss
/// assert!(c.access(7));       // now resident
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    params: CacheParams,
    /// All ways, contiguous: set `s` is `lines[s*assoc..(s+1)*assoc]`,
    /// valid entries first, in recency order (index 0 = MRU).
    lines: TagStore,
    /// Packed per-set recency metadata: how many ways of each set hold
    /// valid lines. Together with the in-slice ordering this encodes the
    /// full LRU stack without a sentinel value or per-way flags.
    occupancy: Box<[u16]>,
    assoc: usize,
    num_sets: u64,
    /// `num_sets - 1` when `num_sets` is a power of two (the common
    /// geometry), else 0: lets [`set_index`](Self::set_index) use a mask
    /// instead of a 64-bit division on every access.
    set_mask: u64,
    hits: u64,
    misses: u64,
    policy: ReplacementPolicy,
    rng_state: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry and LRU
    /// replacement.
    pub fn new(params: CacheParams) -> Self {
        Self::with_policy(params, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy and
    /// the legacy shared RNG seed (every Random cache picks the same
    /// victim sequence — see [`SetAssocCache::with_policy_seeded`]).
    pub fn with_policy(params: CacheParams, policy: ReplacementPolicy) -> Self {
        Self::from_parts(params, policy, LEGACY_RNG_SEED)
    }

    /// Creates an empty cache whose Random-victim RNG is decorrelated
    /// from every other cache by `salt` (typically derived from the
    /// cache's level and core index). Lru/Fifo caches never consume the
    /// RNG, so the salt is only observable under the Random ablation.
    pub fn with_policy_seeded(params: CacheParams, policy: ReplacementPolicy, salt: u64) -> Self {
        // splitmix64 of (legacy seed ^ salt): well-mixed and never zero
        // in practice; xorshift only requires a nonzero state.
        let mut z = LEGACY_RNG_SEED ^ salt;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self::from_parts(params, policy, if z == 0 { LEGACY_RNG_SEED } else { z })
    }

    fn from_parts(params: CacheParams, policy: ReplacementPolicy, rng_state: u64) -> Self {
        let num_sets = params.num_sets();
        let assoc = params.associativity as usize;
        SetAssocCache {
            params,
            lines: TagStore::Narrow(vec![0; num_sets as usize * assoc].into_boxed_slice()),
            occupancy: vec![0; num_sets as usize].into_boxed_slice(),
            assoc,
            num_sets,
            set_mask: if num_sets.is_power_of_two() {
                num_sets - 1
            } else {
                0
            },
            hits: 0,
            misses: 0,
            policy,
            rng_state,
        }
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// One-time widening of the tag store; the fast paths stay narrow
    /// until a line id actually needs 64 bits.
    #[cold]
    fn widen_if_narrow(&mut self) {
        if let TagStore::Narrow(t) = &self.lines {
            self.lines = TagStore::Wide(t.iter().map(|&x| x as u64).collect());
        }
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        if self.set_mask != 0 {
            (line & self.set_mask) as usize
        } else {
            (line % self.num_sets) as usize
        }
    }

    /// Core lookup/insert shared by [`access`](Self::access) (counted)
    /// and [`fill`](Self::fill) (uncounted). Returns `true` on hit.
    #[inline]
    fn touch(&mut self, line: u64) -> bool {
        let set_idx = self.set_index(line);
        let base = set_idx * self.assoc;
        let assoc = self.assoc;
        let occ = self.occupancy[set_idx] as usize;
        let policy = self.policy;
        if line <= u32::MAX as u64 {
            if let TagStore::Narrow(tags) = &mut self.lines {
                let (hit, grew) = touch_set(
                    &mut tags[base..base + assoc],
                    occ,
                    line as u32,
                    policy,
                    &mut self.rng_state,
                );
                if grew {
                    self.occupancy[set_idx] = occ as u16 + 1;
                }
                return hit;
            }
        }
        self.widen_if_narrow();
        let TagStore::Wide(tags) = &mut self.lines else {
            unreachable!("widen_if_narrow always leaves a wide store")
        };
        let (hit, grew) = touch_set(
            &mut tags[base..base + assoc],
            occ,
            line,
            policy,
            &mut self.rng_state,
        );
        if grew {
            self.occupancy[set_idx] = occ as u16 + 1;
        }
        hit
    }

    /// Accesses `line`; returns `true` on hit. On a miss the line is
    /// inserted, evicting a victim chosen by the replacement policy if
    /// the set is full.
    #[inline]
    pub fn access(&mut self, line: u64) -> bool {
        let hit = self.touch(line);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Checks residency without updating recency or statistics.
    pub fn probe(&self, line: u64) -> bool {
        let set_idx = self.set_index(line);
        let base = set_idx * self.assoc;
        let occ = self.occupancy[set_idx] as usize;
        match &self.lines {
            TagStore::Narrow(t) => {
                line <= u32::MAX as u64 && t[base..base + occ].contains(&(line as u32))
            }
            TagStore::Wide(t) => t[base..base + occ].contains(&line),
        }
    }

    /// Inserts `line` without counting a demand access (used by
    /// prefetchers). Returns `true` if the line was already resident.
    pub fn fill(&mut self, line: u64) -> bool {
        self.touch(line)
    }

    /// Removes `line` if resident; returns whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set_idx = self.set_index(line);
        let base = set_idx * self.assoc;
        let occ = self.occupancy[set_idx] as usize;
        let removed = match &mut self.lines {
            TagStore::Narrow(t) => {
                line <= u32::MAX as u64 && remove_from_set(&mut t[base..base + occ], line as u32)
            }
            TagStore::Wide(t) => remove_from_set(&mut t[base..base + occ], line),
        };
        if removed {
            self.occupancy[set_idx] = occ as u16 - 1;
        }
        removed
    }

    /// Empties the cache, keeping statistics.
    pub fn flush(&mut self) {
        self.occupancy.fill(0);
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1]; 0.0 before any access.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resets hit/miss counters without touching contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.occupancy.iter().map(|&o| o as usize).sum()
    }

    /// The geometry this cache was built with.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }
}

/// Lookup/insert on one set's way slice, shared by the narrow and wide
/// tag stores. `set` is the full `assoc`-way slice, `occ` how many of
/// its leading entries are valid. Returns `(hit, grew)`.
#[inline]
fn touch_set<T: Copy + PartialEq>(
    set: &mut [T],
    occ: usize,
    line: T,
    policy: ReplacementPolicy,
    rng_state: &mut u64,
) -> (bool, bool) {
    // MRU fast path: a repeat access to the most-recent way needs no
    // reorder under any policy (Lru would move it to front — it is
    // the front; Fifo/Random never refresh).
    if occ > 0 && set[0] == line {
        return (true, false);
    }
    if let Some(pos) = set[..occ].iter().position(|&l| l == line) {
        if policy == ReplacementPolicy::Lru {
            // Move to MRU position (LRU only; FIFO/Random keep
            // insertion order): rotate [0..=pos] right by one.
            set.copy_within(0..pos, 1);
            set[0] = line;
        }
        (true, false)
    } else if occ == set.len() {
        // Full set: drop the victim, insert at MRU. Equivalent to
        // the old `remove(victim); insert(0, line)` — ways above the
        // victim keep their order, ways below shift down one.
        let victim = victim_index(policy, rng_state, occ);
        set.copy_within(0..victim, 1);
        set[0] = line;
        (false, false)
    } else {
        set.copy_within(0..occ, 1);
        set[0] = line;
        (false, true)
    }
}

/// Index of the victim way in a full set under `policy`.
#[inline]
fn victim_index(policy: ReplacementPolicy, rng_state: &mut u64, set_len: usize) -> usize {
    match policy {
        // Sets are kept in recency order (MRU first), so both LRU
        // and FIFO evict the last element; they differ in whether
        // hits refresh position.
        ReplacementPolicy::Lru | ReplacementPolicy::Fifo => set_len - 1,
        ReplacementPolicy::Random => (next_random(rng_state) % set_len as u64) as usize,
    }
}

/// xorshift64*: deterministic, cheap, good enough for victim selection.
#[inline]
fn next_random(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Removes `line` from a set's valid-entry slice, closing the gap so
/// recency order is preserved. Returns whether it was present.
#[inline]
fn remove_from_set<T: Copy + PartialEq>(set: &mut [T], line: T) -> bool {
    if let Some(pos) = set.iter().position(|&l| l == line) {
        set.copy_within(pos + 1.., pos);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways, 64-byte lines.
        SetAssocCache::new(CacheParams::new(256, 2, 64, 1))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets). Ways = 2.
        c.access(0);
        c.access(2);
        c.access(0); // 0 becomes MRU; LRU is 2
        c.access(4); // evicts 2
        assert!(c.probe(0));
        assert!(!c.probe(2));
        assert!(c.probe(4));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(1); // set 1
        c.access(2); // set 0
        c.access(3); // set 1
        assert!(c.probe(0) && c.probe(1) && c.probe(2) && c.probe(3));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.access(0);
        c.access(2);
        // probing 0 must NOT refresh it.
        assert!(c.probe(0));
        c.access(4); // evicts LRU = 0
        assert!(!c.probe(0));
        assert!(c.probe(2));
    }

    #[test]
    fn fill_does_not_count_stats() {
        let mut c = tiny();
        assert!(!c.fill(0));
        assert!(c.fill(0));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.access(0)); // but the line is usable
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.access(0);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(0));
        assert!(!c.probe(0));
    }

    #[test]
    fn invalidate_middle_way_preserves_recency_order() {
        // 1 set x 4 ways: recency order is fully observable via
        // subsequent evictions.
        let mut c = SetAssocCache::new(CacheParams::new(256, 4, 64, 1));
        c.access(0);
        c.access(1);
        c.access(2);
        c.access(3); // recency (MRU..LRU): 3 2 1 0
        assert!(c.invalidate(2)); // recency: 3 1 0
        c.access(4); // fills the free way: 4 3 1 0
        c.access(5); // evicts LRU = 0
        assert!(!c.probe(0));
        assert!(c.probe(1) && c.probe(3) && c.probe(4) && c.probe(5));
    }

    #[test]
    fn flush_empties_but_keeps_stats() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_respected() {
        let mut c = tiny();
        for line in 0..100 {
            c.access(line);
        }
        assert!(c.resident_lines() <= 4);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.access(0);
        c.reset_stats();
        assert_eq!(c.misses(), 0);
        assert!(c.probe(0));
    }

    #[test]
    fn hit_rate_empty_is_zero() {
        assert_eq!(tiny().hit_rate(), 0.0);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = SetAssocCache::new(CacheParams::new(32 * 1024, 4, 64, 3));
        let lines = c.params().num_lines() * 2;
        // Two sequential sweeps over 2x capacity: second sweep still misses
        // everywhere under LRU.
        for _ in 0..2 {
            for line in 0..lines {
                c.access(line);
            }
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), lines * 2);
    }

    #[test]
    fn working_set_smaller_than_cache_stays_resident() {
        let mut c = SetAssocCache::new(CacheParams::new(32 * 1024, 4, 64, 3));
        let lines = c.params().num_lines() / 2;
        for line in 0..lines {
            c.access(line);
        }
        for line in 0..lines {
            assert!(c.access(line), "line {line} should be resident");
        }
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    fn tiny_with(policy: ReplacementPolicy) -> SetAssocCache {
        SetAssocCache::with_policy(CacheParams::new(256, 2, 64, 1), policy)
    }

    #[test]
    fn fifo_does_not_refresh_on_hit() {
        let mut c = tiny_with(ReplacementPolicy::Fifo);
        // Set 0 candidates: 0, 2, 4 (2 sets).
        c.access(0);
        c.access(2);
        c.access(0); // hit, but FIFO keeps 0 as the oldest
        c.access(4); // evicts the oldest = 0 under FIFO
        assert!(!c.probe(0), "FIFO must evict the first-inserted line");
        assert!(c.probe(2) && c.probe(4));
    }

    #[test]
    fn lru_refresh_differs_from_fifo() {
        let mut c = tiny_with(ReplacementPolicy::Lru);
        c.access(0);
        c.access(2);
        c.access(0);
        c.access(4); // LRU evicts 2
        assert!(c.probe(0) && !c.probe(2));
    }

    #[test]
    fn random_policy_is_deterministic_and_bounded() {
        let run = || {
            let mut c = tiny_with(ReplacementPolicy::Random);
            for line in 0..200u64 {
                c.access(line % 16);
            }
            (c.hits(), c.misses(), c.resident_lines())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "random policy must be reproducible");
        assert!(a.2 <= 4);
    }

    #[test]
    fn seeded_random_decorrelates_but_stays_deterministic() {
        let run = |salt| {
            let mut c = SetAssocCache::with_policy_seeded(
                CacheParams::new(512, 2, 64, 1),
                ReplacementPolicy::Random,
                salt,
            );
            let mut trace = Vec::new();
            for i in 0..400u64 {
                trace.push(c.access(4 * (i % 9)));
            }
            trace
        };
        assert_eq!(run(1), run(1), "same salt must reproduce");
        assert_ne!(
            run(1),
            run(2),
            "different salts should pick different victim sequences"
        );
    }

    #[test]
    fn seeded_with_salt_zero_is_not_forced_legacy() {
        // Salt 0 still goes through the mixer: with_policy_seeded(_, _, 0)
        // is a *different* victim stream from the legacy constant, by
        // design — callers opt into legacy behaviour via with_policy.
        let trace = |mut c: SetAssocCache| -> Vec<bool> {
            (0..400u64).map(|i| c.access(4 * (i % 9))).collect()
        };
        let legacy = trace(SetAssocCache::with_policy(
            CacheParams::new(512, 2, 64, 1),
            ReplacementPolicy::Random,
        ));
        let seeded = trace(SetAssocCache::with_policy_seeded(
            CacheParams::new(512, 2, 64, 1),
            ReplacementPolicy::Random,
            0,
        ));
        assert_ne!(legacy, seeded);
    }

    #[test]
    fn non_random_policies_ignore_seed() {
        // Lru never consumes the RNG, so seeded and legacy construction
        // must produce identical hit/miss traces.
        let run = |c: &mut SetAssocCache| -> Vec<bool> {
            (0..300u64).map(|i| c.access(4 * (i % 7))).collect()
        };
        let mut a = tiny_with(ReplacementPolicy::Lru);
        let mut b = SetAssocCache::with_policy_seeded(
            CacheParams::new(256, 2, 64, 1),
            ReplacementPolicy::Lru,
            0xDEAD_BEEF,
        );
        assert_eq!(run(&mut a), run(&mut b));
    }

    #[test]
    fn policy_accessor() {
        assert_eq!(
            tiny_with(ReplacementPolicy::Fifo).policy(),
            ReplacementPolicy::Fifo
        );
        assert_eq!(
            SetAssocCache::new(CacheParams::new(256, 2, 64, 1)).policy(),
            ReplacementPolicy::Lru
        );
    }

    #[test]
    fn lru_beats_fifo_and_random_on_skewed_reuse() {
        // A hot line re-touched constantly plus a conflict stream: LRU
        // protects the hot line best.
        let rate = |policy| {
            let mut c = SetAssocCache::with_policy(CacheParams::new(512, 2, 64, 1), policy);
            for i in 0..4000u64 {
                c.access(0); // hot
                c.access(4 * (i % 7) + 8); // conflicting stream, same set
            }
            c.hit_rate()
        };
        let lru = rate(ReplacementPolicy::Lru);
        let fifo = rate(ReplacementPolicy::Fifo);
        assert!(lru >= fifo, "LRU {lru} should be at least FIFO {fifo}");
    }
}
