//! A trace cache modelled after the Krick et al. patent ("Trace based
//! instruction caching", US 6,018,786), used by the appendix's Figure 3.
//!
//! A *trace* is a recorded run of consecutively fetched lines starting at a
//! head line. On a head hit, subsequent fetches that follow the recorded
//! trace bypass the i-cache entirely (zero fetch cost in our timing
//! model). The appendix observes that with >250 KB footprints, traces of
//! different SuperFunctions keep evicting each other, so the technique
//! barely changes the relative results — our model reproduces exactly that
//! contention behaviour through its bounded entry count.

use std::collections::VecDeque;

/// Per-core trace cache.
///
/// # Examples
///
/// ```
/// use schedtask_sim::TraceCache;
///
/// let mut tc = TraceCache::new(4, 3);
/// // First pass records a trace; second pass hits it.
/// for _ in 0..2 {
///     for line in [10, 11, 12] {
///         tc.fetch(line);
///     }
/// }
/// assert!(tc.covered_fetches() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct TraceCache {
    entries: usize,
    trace_lines: usize,
    /// Stored traces in LRU order (front = MRU): (head, lines).
    traces: VecDeque<(u64, Vec<u64>)>,
    /// Trace currently being recorded.
    recording: Vec<u64>,
    /// Position in a currently-followed trace: (trace head, next index).
    following: Option<(u64, usize)>,
    covered: u64,
    total: u64,
}

impl TraceCache {
    /// Creates a trace cache with `entries` traces of up to `trace_lines`
    /// lines each.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `trace_lines` < 2.
    pub fn new(entries: u32, trace_lines: u32) -> Self {
        assert!(entries > 0, "need at least one trace entry");
        assert!(trace_lines >= 2, "a trace shorter than 2 lines is useless");
        TraceCache {
            entries: entries as usize,
            trace_lines: trace_lines as usize,
            traces: VecDeque::new(),
            recording: Vec::new(),
            following: None,
            covered: 0,
            total: 0,
        }
    }

    fn find_trace(&self, head: u64) -> Option<usize> {
        self.traces.iter().position(|(h, _)| *h == head)
    }

    /// Feeds the next demand-fetched line; returns `true` when the fetch
    /// is covered by a stored trace (i.e. the i-cache can be bypassed).
    pub fn fetch(&mut self, line: u64) -> bool {
        self.total += 1;

        // Are we in the middle of following a trace?
        if let Some((head, idx)) = self.following {
            // A followed trace can only vanish through eviction, which
            // clears `following`; treat a miss as a divergence anyway.
            debug_assert!(self.find_trace(head).is_some(), "followed trace must exist");
            if let Some(pos) = self.find_trace(head) {
                let matches = self.traces[pos].1.get(idx) == Some(&line);
                if matches {
                    let done = idx + 1 >= self.traces[pos].1.len();
                    self.following = if done { None } else { Some((head, idx + 1)) };
                    self.covered += 1;
                    return true;
                }
            }
            // Diverged from the recorded trace.
            self.following = None;
        }

        // Does a trace start here?
        if let Some(pos) = self.find_trace(line) {
            // Refresh LRU and start following (the head itself still costs
            // one i-cache access — only subsequent lines are covered).
            if let Some(t) = self.traces.remove(pos) {
                self.traces.push_front(t);
                if self.traces[0].1.len() > 1 {
                    self.following = Some((line, 1));
                }
            }
            self.record(line);
            return false;
        }

        self.record(line);
        false
    }

    fn record(&mut self, line: u64) {
        self.recording.push(line);
        if self.recording.len() == self.trace_lines {
            let head = self.recording[0];
            let trace = std::mem::take(&mut self.recording);
            if let Some(pos) = self.find_trace(head) {
                self.traces.remove(pos);
            } else if self.traces.len() == self.entries {
                self.traces.pop_back();
            }
            self.traces.push_front((head, trace));
        }
    }

    /// Fetches covered by a trace (bypassing the i-cache).
    pub fn covered_fetches(&self) -> u64 {
        self.covered
    }

    /// Total fetches observed.
    pub fn total_fetches(&self) -> u64 {
        self.total
    }

    /// Fraction of fetches covered; 0.0 before any fetch.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }

    /// Number of stored traces.
    pub fn stored_traces(&self) -> usize {
        self.traces.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_run_gets_covered() {
        let mut tc = TraceCache::new(8, 4);
        let run: Vec<u64> = (100..108).collect();
        for _ in 0..3 {
            for &l in &run {
                tc.fetch(l);
            }
        }
        // Two traces of 4 lines each get recorded on pass 1; passes 2-3
        // cover 3 of every 4 lines (heads still cost a fetch).
        assert!(tc.coverage() > 0.4, "coverage = {}", tc.coverage());
    }

    #[test]
    fn divergent_path_stops_following() {
        let mut tc = TraceCache::new(8, 3);
        for &l in &[1u64, 2, 3] {
            tc.fetch(l);
        }
        // Head hit, but the second line diverges.
        assert!(!tc.fetch(1)); // head
        assert!(!tc.fetch(99)); // diverged: not covered
        assert_eq!(tc.covered_fetches(), 0);
    }

    #[test]
    fn capacity_evicts_lru_traces() {
        let mut tc = TraceCache::new(2, 2);
        for head in [10u64, 20, 30] {
            tc.fetch(head);
            tc.fetch(head + 1);
        }
        assert_eq!(tc.stored_traces(), 2);
        // Oldest trace (head 10) evicted: re-fetching it is uncovered.
        assert!(!tc.fetch(10));
        assert!(!tc.fetch(11));
    }

    #[test]
    fn thrashing_many_streams_yields_low_coverage() {
        // More distinct streams than entries: traces evict each other, as
        // the appendix observes for >250 KB footprints.
        let mut tc = TraceCache::new(4, 4);
        for round in 0..4 {
            let _ = round;
            for stream in 0..16u64 {
                for off in 0..8u64 {
                    tc.fetch(stream * 1000 + off);
                }
            }
        }
        assert!(tc.coverage() < 0.2, "coverage = {}", tc.coverage());
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn zero_entries_rejected() {
        TraceCache::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "shorter than 2")]
    fn one_line_traces_rejected() {
        TraceCache::new(4, 1);
    }
}
