//! Directory-based coherence (Table 2: "Directory based MOESI").
//!
//! The directory tracks, per data line, which cores hold it and whether
//! one of them holds it modified. The memory system consults it on
//! every data access:
//!
//! * a **write** by a core that is not the exclusive owner invalidates
//!   every other sharer's private copy (an upgrade/ownership transfer);
//! * a **read** of a line another core holds modified is served by a
//!   cache-to-cache transfer, downgrading the owner to shared.
//!
//! States are tracked at directory granularity (Invalid / Shared /
//! Modified — the O and E refinements of MOESI change who *supplies*
//! data, not who gets invalidated, and the timing model charges the
//! supplier uniformly at LLC latency).
//!
//! # Data layout
//!
//! Entries live in a seeded open-addressed table (linear probing with
//! backward-shift deletion) over three parallel flat arrays: line ids,
//! sharer bitmasks (`u64` words, one bit per core — never a
//! `Vec<usize>`), and a one-byte occupied/modified flag that doubles as
//! the empty-slot sentinel, so arbitrary `u64` line ids need no reserved
//! value. The table is point-queried only — nothing ever iterates the
//! entries — so any map with identical get/insert/remove semantics is
//! observationally equivalent to the previous `HashMap<u64, Entry>`;
//! only the wall-clock cost changes.

/// Directory-visible state of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// No private cache holds the line.
    Invalid,
    /// One or more cores hold the line clean.
    Shared,
    /// Exactly one core holds the line dirty.
    Modified,
}

/// What a read request needs, as decided by the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Serve from the LLC/memory path (no remote private copy matters).
    FromMemoryPath,
    /// Serve by cache-to-cache transfer from the modified owner, which
    /// is downgraded to shared.
    CacheToCache {
        /// The core that held the line modified.
        owner: usize,
    },
}

/// A set of cores as a bitmask (bit `c` = core `c`). Replaces the
/// `Vec<usize>` invalidation lists the directory used to allocate on
/// every write; iteration yields cores in ascending order, matching the
/// old vector order exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerMask(u64);

impl SharerMask {
    /// The empty set.
    pub const EMPTY: SharerMask = SharerMask(0);

    /// Wraps a raw bitmask.
    pub fn from_bits(bits: u64) -> Self {
        SharerMask(bits)
    }

    /// The raw bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Whether `core` is in the set.
    pub fn contains(self, core: usize) -> bool {
        core < 64 && self.0 & (1u64 << core) != 0
    }

    /// Number of cores in the set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True when no core is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates member cores in ascending order.
    pub fn iter(self) -> SharerIter {
        SharerIter(self.0)
    }
}

impl IntoIterator for SharerMask {
    type Item = usize;
    type IntoIter = SharerIter;
    fn into_iter(self) -> SharerIter {
        self.iter()
    }
}

/// Iterator over the cores of a [`SharerMask`], ascending.
#[derive(Debug, Clone)]
pub struct SharerIter(u64);

impl Iterator for SharerIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let c = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(c)
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SharerIter {}

/// What a write request needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Cores whose private copies must be invalidated.
    pub invalidate: SharerMask,
    /// True when the writer already held the line modified (silent
    /// upgrade — no coherence traffic).
    pub silent: bool,
}

/// Slot flag: the slot holds a live entry.
const OCCUPIED: u8 = 1;
/// Slot flag: the entry's line is held modified by its single sharer.
const MODIFIED: u8 = 2;

/// The coherence directory.
///
/// # Examples
///
/// ```
/// use schedtask_sim::coherence::{Directory, ReadOutcome};
///
/// let mut dir = Directory::new(4);
/// dir.on_write(0, 100);                 // core 0 owns line 100 modified
/// let r = dir.on_read(1, 100);          // core 1 reads it
/// assert_eq!(r, ReadOutcome::CacheToCache { owner: 0 });
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    num_cores: usize,
    /// Line id per slot (valid only where `meta` has [`OCCUPIED`]).
    keys: Box<[u64]>,
    /// Sharer bitmask per slot.
    sharers: Box<[u64]>,
    /// Per-slot [`OCCUPIED`] / [`MODIFIED`] flags; 0 = empty sentinel.
    meta: Box<[u8]>,
    /// Capacity minus one (capacity is a power of two).
    mask: usize,
    len: usize,
    /// Hash seed, mixed into every probe start.
    seed: u64,
    invalidations: u64,
    transfers: u64,
    upgrades: u64,
    downgrades: u64,
}

const MIN_CAPACITY: usize = 64;

/// Fixed hash seed: the directory must behave identically across runs
/// (the determinism contract), so the seed decorrelates probe chains
/// from raw line ids without introducing run-to-run variation.
const DEFAULT_HASH_SEED: u64 = 0x5EED_0D1C_ECAF_E001;

impl Directory {
    /// Creates a directory for `num_cores` cores with the default
    /// (growable) table size.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or exceeds 64 (the sharer bitmask
    /// width).
    pub fn new(num_cores: usize) -> Self {
        Self::with_capacity(num_cores, MIN_CAPACITY)
    }

    /// Creates a directory pre-sized for roughly `expected_lines`
    /// tracked lines (callers size this from the cache geometry, e.g.
    /// `CacheParams::num_lines` of the LLC). The table still grows if
    /// the estimate is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or exceeds 64.
    pub fn with_capacity(num_cores: usize, expected_lines: usize) -> Self {
        assert!(
            (1..=64).contains(&num_cores),
            "directory supports 1-64 cores"
        );
        // Size so `expected_lines` stays under the 7/8 load factor.
        let capacity = (expected_lines.max(MIN_CAPACITY) * 8 / 7 + 1).next_power_of_two();
        Directory {
            num_cores,
            keys: vec![0; capacity].into_boxed_slice(),
            sharers: vec![0; capacity].into_boxed_slice(),
            meta: vec![0; capacity].into_boxed_slice(),
            mask: capacity - 1,
            len: 0,
            seed: DEFAULT_HASH_SEED,
            invalidations: 0,
            transfers: 0,
            upgrades: 0,
            downgrades: 0,
        }
    }

    #[inline]
    fn home_slot(&self, line: u64) -> usize {
        // Fibonacci (multiplicative) hashing, seeded; the high product
        // bits are the best mixed, so take them before masking.
        ((line ^ self.seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Slot of `line`, if tracked.
    #[inline]
    fn find(&self, line: u64) -> Option<usize> {
        let mut i = self.home_slot(line);
        loop {
            if self.meta[i] & OCCUPIED == 0 {
                return None;
            }
            if self.keys[i] == line {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Slot of `line`, inserting an empty entry if absent (the
    /// `entry().or_default()` of the old map).
    #[inline]
    fn find_or_insert(&mut self, line: u64) -> usize {
        if (self.len + 1) * 8 > (self.mask + 1) * 7 {
            self.grow();
        }
        let mut i = self.home_slot(line);
        loop {
            if self.meta[i] & OCCUPIED == 0 {
                self.keys[i] = line;
                self.sharers[i] = 0;
                self.meta[i] = OCCUPIED;
                self.len += 1;
                return i;
            }
            if self.keys[i] == line {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_capacity = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_capacity].into_boxed_slice());
        let old_sharers =
            std::mem::replace(&mut self.sharers, vec![0; new_capacity].into_boxed_slice());
        let old_meta = std::mem::replace(&mut self.meta, vec![0; new_capacity].into_boxed_slice());
        self.mask = new_capacity - 1;
        for slot in 0..old_meta.len() {
            if old_meta[slot] & OCCUPIED != 0 {
                let mut i = self.home_slot(old_keys[slot]);
                while self.meta[i] & OCCUPIED != 0 {
                    i = (i + 1) & self.mask;
                }
                self.keys[i] = old_keys[slot];
                self.sharers[i] = old_sharers[slot];
                self.meta[i] = old_meta[slot];
            }
        }
    }

    /// Removes the entry at `slot`, backward-shifting the probe chain so
    /// no tombstones accumulate.
    fn remove_slot(&mut self, mut hole: usize) {
        self.meta[hole] = 0;
        self.len -= 1;
        let mut j = (hole + 1) & self.mask;
        while self.meta[j] & OCCUPIED != 0 {
            let home = self.home_slot(self.keys[j]);
            // The entry at j may keep its slot only if its home lies
            // cyclically within (hole, j]; otherwise the new hole would
            // break its probe chain, so it moves into the hole.
            let stays = if hole <= j {
                hole < home && home <= j
            } else {
                hole < home || home <= j
            };
            if !stays {
                self.keys[hole] = self.keys[j];
                self.sharers[hole] = self.sharers[j];
                self.meta[hole] = self.meta[j];
                self.meta[j] = 0;
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
    }

    /// The directory state of `line`.
    pub fn state_of(&self, line: u64) -> LineState {
        match self.find(line) {
            None => LineState::Invalid,
            Some(i) if self.sharers[i] == 0 => LineState::Invalid,
            Some(i) if self.meta[i] & MODIFIED != 0 => LineState::Modified,
            Some(_) => LineState::Shared,
        }
    }

    /// Registers a read by `core`; returns how the data is supplied.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn on_read(&mut self, core: usize, line: u64) -> ReadOutcome {
        assert!(core < self.num_cores, "core out of range");
        let i = self.find_or_insert(line);
        let bit = 1u64 << core;
        if self.meta[i] & MODIFIED != 0 && self.sharers[i] & bit == 0 {
            // Another core holds it modified: cache-to-cache, downgrade.
            let owner = self.sharers[i].trailing_zeros() as usize;
            self.meta[i] &= !MODIFIED;
            self.sharers[i] |= bit;
            self.transfers += 1;
            self.downgrades += 1;
            ReadOutcome::CacheToCache { owner }
        } else {
            self.sharers[i] |= bit;
            ReadOutcome::FromMemoryPath
        }
    }

    /// Registers a write by `core`; returns the invalidation set.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn on_write(&mut self, core: usize, line: u64) -> WriteOutcome {
        assert!(core < self.num_cores, "core out of range");
        let i = self.find_or_insert(line);
        let bit = 1u64 << core;
        if self.meta[i] & MODIFIED != 0 && self.sharers[i] == bit {
            // Already the exclusive modified owner: silent.
            return WriteOutcome {
                invalidate: SharerMask::EMPTY,
                silent: true,
            };
        }
        // Sharer bits are only ever set for in-range cores, so no extra
        // num_cores masking is needed here.
        let others = self.sharers[i] & !bit;
        self.invalidations += u64::from(others.count_ones());
        if others != 0 || self.sharers[i] & bit != 0 {
            self.upgrades += 1;
        }
        self.sharers[i] = bit;
        self.meta[i] |= MODIFIED;
        WriteOutcome {
            invalidate: SharerMask(others),
            silent: false,
        }
    }

    /// Registers that `core` evicted its copy of `line` (the directory
    /// stops tracking it as a sharer).
    pub fn on_evict(&mut self, core: usize, line: u64) {
        if let Some(i) = self.find(line) {
            self.sharers[i] &= !(1u64 << core);
            if self.sharers[i] == 0 {
                self.remove_slot(i);
            }
        }
    }

    /// Total invalidation messages sent.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Total cache-to-cache transfers.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Ownership upgrades (writes that found other sharers or a shared
    /// self-copy).
    pub fn upgrades(&self) -> u64 {
        self.upgrades
    }

    /// Modified→Shared downgrades.
    pub fn downgrades(&self) -> u64 {
        self.downgrades
    }

    /// Lines currently tracked.
    pub fn tracked_lines(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_line_is_invalid() {
        let dir = Directory::new(4);
        assert_eq!(dir.state_of(5), LineState::Invalid);
    }

    #[test]
    fn read_makes_shared_write_makes_modified() {
        let mut dir = Directory::new(4);
        assert_eq!(dir.on_read(0, 1), ReadOutcome::FromMemoryPath);
        assert_eq!(dir.state_of(1), LineState::Shared);
        dir.on_write(0, 1);
        assert_eq!(dir.state_of(1), LineState::Modified);
    }

    #[test]
    fn write_invalidates_all_other_sharers() {
        let mut dir = Directory::new(8);
        for c in 0..5 {
            dir.on_read(c, 9);
        }
        let w = dir.on_write(5, 9);
        assert_eq!(w.invalidate.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert!(!w.silent);
        assert_eq!(dir.invalidations(), 5);
        assert_eq!(dir.state_of(9), LineState::Modified);
    }

    #[test]
    fn repeat_writes_by_owner_are_silent() {
        let mut dir = Directory::new(2);
        dir.on_write(0, 3);
        let w = dir.on_write(0, 3);
        assert!(w.silent);
        assert!(w.invalidate.is_empty());
    }

    #[test]
    fn read_of_modified_line_is_cache_to_cache_and_downgrades() {
        let mut dir = Directory::new(4);
        dir.on_write(2, 7);
        assert_eq!(dir.on_read(0, 7), ReadOutcome::CacheToCache { owner: 2 });
        assert_eq!(dir.state_of(7), LineState::Shared);
        assert_eq!(dir.transfers(), 1);
        assert_eq!(dir.downgrades(), 1);
        // Subsequent reads are plain shared reads.
        assert_eq!(dir.on_read(1, 7), ReadOutcome::FromMemoryPath);
    }

    #[test]
    fn owner_rereading_its_own_modified_line_is_local() {
        let mut dir = Directory::new(4);
        dir.on_write(1, 11);
        assert_eq!(dir.on_read(1, 11), ReadOutcome::FromMemoryPath);
        assert_eq!(dir.state_of(11), LineState::Modified);
    }

    #[test]
    fn evictions_clear_tracking() {
        let mut dir = Directory::new(4);
        dir.on_read(0, 2);
        dir.on_read(1, 2);
        dir.on_evict(0, 2);
        assert_eq!(dir.state_of(2), LineState::Shared);
        dir.on_evict(1, 2);
        assert_eq!(dir.state_of(2), LineState::Invalid);
        assert_eq!(dir.tracked_lines(), 0);
    }

    #[test]
    fn upgrade_from_shared_self_copy_counts() {
        let mut dir = Directory::new(4);
        dir.on_read(0, 4);
        let w = dir.on_write(0, 4); // S -> M upgrade, no other sharers
        assert!(w.invalidate.is_empty());
        assert!(!w.silent);
        assert_eq!(dir.upgrades(), 1);
    }

    #[test]
    fn table_grows_past_initial_capacity() {
        let mut dir = Directory::new(4);
        for line in 0..10_000u64 {
            dir.on_read(line as usize % 4, line * 7 + 1);
        }
        assert_eq!(dir.tracked_lines(), 10_000);
        for line in 0..10_000u64 {
            assert_ne!(
                dir.state_of(line * 7 + 1),
                LineState::Invalid,
                "line {line}"
            );
        }
    }

    #[test]
    fn eviction_churn_preserves_probe_chains() {
        // Insert colliding-ish keys, delete half, verify the rest are
        // still findable (backward-shift correctness).
        let mut dir = Directory::new(2);
        let lines: Vec<u64> = (0..500u64).map(|i| i * 64).collect();
        for &l in &lines {
            dir.on_read(0, l);
        }
        for &l in lines.iter().step_by(2) {
            dir.on_evict(0, l);
        }
        for (i, &l) in lines.iter().enumerate() {
            let expect = if i % 2 == 0 {
                LineState::Invalid
            } else {
                LineState::Shared
            };
            assert_eq!(dir.state_of(l), expect, "line {l}");
        }
        assert_eq!(dir.tracked_lines(), lines.len() / 2);
    }

    #[test]
    fn with_capacity_presizes_without_changing_behaviour() {
        let mut small = Directory::new(4);
        let mut big = Directory::with_capacity(4, 4096);
        for line in 0..2_000u64 {
            let c = (line % 4) as usize;
            assert_eq!(small.on_read(c, line), big.on_read(c, line));
            if line % 3 == 0 {
                assert_eq!(small.on_write(c, line), big.on_write(c, line));
            }
        }
        assert_eq!(small.tracked_lines(), big.tracked_lines());
        assert_eq!(small.invalidations(), big.invalidations());
    }

    #[test]
    fn sharer_mask_iterates_ascending() {
        let m = SharerMask::from_bits(0b1010_0101);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 2, 5, 7]);
        assert_eq!(m.count(), 4);
        assert!(m.contains(5) && !m.contains(1) && !m.contains(64));
        assert_eq!(m.iter().len(), 4);
        assert!(SharerMask::EMPTY.is_empty());
    }

    #[test]
    #[should_panic(expected = "1-64 cores")]
    fn too_many_cores_rejected() {
        Directory::new(65);
    }

    #[test]
    #[should_panic(expected = "core out of range")]
    fn out_of_range_core_rejected() {
        Directory::new(2).on_read(2, 0);
    }
}
