//! Directory-based coherence (Table 2: "Directory based MOESI").
//!
//! The directory tracks, per data line, which cores hold it and whether
//! one of them holds it modified. The memory system consults it on
//! every data access:
//!
//! * a **write** by a core that is not the exclusive owner invalidates
//!   every other sharer's private copy (an upgrade/ownership transfer);
//! * a **read** of a line another core holds modified is served by a
//!   cache-to-cache transfer, downgrading the owner to shared.
//!
//! States are tracked at directory granularity (Invalid / Shared /
//! Modified — the O and E refinements of MOESI change who *supplies*
//! data, not who gets invalidated, and the timing model charges the
//! supplier uniformly at LLC latency).

/// Directory-visible state of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// No private cache holds the line.
    Invalid,
    /// One or more cores hold the line clean.
    Shared,
    /// Exactly one core holds the line dirty.
    Modified,
}

/// What a read request needs, as decided by the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Serve from the LLC/memory path (no remote private copy matters).
    FromMemoryPath,
    /// Serve by cache-to-cache transfer from the modified owner, which
    /// is downgraded to shared.
    CacheToCache {
        /// The core that held the line modified.
        owner: usize,
    },
}

/// What a write request needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Cores whose private copies must be invalidated.
    pub invalidate: Vec<usize>,
    /// True when the writer already held the line modified (silent
    /// upgrade — no coherence traffic).
    pub silent: bool,
}

/// Per-line sharer tracking for up to 64 cores.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    sharers: u64,
    /// Valid only when exactly one bit of `sharers` is set and the line
    /// is dirty.
    modified: bool,
}

/// The coherence directory.
///
/// # Examples
///
/// ```
/// use schedtask_sim::coherence::{Directory, ReadOutcome};
///
/// let mut dir = Directory::new(4);
/// dir.on_write(0, 100);                 // core 0 owns line 100 modified
/// let r = dir.on_read(1, 100);          // core 1 reads it
/// assert_eq!(r, ReadOutcome::CacheToCache { owner: 0 });
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    num_cores: usize,
    entries: std::collections::HashMap<u64, Entry>,
    invalidations: u64,
    transfers: u64,
    upgrades: u64,
    downgrades: u64,
}

impl Directory {
    /// Creates a directory for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or exceeds 64 (the sharer bitmask
    /// width).
    pub fn new(num_cores: usize) -> Self {
        assert!(
            (1..=64).contains(&num_cores),
            "directory supports 1-64 cores"
        );
        Directory {
            num_cores,
            entries: std::collections::HashMap::new(),
            invalidations: 0,
            transfers: 0,
            upgrades: 0,
            downgrades: 0,
        }
    }

    /// The directory state of `line`.
    pub fn state_of(&self, line: u64) -> LineState {
        match self.entries.get(&line) {
            None => LineState::Invalid,
            Some(e) if e.sharers == 0 => LineState::Invalid,
            Some(e) if e.modified => LineState::Modified,
            Some(_) => LineState::Shared,
        }
    }

    /// Registers a read by `core`; returns how the data is supplied.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn on_read(&mut self, core: usize, line: u64) -> ReadOutcome {
        assert!(core < self.num_cores, "core out of range");
        let e = self.entries.entry(line).or_default();
        let bit = 1u64 << core;
        if e.modified && e.sharers & bit == 0 {
            // Another core holds it modified: cache-to-cache, downgrade.
            let owner = e.sharers.trailing_zeros() as usize;
            e.modified = false;
            e.sharers |= bit;
            self.transfers += 1;
            self.downgrades += 1;
            ReadOutcome::CacheToCache { owner }
        } else {
            e.sharers |= bit;
            ReadOutcome::FromMemoryPath
        }
    }

    /// Registers a write by `core`; returns the invalidation set.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn on_write(&mut self, core: usize, line: u64) -> WriteOutcome {
        assert!(core < self.num_cores, "core out of range");
        let e = self.entries.entry(line).or_default();
        let bit = 1u64 << core;
        if e.modified && e.sharers == bit {
            // Already the exclusive modified owner: silent.
            return WriteOutcome {
                invalidate: Vec::new(),
                silent: true,
            };
        }
        let mut invalidate = Vec::new();
        let others = e.sharers & !bit;
        for c in 0..self.num_cores {
            if others & (1u64 << c) != 0 {
                invalidate.push(c);
            }
        }
        self.invalidations += invalidate.len() as u64;
        if !invalidate.is_empty() || e.sharers & bit != 0 {
            self.upgrades += 1;
        }
        e.sharers = bit;
        e.modified = true;
        WriteOutcome {
            invalidate,
            silent: false,
        }
    }

    /// Registers that `core` evicted its copy of `line` (the directory
    /// stops tracking it as a sharer).
    pub fn on_evict(&mut self, core: usize, line: u64) {
        if let Some(e) = self.entries.get_mut(&line) {
            e.sharers &= !(1u64 << core);
            if e.sharers == 0 {
                e.modified = false;
                self.entries.remove(&line);
            }
        }
    }

    /// Total invalidation messages sent.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Total cache-to-cache transfers.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Ownership upgrades (writes that found other sharers or a shared
    /// self-copy).
    pub fn upgrades(&self) -> u64 {
        self.upgrades
    }

    /// Modified→Shared downgrades.
    pub fn downgrades(&self) -> u64 {
        self.downgrades
    }

    /// Lines currently tracked.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_line_is_invalid() {
        let dir = Directory::new(4);
        assert_eq!(dir.state_of(5), LineState::Invalid);
    }

    #[test]
    fn read_makes_shared_write_makes_modified() {
        let mut dir = Directory::new(4);
        assert_eq!(dir.on_read(0, 1), ReadOutcome::FromMemoryPath);
        assert_eq!(dir.state_of(1), LineState::Shared);
        dir.on_write(0, 1);
        assert_eq!(dir.state_of(1), LineState::Modified);
    }

    #[test]
    fn write_invalidates_all_other_sharers() {
        let mut dir = Directory::new(8);
        for c in 0..5 {
            dir.on_read(c, 9);
        }
        let w = dir.on_write(5, 9);
        assert_eq!(w.invalidate, vec![0, 1, 2, 3, 4]);
        assert!(!w.silent);
        assert_eq!(dir.invalidations(), 5);
        assert_eq!(dir.state_of(9), LineState::Modified);
    }

    #[test]
    fn repeat_writes_by_owner_are_silent() {
        let mut dir = Directory::new(2);
        dir.on_write(0, 3);
        let w = dir.on_write(0, 3);
        assert!(w.silent);
        assert!(w.invalidate.is_empty());
    }

    #[test]
    fn read_of_modified_line_is_cache_to_cache_and_downgrades() {
        let mut dir = Directory::new(4);
        dir.on_write(2, 7);
        assert_eq!(dir.on_read(0, 7), ReadOutcome::CacheToCache { owner: 2 });
        assert_eq!(dir.state_of(7), LineState::Shared);
        assert_eq!(dir.transfers(), 1);
        assert_eq!(dir.downgrades(), 1);
        // Subsequent reads are plain shared reads.
        assert_eq!(dir.on_read(1, 7), ReadOutcome::FromMemoryPath);
    }

    #[test]
    fn owner_rereading_its_own_modified_line_is_local() {
        let mut dir = Directory::new(4);
        dir.on_write(1, 11);
        assert_eq!(dir.on_read(1, 11), ReadOutcome::FromMemoryPath);
        assert_eq!(dir.state_of(11), LineState::Modified);
    }

    #[test]
    fn evictions_clear_tracking() {
        let mut dir = Directory::new(4);
        dir.on_read(0, 2);
        dir.on_read(1, 2);
        dir.on_evict(0, 2);
        assert_eq!(dir.state_of(2), LineState::Shared);
        dir.on_evict(1, 2);
        assert_eq!(dir.state_of(2), LineState::Invalid);
        assert_eq!(dir.tracked_lines(), 0);
    }

    #[test]
    fn upgrade_from_shared_self_copy_counts() {
        let mut dir = Directory::new(4);
        dir.on_read(0, 4);
        let w = dir.on_write(0, 4); // S -> M upgrade, no other sharers
        assert!(w.invalidate.is_empty());
        assert!(!w.silent);
        assert_eq!(dir.upgrades(), 1);
    }

    #[test]
    #[should_panic(expected = "1-64 cores")]
    fn too_many_cores_rejected() {
        Directory::new(65);
    }

    #[test]
    #[should_panic(expected = "core out of range")]
    fn out_of_range_core_rejected() {
        Directory::new(2).on_read(2, 0);
    }
}
