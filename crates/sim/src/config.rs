//! Machine configuration: Table 2 of the paper plus the appendix's
//! Config1/Config2/Config3 cache hierarchies, i-cache size sweeps, and core
//! count sweeps.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles.
    pub latency_cycles: u64,
}

impl CacheParams {
    /// Creates cache parameters.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or capacity is not a multiple of
    /// `associativity * line_bytes`.
    pub fn new(size_bytes: u64, associativity: u32, line_bytes: u64, latency_cycles: u64) -> Self {
        assert!(size_bytes > 0 && associativity > 0 && line_bytes > 0);
        assert!(
            size_bytes.is_multiple_of(associativity as u64 * line_bytes),
            "capacity must be a whole number of sets"
        );
        CacheParams {
            size_bytes,
            associativity,
            line_bytes,
            latency_cycles,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.associativity as u64 * self.line_bytes)
    }

    /// Number of lines the cache can hold.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

/// Shape of the cache hierarchy: private L1s plus either a private L2 and a
/// shared L3 (three levels, the paper's Table 2 baseline and the appendix's
/// Config3) or a shared L2 only (two levels, Config1/Config2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HierarchyConfig {
    /// Private per-core L1 instruction cache.
    pub l1i: CacheParams,
    /// Private per-core L1 data cache.
    pub l1d: CacheParams,
    /// Private per-core unified L2; `None` for two-level hierarchies.
    pub l2: Option<CacheParams>,
    /// Shared last-level cache (the paper's 8 MB NUCA L3, or the shared L2
    /// of Config1/Config2).
    pub llc: CacheParams,
    /// Main-memory access latency in cycles.
    pub memory_latency: u64,
}

impl HierarchyConfig {
    /// The paper's baseline (Table 2): 32 KB 4-way L1i/L1d at 3 cycles,
    /// 256 KB 4-way private L2 at 8 cycles, 8 MB 8-way shared L3 at 18
    /// cycles average.
    pub fn table2() -> Self {
        HierarchyConfig {
            l1i: CacheParams::new(32 * 1024, 4, 64, 3),
            l1d: CacheParams::new(32 * 1024, 4, 64, 3),
            l2: Some(CacheParams::new(256 * 1024, 4, 64, 8)),
            llc: CacheParams::new(8 * 1024 * 1024, 8, 64, 18),
            memory_latency: 200,
        }
    }

    /// Appendix Config1: two-level hierarchy, shared 8 MB L2 at 18 cycles.
    pub fn config1() -> Self {
        HierarchyConfig {
            l1i: CacheParams::new(32 * 1024, 4, 64, 3),
            l1d: CacheParams::new(32 * 1024, 4, 64, 3),
            l2: None,
            llc: CacheParams::new(8 * 1024 * 1024, 8, 64, 18),
            memory_latency: 200,
        }
    }

    /// Appendix Config2: two-level hierarchy, shared 8 MB L2 at 8 cycles
    /// (a faster LLC, so smaller miss penalties and smaller headroom for
    /// core specialization).
    pub fn config2() -> Self {
        HierarchyConfig {
            l1i: CacheParams::new(32 * 1024, 4, 64, 3),
            l1d: CacheParams::new(32 * 1024, 4, 64, 3),
            l2: None,
            llc: CacheParams::new(8 * 1024 * 1024, 8, 64, 8),
            memory_latency: 200,
        }
    }

    /// Appendix Config3: identical to [`HierarchyConfig::table2`] — the
    /// three-level hierarchy used in the main evaluation.
    pub fn config3() -> Self {
        Self::table2()
    }

    /// Same hierarchy with a different L1 i-cache capacity (appendix
    /// Table 2 sweeps 16 KB / 32 KB / 64 KB at 4 ways).
    pub fn with_icache_size(mut self, size_bytes: u64) -> Self {
        self.l1i = CacheParams::new(
            size_bytes,
            self.l1i.associativity,
            self.l1i.line_bytes,
            self.l1i.latency_cycles,
        );
        self
    }
}

/// Instruction prefetcher selection (appendix Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetcherConfig {
    /// No instruction prefetching (the main evaluation).
    #[default]
    None,
    /// Call-graph-prefetching-like history prefetcher (CGP, hardware-only
    /// mode): on each fetched line, prefetch up to `degree` predicted
    /// successor lines.
    CallGraph {
        /// How many successor lines to prefetch per trigger.
        degree: u32,
        /// Entries in the per-core successor history table.
        table_entries: u32,
    },
}

/// Trace-cache selection (appendix Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TraceCacheConfig {
    /// No trace cache (the main evaluation).
    #[default]
    None,
    /// A per-core trace cache in the style of the Krick et al. patent:
    /// `entries` trace heads, each covering up to `trace_lines` consecutive
    /// fetch lines.
    Enabled {
        /// Number of trace entries.
        entries: u32,
        /// Lines covered by one trace.
        trace_lines: u32,
    },
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores.
    pub num_cores: usize,
    /// Core clock in Hz (used to convert cycles to seconds; the paper's
    /// 22 nm cores are modelled at 2 GHz).
    pub clock_hz: u64,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Entries in the instruction TLB (Table 2: 128).
    pub itlb_entries: u32,
    /// Entries in the data TLB (Table 2: 128).
    pub dtlb_entries: u32,
    /// Page-walk penalty on a TLB miss, in cycles.
    pub tlb_miss_penalty: u64,
    /// Base cycles per instruction for a 4-wide out-of-order core when
    /// every access hits in the L1s (Table 2's retire width of 4 gives a
    /// floor of 0.25; queuing effects raise the realistic floor).
    pub base_cpi: f64,
    /// Fraction of a data-miss penalty that the out-of-order window hides
    /// (load-store queues, data prefetchers — Section 2.2's observation
    /// that d-cache latencies are largely hidden).
    pub data_overlap_hidden: f64,
    /// Instruction prefetcher.
    pub prefetcher: PrefetcherConfig,
    /// Trace cache.
    pub trace_cache: TraceCacheConfig,
    /// Replacement policy of the private L1 caches (the paper's machine
    /// uses LRU; alternatives exist for the replacement ablation).
    pub l1_replacement: crate::cache::ReplacementPolicy,
    /// Enable the per-core stride data prefetcher.
    pub data_prefetcher: bool,
    /// Explicit branch modelling: `(predictor entries, mispredict
    /// penalty in cycles)`. `None` folds branch effects into the base
    /// CPI, as the default timing model does.
    pub branch_predictor: Option<(u32, u64)>,
    /// Explicit banked NUCA LLC: `(bank base latency, cycles per mesh
    /// hop)`. `None` uses the flat Table 2 average latency.
    pub nuca: Option<(u64, u64)>,
    /// Seed every Random-replacement cache with the historical shared
    /// RNG constant instead of a per-level/per-core seed. With the
    /// shared constant, all caches pick the *same* victim-way sequence —
    /// correlated evictions across cores — which the default
    /// (per-cache seeding) avoids. Only observable under
    /// [`ReplacementPolicy::Random`](crate::cache::ReplacementPolicy);
    /// kept so pre-existing Random-ablation numbers remain reproducible.
    pub legacy_replacement_rng: bool,
}

impl SystemConfig {
    /// The paper's Table 2 machine: 32 cores, three-level hierarchy,
    /// 128-entry TLBs.
    pub fn table2() -> Self {
        SystemConfig {
            num_cores: 32,
            clock_hz: 2_000_000_000,
            hierarchy: HierarchyConfig::table2(),
            itlb_entries: 128,
            dtlb_entries: 128,
            tlb_miss_penalty: 50,
            base_cpi: 0.4,
            data_overlap_hidden: 0.7,
            prefetcher: PrefetcherConfig::None,
            trace_cache: TraceCacheConfig::None,
            l1_replacement: crate::cache::ReplacementPolicy::Lru,
            data_prefetcher: false,
            branch_predictor: None,
            nuca: None,
            legacy_replacement_rng: false,
        }
    }

    /// Restores the pre-seeding behaviour where every Random-policy
    /// cache shares one victim RNG stream (see
    /// [`legacy_replacement_rng`](Self::legacy_replacement_rng)).
    pub fn with_legacy_replacement_rng(mut self) -> Self {
        self.legacy_replacement_rng = true;
        self
    }

    /// Table 2 machine with a different core count (appendix Table 4
    /// sweeps 8/16/24/32).
    pub fn with_cores(mut self, num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        self.num_cores = num_cores;
        self
    }

    /// Replaces the cache hierarchy.
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// Enables the CGP-like instruction prefetcher with default sizing
    /// (the appendix's CGHC-2K+32K hardware-only mode).
    pub fn with_call_graph_prefetcher(mut self) -> Self {
        self.prefetcher = PrefetcherConfig::CallGraph {
            degree: 3,
            table_entries: 2048,
        };
        self
    }

    /// Enables explicit gshare branch modelling with default sizing
    /// (4096 counters, 15-cycle mispredict penalty).
    pub fn with_branch_predictor(mut self) -> Self {
        self.branch_predictor = Some((4096, 15));
        self
    }

    /// Enables the banked NUCA LLC model. Bank base latency and per-hop
    /// cost default to values whose mesh-wide mean matches Table 2's
    /// quoted 18-cycle average on 32 tiles.
    pub fn with_nuca(mut self) -> Self {
        self.nuca = Some((12, 2));
        self
    }

    /// Enables the trace cache with default sizing.
    pub fn with_trace_cache(mut self) -> Self {
        self.trace_cache = TraceCacheConfig::Enabled {
            entries: 512,
            trace_lines: 8,
        };
        self
    }

    /// Cycles in one interval of `seconds` at this clock.
    pub fn cycles_in(&self, seconds: f64) -> u64 {
        (seconds * self.clock_hz as f64) as u64
    }

    /// Checks the machine description for nonsense that would otherwise
    /// surface as a panic deep inside a run (zero cores, a stopped
    /// clock, non-probability timing fractions). Construction-time
    /// builders already reject most bad shapes; this covers structs
    /// assembled field by field.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be positive".into());
        }
        if self.clock_hz == 0 {
            return Err("clock_hz must be positive".into());
        }
        if !(self.base_cpi.is_finite() && self.base_cpi > 0.0) {
            return Err(format!(
                "base_cpi {} must be a positive finite number",
                self.base_cpi
            ));
        }
        if !(0.0..=1.0).contains(&self.data_overlap_hidden) || !self.data_overlap_hidden.is_finite()
        {
            return Err(format!(
                "data_overlap_hidden {} must be in [0, 1]",
                self.data_overlap_hidden
            ));
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_params_geometry() {
        let p = CacheParams::new(32 * 1024, 4, 64, 3);
        assert_eq!(p.num_sets(), 128);
        assert_eq!(p.num_lines(), 512);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn cache_params_rejects_ragged_geometry() {
        CacheParams::new(1000, 3, 64, 1);
    }

    #[test]
    fn table2_matches_paper() {
        let cfg = SystemConfig::table2();
        assert_eq!(cfg.num_cores, 32);
        assert_eq!(cfg.hierarchy.l1i.size_bytes, 32 * 1024);
        assert_eq!(cfg.hierarchy.l1i.associativity, 4);
        assert_eq!(cfg.hierarchy.l1i.latency_cycles, 3);
        let l2 = cfg.hierarchy.l2.expect("table 2 has a private L2");
        assert_eq!(l2.size_bytes, 256 * 1024);
        assert_eq!(l2.latency_cycles, 8);
        assert_eq!(cfg.hierarchy.llc.size_bytes, 8 * 1024 * 1024);
        assert_eq!(cfg.hierarchy.llc.associativity, 8);
        assert_eq!(cfg.hierarchy.llc.latency_cycles, 18);
        assert_eq!(cfg.itlb_entries, 128);
        assert_eq!(cfg.dtlb_entries, 128);
    }

    #[test]
    fn config1_and_config2_are_two_level() {
        assert!(HierarchyConfig::config1().l2.is_none());
        assert!(HierarchyConfig::config2().l2.is_none());
        assert_eq!(HierarchyConfig::config1().llc.latency_cycles, 18);
        assert_eq!(HierarchyConfig::config2().llc.latency_cycles, 8);
    }

    #[test]
    fn config3_is_table2() {
        assert_eq!(HierarchyConfig::config3(), HierarchyConfig::table2());
    }

    #[test]
    fn icache_size_sweep() {
        let h = HierarchyConfig::table2().with_icache_size(16 * 1024);
        assert_eq!(h.l1i.size_bytes, 16 * 1024);
        assert_eq!(h.l1i.associativity, 4);
        // Other levels untouched.
        assert_eq!(h.l1d.size_bytes, 32 * 1024);
    }

    #[test]
    fn core_count_sweep() {
        let cfg = SystemConfig::table2().with_cores(8);
        assert_eq!(cfg.num_cores, 8);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = SystemConfig::table2().with_cores(0);
    }

    #[test]
    fn cycles_conversion() {
        let cfg = SystemConfig::table2();
        assert_eq!(cfg.cycles_in(0.003), 6_000_000);
    }

    #[test]
    fn validate_accepts_presets_and_rejects_nonsense() {
        assert!(SystemConfig::table2().validate().is_ok());
        let mut cfg = SystemConfig::table2();
        cfg.num_cores = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::table2();
        cfg.data_overlap_hidden = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::table2();
        cfg.base_cpi = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn option_builders() {
        let cfg = SystemConfig::table2().with_call_graph_prefetcher();
        assert!(matches!(cfg.prefetcher, PrefetcherConfig::CallGraph { .. }));
        let cfg = SystemConfig::table2().with_trace_cache();
        assert!(matches!(cfg.trace_cache, TraceCacheConfig::Enabled { .. }));
    }
}
