//! Fully-associative translation lookaside buffers with LRU replacement.
//!
//! # Data layout
//!
//! Resident translations live in one flat array of interleaved
//! `(page, last-use stamp)` pairs, so the hot hit path — compare the
//! page, refresh the stamp — touches a single hardware cache line.
//! Stamps come from a monotonic counter and encode the exact LRU total
//! order, so nothing ever moves on a hit. Lookups go through a
//! fixed-size open-addressed index (linear probing, backward-shift
//! deletion) of interleaved `(page, slot+1)` pairs mapping page → slot
//! — again one line per probe — fronted by a single-entry MRU check
//! that catches the long same-page streaks of instruction fetch. The
//! min-stamp victim scan runs only on a capacity miss. This replaces a
//! `VecDeque` that paid an O(n) search plus `remove` + `push_front`
//! shuffle on every access; both representations implement exact LRU,
//! so hit/miss sequences are identical.

/// A fully-associative TLB over page identifiers.
///
/// The paper's Table 2 machine has 128-entry iTLB and dTLB per core; TLB
/// hit-rate deltas are reported in Section 6.1 ("TLB hit rates").
///
/// # Examples
///
/// ```
/// use schedtask_sim::Tlb;
///
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.access(10));
/// assert!(tlb.access(10));
/// tlb.access(11);
/// tlb.access(12);         // evicts page 10
/// assert!(!tlb.access(10));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Interleaved resident translations: slot `i` is
    /// `entries[2i]` = page, `entries[2i + 1]` = stamp of last use.
    /// The first `len` slots are valid, unordered; the minimum stamp
    /// over valid slots is the exact LRU victim.
    entries: Box<[u64]>,
    /// Open-addressed page → slot index, interleaved: position `h` is
    /// `idx[2h]` = page key, `idx[2h + 1]` = slot + 1 (0 = empty).
    /// Capacity is a power of two ≥ 2× entries, so the load factor
    /// never exceeds one half and probes stay short.
    idx: Box<[u64]>,
    idx_mask: usize,
    len: usize,
    clock: u64,
    /// Slot of the most recent hit/install: checked before the index.
    mru: usize,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with room for `entries` translations.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "a TLB needs at least one entry");
        let idx_capacity = (entries * 2).next_power_of_two();
        Tlb {
            entries: vec![0; entries * 2].into_boxed_slice(),
            idx: vec![0; idx_capacity * 2].into_boxed_slice(),
            idx_mask: idx_capacity - 1,
            len: 0,
            clock: 0,
            mru: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn home(&self, page: u64) -> usize {
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.idx_mask
    }

    /// Index position holding `page`, if resident.
    #[inline]
    fn idx_find(&self, page: u64) -> Option<usize> {
        let mut i = self.home(page);
        loop {
            if self.idx[2 * i + 1] == 0 {
                return None;
            }
            if self.idx[2 * i] == page {
                return Some(i);
            }
            i = (i + 1) & self.idx_mask;
        }
    }

    fn idx_insert(&mut self, page: u64, slot: usize) {
        let mut i = self.home(page);
        while self.idx[2 * i + 1] != 0 {
            i = (i + 1) & self.idx_mask;
        }
        self.idx[2 * i] = page;
        self.idx[2 * i + 1] = slot as u64 + 1;
    }

    /// Removes the index entry for `page` with backward-shift deletion
    /// so probe chains stay tombstone-free.
    fn idx_remove(&mut self, page: u64) {
        let Some(mut hole) = self.idx_find(page) else {
            return;
        };
        self.idx[2 * hole + 1] = 0;
        let mut j = (hole + 1) & self.idx_mask;
        while self.idx[2 * j + 1] != 0 {
            let home = self.home(self.idx[2 * j]);
            let stays = if hole <= j {
                hole < home && home <= j
            } else {
                hole < home || home <= j
            };
            if !stays {
                self.idx[2 * hole] = self.idx[2 * j];
                self.idx[2 * hole + 1] = self.idx[2 * j + 1];
                self.idx[2 * j + 1] = 0;
                hole = j;
            }
            j = (j + 1) & self.idx_mask;
        }
    }

    /// Translates `page`; returns `true` on hit. A miss installs the
    /// translation, evicting the LRU entry when full.
    #[inline]
    pub fn access(&mut self, page: u64) -> bool {
        self.clock += 1;
        // Fast path: instruction streams touch the same page for long
        // streaks, so one compare avoids even the index probe.
        if self.len > 0 && self.entries[2 * self.mru] == page {
            self.entries[2 * self.mru + 1] = self.clock;
            self.hits += 1;
            return true;
        }
        if let Some(i) = self.idx_find(page) {
            let slot = (self.idx[2 * i + 1] - 1) as usize;
            self.entries[2 * slot + 1] = self.clock;
            self.mru = slot;
            self.hits += 1;
            true
        } else {
            let slot = if self.len < self.entries.len() / 2 {
                self.len += 1;
                self.len - 1
            } else {
                // Exact LRU: evict the slot with the oldest stamp.
                let mut victim = 0;
                let mut oldest = self.entries[1];
                for i in 1..self.len {
                    let s = self.entries[2 * i + 1];
                    if s < oldest {
                        oldest = s;
                        victim = i;
                    }
                }
                self.idx_remove(self.entries[2 * victim]);
                victim
            };
            self.entries[2 * slot] = page;
            self.entries[2 * slot + 1] = self.clock;
            self.idx_insert(page, slot);
            self.mru = slot;
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1]; 0.0 before any access.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops all translations (e.g. on an address-space switch), keeping
    /// statistics.
    pub fn flush(&mut self) {
        self.len = 0;
        self.idx.fill(0);
        self.mru = 0;
    }

    /// Number of resident translations.
    pub fn resident_entries(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4);
        assert!(!t.access(1));
        assert!(t.access(1));
        assert_eq!((t.hits(), t.misses()), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(2);
        t.access(1); // refresh 1; LRU = 2
        t.access(3); // evict 2
        assert!(t.access(1));
        assert!(!t.access(2));
    }

    #[test]
    fn capacity_bound() {
        let mut t = Tlb::new(8);
        for p in 0..100 {
            t.access(p);
        }
        assert_eq!(t.resident_entries(), 8);
    }

    #[test]
    fn flush_keeps_stats() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.flush();
        assert_eq!(t.resident_entries(), 0);
        assert_eq!(t.misses(), 1);
        assert!(!t.access(1));
    }

    #[test]
    fn flush_then_refill_uses_fresh_slots() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(2);
        t.flush();
        // Stale pre-flush entries must not hit.
        assert!(!t.access(1));
        assert!(!t.access(2));
        assert_eq!(t.resident_entries(), 2);
        assert!(t.access(1) && t.access(2));
    }

    #[test]
    fn eviction_churn_keeps_index_consistent() {
        // Far more pages than capacity, revisited in waves: every access
        // must agree with a straightforward reference LRU model.
        let entries = 8;
        let mut t = Tlb::new(entries);
        let mut reference: Vec<u64> = Vec::new(); // front = MRU
        let mut page_seq = 0u64;
        for round in 0..2_000u64 {
            // Deterministic mix of repeats and fresh pages.
            let page = if round % 3 == 0 {
                page_seq += 1;
                page_seq * 97
            } else {
                (round % 11) * 97
            };
            let expect = if let Some(pos) = reference.iter().position(|&p| p == page) {
                reference.remove(pos);
                reference.insert(0, page);
                true
            } else {
                if reference.len() == entries {
                    reference.pop();
                }
                reference.insert(0, page);
                false
            };
            assert_eq!(t.access(page), expect, "round {round} page {page}");
        }
        assert_eq!(t.resident_entries(), entries);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        Tlb::new(0);
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut t = Tlb::new(128);
        for _ in 0..10 {
            for p in 0..64 {
                t.access(p);
            }
        }
        assert!(t.hit_rate() > 0.85);
    }
}
