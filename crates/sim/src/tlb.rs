//! Fully-associative translation lookaside buffers with LRU replacement.

use std::collections::VecDeque;

/// A fully-associative TLB over page identifiers.
///
/// The paper's Table 2 machine has 128-entry iTLB and dTLB per core; TLB
/// hit-rate deltas are reported in Section 6.1 ("TLB hit rates").
///
/// # Examples
///
/// ```
/// use schedtask_sim::Tlb;
///
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.access(10));
/// assert!(tlb.access(10));
/// tlb.access(11);
/// tlb.access(12);         // evicts page 10
/// assert!(!tlb.access(10));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: usize,
    /// Pages in LRU order: front = MRU.
    resident: VecDeque<u64>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with room for `entries` translations.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "a TLB needs at least one entry");
        Tlb {
            entries,
            resident: VecDeque::with_capacity(entries),
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `page`; returns `true` on hit. A miss installs the
    /// translation, evicting the LRU entry when full.
    pub fn access(&mut self, page: u64) -> bool {
        if let Some(pos) = self.resident.iter().position(|&p| p == page) {
            self.resident.remove(pos);
            self.resident.push_front(page);
            self.hits += 1;
            true
        } else {
            if self.resident.len() == self.entries {
                self.resident.pop_back();
            }
            self.resident.push_front(page);
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1]; 0.0 before any access.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops all translations (e.g. on an address-space switch), keeping
    /// statistics.
    pub fn flush(&mut self) {
        self.resident.clear();
    }

    /// Number of resident translations.
    pub fn resident_entries(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4);
        assert!(!t.access(1));
        assert!(t.access(1));
        assert_eq!((t.hits(), t.misses()), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(2);
        t.access(1); // refresh 1; LRU = 2
        t.access(3); // evict 2
        assert!(t.access(1));
        assert!(!t.access(2));
    }

    #[test]
    fn capacity_bound() {
        let mut t = Tlb::new(8);
        for p in 0..100 {
            t.access(p);
        }
        assert_eq!(t.resident_entries(), 8);
    }

    #[test]
    fn flush_keeps_stats() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.flush();
        assert_eq!(t.resident_entries(), 0);
        assert_eq!(t.misses(), 1);
        assert!(!t.access(1));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        Tlb::new(0);
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut t = Tlb::new(128);
        for _ in 0..10 {
            for p in 0..64 {
                t.access(p);
            }
        }
        assert!(t.hit_rate() > 0.85);
    }
}
