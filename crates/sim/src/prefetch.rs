//! A history-based instruction prefetcher in the spirit of Call Graph
//! Prefetching (CGP, Annavaram et al.), hardware-only mode.
//!
//! The appendix's Figure 2 re-evaluates all core-specialization techniques
//! on a baseline that has an instruction prefetcher. CGP's hardware-only
//! mode learns, per fetched line, which lines were fetched next, and
//! prefetches a few predicted successors on every demand fetch. We model
//! exactly that: a direct-mapped successor-history table of
//! `table_entries`, trained on the demand-fetch stream, that emits up to
//! `degree` predicted lines per trigger.

/// Successor-history instruction prefetcher.
///
/// # Examples
///
/// ```
/// use schedtask_sim::CallGraphPrefetcher;
///
/// let mut p = CallGraphPrefetcher::new(1024, 2);
/// p.observe(100);
/// p.observe(101);
/// p.observe(102);
/// // After training, fetching line 100 predicts 101 (and its successor).
/// assert_eq!(p.predict(100), vec![101, 102]);
/// ```
#[derive(Debug, Clone)]
pub struct CallGraphPrefetcher {
    /// Direct-mapped table: `successor[h(line)] = (line, next_line)`.
    table: Vec<Option<(u64, u64)>>,
    degree: usize,
    last_line: Option<u64>,
    issued: u64,
}

impl CallGraphPrefetcher {
    /// Creates a prefetcher with a `table_entries`-entry history table
    /// that prefetches up to `degree` lines per trigger.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` or `degree` is zero.
    pub fn new(table_entries: u32, degree: u32) -> Self {
        assert!(table_entries > 0 && degree > 0);
        CallGraphPrefetcher {
            table: vec![None; table_entries as usize],
            degree: degree as usize,
            last_line: None,
            issued: 0,
        }
    }

    fn slot(&self, line: u64) -> usize {
        (line % self.table.len() as u64) as usize
    }

    /// Trains the history table with the next line in the demand-fetch
    /// stream.
    pub fn observe(&mut self, line: u64) {
        if let Some(prev) = self.last_line {
            if prev != line {
                let slot = self.slot(prev);
                self.table[slot] = Some((prev, line));
            }
        }
        self.last_line = Some(line);
    }

    /// Predicted successor chain for `line`, up to `degree` lines.
    pub fn predict(&self, line: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.degree);
        let mut cur = line;
        for _ in 0..self.degree {
            match self.table[self.slot(cur)] {
                Some((tag, next)) if tag == cur => {
                    out.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
        out
    }

    /// Records that `n` prefetches were issued (for statistics).
    pub fn note_issued(&mut self, n: u64) {
        self.issued += n;
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_table_predicts_nothing() {
        let p = CallGraphPrefetcher::new(64, 4);
        assert!(p.predict(42).is_empty());
    }

    #[test]
    fn learns_sequential_stream() {
        let mut p = CallGraphPrefetcher::new(1024, 3);
        for line in 0..10 {
            p.observe(line);
        }
        assert_eq!(p.predict(0), vec![1, 2, 3]);
        assert_eq!(p.predict(7), vec![8, 9]);
    }

    #[test]
    fn relearns_on_changed_successor() {
        let mut p = CallGraphPrefetcher::new(1024, 1);
        p.observe(5);
        p.observe(6);
        assert_eq!(p.predict(5), vec![6]);
        p.observe(5);
        p.observe(9);
        assert_eq!(p.predict(5), vec![9]);
    }

    #[test]
    fn repeated_line_does_not_self_link() {
        let mut p = CallGraphPrefetcher::new(64, 4);
        p.observe(3);
        p.observe(3);
        p.observe(3);
        assert!(p.predict(3).is_empty());
    }

    #[test]
    fn table_conflicts_replace() {
        let mut p = CallGraphPrefetcher::new(1, 1);
        p.observe(1);
        p.observe(2); // table[0] = (1, 2)
        p.observe(3); // table[0] = (2, 3)
        assert!(p.predict(1).is_empty());
        assert_eq!(p.predict(2), vec![3]);
    }

    #[test]
    fn issue_counter() {
        let mut p = CallGraphPrefetcher::new(8, 2);
        p.note_issued(5);
        p.note_issued(2);
        assert_eq!(p.issued(), 7);
    }

    #[test]
    #[should_panic]
    fn zero_sizing_rejected() {
        CallGraphPrefetcher::new(0, 1);
    }
}

/// A per-core stride data prefetcher: detects a repeated line-stride in
/// the data stream and prefetches the next line(s) along it. Modern
/// cores ship one (Section 2.2 notes that data prefetchers are among the
/// optimizations that already hide d-cache latencies); it is optional
/// here for the data-prefetcher ablation.
#[derive(Debug, Clone, Default)]
pub struct StrideDataPrefetcher {
    last_line: Option<u64>,
    last_stride: i64,
    confidence: u8,
    issued: u64,
}

impl StrideDataPrefetcher {
    /// Creates an untrained prefetcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes a demand data access; returns lines to prefetch (empty
    /// until a stride repeats).
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if let Some(prev) = self.last_line {
            let stride = line as i64 - prev as i64;
            if stride != 0 && stride == self.last_stride {
                self.confidence = (self.confidence + 1).min(4);
            } else {
                self.confidence = 0;
            }
            self.last_stride = stride;
            if self.confidence >= 2 {
                // Confident: prefetch the next two lines along the stride.
                for k in 1..=2i64 {
                    let target = line as i64 + self.last_stride * k;
                    if target >= 0 {
                        out.push(target as u64);
                    }
                }
                self.issued += out.len() as u64;
            }
        }
        self.last_line = Some(line);
        out
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod stride_tests {
    use super::*;

    #[test]
    fn untrained_issues_nothing() {
        let mut p = StrideDataPrefetcher::new();
        assert!(p.observe(100).is_empty());
        assert!(p.observe(200).is_empty()); // first stride observation
    }

    #[test]
    fn repeated_stride_triggers() {
        let mut p = StrideDataPrefetcher::new();
        p.observe(100);
        p.observe(104);
        p.observe(108); // stride 4 repeated once -> confidence building
        let pf = p.observe(112);
        assert_eq!(pf, vec![116, 120]);
        assert!(p.issued() >= 2);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StrideDataPrefetcher::new();
        for l in [100u64, 104, 108, 112] {
            p.observe(l);
        }
        assert!(!p.observe(116).is_empty());
        // Break the stride.
        assert!(p.observe(500).is_empty());
        assert!(p.observe(501).is_empty());
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StrideDataPrefetcher::new();
        for l in [100u64, 96, 92, 88] {
            p.observe(l);
        }
        let pf = p.observe(84);
        assert_eq!(pf, vec![80, 76]);
    }
}
