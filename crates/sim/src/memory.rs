//! The multicore memory system: per-core private caches and TLBs, a shared
//! last-level cache, a lightweight ownership-based coherence model, and the
//! optional instruction prefetcher / trace cache of the appendix.
//!
//! This is the substrate on which every scheduling technique is evaluated;
//! all techniques in the paper differ *only* through what they do to these
//! structures (i-cache pollution, d-cache locality, TLB pressure).

use crate::cache::{ReplacementPolicy, SetAssocCache};
use crate::coherence::{Directory, ReadOutcome};
use crate::config::{PrefetcherConfig, SystemConfig, TraceCacheConfig};
use crate::prefetch::{CallGraphPrefetcher, StrideDataPrefetcher};
use crate::stats::{CodeDomain, MemStats};
use crate::tlb::Tlb;
use crate::trace_cache::TraceCache;

/// Bytes per page (4 KB, matching the paper's 12-bit page offset).
pub const PAGE_BYTES: u64 = 4096;

/// Private per-core memory structures.
#[derive(Debug)]
struct CoreMem {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: Option<SetAssocCache>,
    itlb: Tlb,
    dtlb: Tlb,
    prefetcher: Option<CallGraphPrefetcher>,
    data_prefetcher: Option<StrideDataPrefetcher>,
    trace_cache: Option<TraceCache>,
}

/// The shared multicore memory system.
///
/// Lines are abstract `u64` identifiers already translated to physical
/// line addresses (line id = physical address / line size); the page frame
/// number of a line is [`MemorySystem::page_of_line`].
///
/// # Examples
///
/// ```
/// use schedtask_sim::{CodeDomain, MemorySystem, SystemConfig};
///
/// let mut mem = MemorySystem::new(&SystemConfig::table2());
/// let cold = mem.fetch_code(0, 1000, CodeDomain::Application);
/// let warm = mem.fetch_code(0, 1000, CodeDomain::Application);
/// assert!(cold > warm); // second fetch hits the L1i
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    cfg: SystemConfig,
    cores: Vec<CoreMem>,
    llc: SetAssocCache,
    /// Coherence directory (Table 2: directory-based MOESI). Sharer sets
    /// are tracked conservatively: private-cache evictions are not
    /// reported back, so stale sharer bits can cause spurious (harmless)
    /// invalidation messages — a common real-directory behaviour too.
    directory: Directory,
    stats: MemStats,
    lines_per_page: u64,
    /// `log2(lines_per_page)` when it is a power of two (it is for every
    /// shipped geometry: 4 KB pages, 64 B lines), letting the per-access
    /// line→page translation shift instead of divide.
    page_shift: Option<u32>,
    nuca: Option<crate::nuca::NucaModel>,
}

impl MemorySystem {
    /// Builds the memory system described by `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        let h = &cfg.hierarchy;
        // Decorrelate each cache's Random-victim RNG by level and core
        // (level tag in the high bits, core index below) unless the
        // legacy shared-stream behaviour is requested. Lru/Fifo caches
        // never consume the RNG, so this is invisible outside the
        // Random-replacement ablation.
        let build = |params, policy, level: u64, core: usize| {
            if cfg.legacy_replacement_rng {
                SetAssocCache::with_policy(params, policy)
            } else {
                SetAssocCache::with_policy_seeded(params, policy, (level << 32) | core as u64)
            }
        };
        let cores = (0..cfg.num_cores)
            .map(|c| CoreMem {
                l1i: build(h.l1i, cfg.l1_replacement, 1, c),
                l1d: build(h.l1d, cfg.l1_replacement, 2, c),
                l2: h.l2.map(|p| build(p, ReplacementPolicy::Lru, 3, c)),
                itlb: Tlb::new(cfg.itlb_entries as usize),
                dtlb: Tlb::new(cfg.dtlb_entries as usize),
                prefetcher: match cfg.prefetcher {
                    PrefetcherConfig::None => None,
                    PrefetcherConfig::CallGraph {
                        degree,
                        table_entries,
                    } => Some(CallGraphPrefetcher::new(table_entries, degree)),
                },
                data_prefetcher: if cfg.data_prefetcher {
                    Some(StrideDataPrefetcher::new())
                } else {
                    None
                },
                trace_cache: match cfg.trace_cache {
                    TraceCacheConfig::None => None,
                    TraceCacheConfig::Enabled {
                        entries,
                        trace_lines,
                    } => Some(TraceCache::new(entries, trace_lines)),
                },
            })
            .collect();
        MemorySystem {
            cores,
            llc: build(h.llc, ReplacementPolicy::Lru, 4, 0),
            // Start the open-addressed directory small and let it grow
            // with the tracked-line count: a table pre-sized to the LLC
            // geometry spreads a few thousand entries across megabytes,
            // making every probe a cold cache miss, while a dense table
            // stays resident in the host's caches. Growth rehashing is
            // invisible to the point queries the directory serves.
            directory: Directory::new(cfg.num_cores.min(64)),
            stats: MemStats::new(),
            lines_per_page: PAGE_BYTES / h.l1i.line_bytes,
            page_shift: {
                let lpp = PAGE_BYTES / h.l1i.line_bytes;
                lpp.is_power_of_two().then(|| lpp.trailing_zeros())
            },
            nuca: cfg
                .nuca
                .map(|(base, hop)| crate::nuca::NucaModel::new(cfg.num_cores, base, hop)),
            cfg: cfg.clone(),
        }
    }

    /// LLC hit latency for `core` accessing `line` (NUCA-aware when the
    /// banked model is enabled).
    fn llc_latency(&self, core: usize, line: u64) -> u64 {
        match &self.nuca {
            Some(n) => n.latency(core, line),
            None => self.cfg.hierarchy.llc.latency_cycles,
        }
    }

    /// Page frame number containing `line`.
    #[inline]
    pub fn page_of_line(&self, line: u64) -> u64 {
        match self.page_shift {
            Some(s) => line >> s,
            None => line / self.lines_per_page,
        }
    }

    /// Number of cache lines per page for this configuration.
    pub fn lines_per_page(&self) -> u64 {
        self.lines_per_page
    }

    /// Fetches the instruction line `line` on `core`, returning the stall
    /// cycles this fetch adds on top of the base CPI (0 for an L1i hit).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn fetch_code(&mut self, core: usize, line: u64, domain: CodeDomain) -> u64 {
        let page = self.page_of_line(line);
        let mut penalty = 0u64;

        // Instruction TLB.
        let itlb_hit = self.cores[core].itlb.access(page);
        self.stats.itlb.record(itlb_hit);
        if !itlb_hit {
            penalty += self.cfg.tlb_miss_penalty;
        }

        // Trace cache: a covered fetch bypasses the i-cache entirely.
        if let Some(tc) = self.cores[core].trace_cache.as_mut() {
            if tc.fetch(line) {
                self.stats.trace_cache_covered += 1;
                return penalty;
            }
        }

        // Demand fetch through the hierarchy.
        let l1_hit = self.cores[core].l1i.access(line);
        match domain {
            CodeDomain::Application => self.stats.icache_app.record(l1_hit),
            CodeDomain::Os => self.stats.icache_os.record(l1_hit),
        }
        if !l1_hit {
            penalty += self.refill_from_outer(core, line);
        }

        // Train and trigger the instruction prefetcher.
        let predictions = match self.cores[core].prefetcher.as_mut() {
            Some(p) => {
                p.observe(line);
                if l1_hit {
                    Vec::new()
                } else {
                    p.predict(line)
                }
            }
            None => Vec::new(),
        };
        if !predictions.is_empty() {
            let mut fills = 0;
            for pline in predictions {
                if !self.cores[core].l1i.probe(pline) {
                    self.cores[core].l1i.fill(pline);
                    if let Some(l2) = self.cores[core].l2.as_mut() {
                        l2.fill(pline);
                    }
                    self.llc.fill(pline);
                    fills += 1;
                }
            }
            if fills > 0 {
                self.stats.prefetch_fills += fills;
                if let Some(p) = self.cores[core].prefetcher.as_mut() {
                    p.note_issued(fills);
                }
            }
        }

        penalty
    }

    /// Performs a data access to `line` on `core`; returns the *visible*
    /// stall cycles (the out-of-order window hides
    /// [`SystemConfig::data_overlap_hidden`] of the raw penalty).
    ///
    /// Writes take ownership of the line, invalidating any copy in other
    /// cores' private caches (a MOESI-style upgrade, charged one LLC
    /// round-trip).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_data(&mut self, core: usize, line: u64, write: bool, domain: CodeDomain) -> u64 {
        let page = self.page_of_line(line);
        let mut raw_penalty = 0u64;

        let dtlb_hit = self.cores[core].dtlb.access(page);
        self.stats.dtlb.record(dtlb_hit);
        if !dtlb_hit {
            raw_penalty += self.cfg.tlb_miss_penalty;
        }

        // Coherence: writes always consult the directory (a write hit on
        // a shared copy still needs an ownership upgrade).
        let dir_core = core.min(63);
        if write {
            let outcome = self.directory.on_write(dir_core, line);
            if !outcome.silent && !outcome.invalidate.is_empty() {
                for c in outcome.invalidate {
                    self.invalidate_private(c, line);
                }
                self.stats.coherence_invalidations += u64::from(outcome.invalidate.count());
                raw_penalty += self.llc_latency(core, line);
            }
        }

        let l1_hit = self.cores[core].l1d.access(line);
        match domain {
            CodeDomain::Application => self.stats.dcache_app.record(l1_hit),
            CodeDomain::Os => self.stats.dcache_os.record(l1_hit),
        }
        if !l1_hit {
            if write {
                // The directory already granted ownership above; fetch
                // the line through the memory path.
                raw_penalty += self.refill_data_from_outer(core, line);
            } else {
                match self.directory.on_read(dir_core, line) {
                    ReadOutcome::CacheToCache { owner: _ } => {
                        // Served dirty by the remote owner at LLC
                        // latency; fills our private hierarchy too.
                        self.stats.coherence_transfers += 1;
                        raw_penalty += self.llc_latency(core, line);
                        if let Some(l2) = self.cores[core].l1d_l2_mut() {
                            l2.fill(line);
                        }
                        self.cores[core].l1d.fill(line);
                        self.llc.fill(line);
                    }
                    ReadOutcome::FromMemoryPath => {
                        raw_penalty += self.refill_data_from_outer(core, line);
                    }
                }
            }
        }

        // Stride data prefetcher: train on the demand stream and fill
        // predicted lines into the private hierarchy.
        let predicted = match self.cores[core].data_prefetcher.as_mut() {
            Some(p) => p.observe(line),
            None => Vec::new(),
        };
        for pline in predicted {
            self.cores[core].l1d.fill(pline);
            if let Some(l2) = self.cores[core].l2.as_mut() {
                l2.fill(pline);
            }
            self.llc.fill(pline);
            self.stats.prefetch_fills += 1;
        }

        if raw_penalty == 0 {
            // Hit everywhere: the overlap scaling below is the identity
            // on zero, so skip the float round-trip on the common path.
            return 0;
        }
        let hidden = self.cfg.data_overlap_hidden.clamp(0.0, 1.0);
        (raw_penalty as f64 * (1.0 - hidden)).round() as u64
    }

    /// True if `core`'s L1i currently holds `line` (no state change). Used
    /// by SLICC's remote-tag search, which the paper models at zero cost.
    pub fn probe_icache(&self, core: usize, line: u64) -> bool {
        self.cores[core].l1i.probe(line)
    }

    fn invalidate_private(&mut self, core: usize, line: u64) {
        self.cores[core].l1d.invalidate(line);
        if let Some(l2) = self.cores[core].l2.as_mut() {
            l2.invalidate(line);
        }
    }

    /// Refills an instruction line from L2/LLC/memory; returns added
    /// cycles.
    fn refill_from_outer(&mut self, core: usize, line: u64) -> u64 {
        // Per-core L2s are built from `hierarchy.l2`, so the config is
        // present whenever the cache is; fall through to the LLC if not.
        if let (Some(l2), Some(l2_cfg)) = (self.cores[core].l2.as_mut(), self.cfg.hierarchy.l2) {
            let l2_hit = l2.access(line);
            self.stats.l2.record(l2_hit);
            if l2_hit {
                return l2_cfg.latency_cycles;
            }
        }
        let llc_hit = self.llc.access(line);
        self.stats.llc.record(llc_hit);
        if llc_hit {
            self.llc_latency(core, line)
        } else {
            self.cfg.hierarchy.memory_latency
        }
    }

    /// Refills a data line from L2/LLC/memory; returns added cycles.
    fn refill_data_from_outer(&mut self, core: usize, line: u64) -> u64 {
        // Identical path; kept separate so d-side prefetching could hook in.
        self.refill_from_outer(core, line)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets statistics (cache contents are preserved — use after
    /// warm-up).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// i-TLB hit rate so far.
    pub fn itlb_hit_rate(&self) -> f64 {
        self.stats.itlb.hit_rate()
    }

    /// d-TLB hit rate so far.
    pub fn dtlb_hit_rate(&self) -> f64 {
        self.stats.dtlb.hit_rate()
    }
}

impl CoreMem {
    /// Helper: mutable access to the L2 (for data fills).
    fn l1d_l2_mut(&mut self) -> Option<&mut SetAssocCache> {
        self.l2.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SystemConfig {
        SystemConfig::table2().with_cores(4)
    }

    #[test]
    fn code_fetch_hit_costs_nothing() {
        let mut mem = MemorySystem::new(&small_cfg());
        let first = mem.fetch_code(0, 500, CodeDomain::Os);
        assert!(first > 0);
        let second = mem.fetch_code(0, 500, CodeDomain::Os);
        assert_eq!(second, 0);
        assert_eq!(mem.stats().icache_os.hits, 1);
        assert_eq!(mem.stats().icache_os.misses, 1);
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut mem = MemorySystem::new(&small_cfg());
        let cfg = small_cfg();
        let p = mem.fetch_code(0, 12345, CodeDomain::Application);
        // TLB miss + memory latency on a completely cold access.
        assert_eq!(p, cfg.tlb_miss_penalty + cfg.hierarchy.memory_latency);
    }

    #[test]
    fn second_core_hits_llc_not_memory() {
        let mut mem = MemorySystem::new(&small_cfg());
        mem.fetch_code(0, 777, CodeDomain::Application);
        let p = mem.fetch_code(1, 777, CodeDomain::Application);
        let cfg = small_cfg();
        // Core 1: own TLB miss + L1 miss + L2 miss + LLC hit.
        assert_eq!(p, cfg.tlb_miss_penalty + cfg.hierarchy.llc.latency_cycles);
    }

    #[test]
    fn domains_are_tracked_separately() {
        let mut mem = MemorySystem::new(&small_cfg());
        mem.fetch_code(0, 1, CodeDomain::Application);
        mem.fetch_code(0, 2, CodeDomain::Os);
        mem.fetch_code(0, 2, CodeDomain::Os);
        assert_eq!(mem.stats().icache_app.total(), 1);
        assert_eq!(mem.stats().icache_os.total(), 2);
    }

    #[test]
    fn data_write_takes_ownership_and_invalidates() {
        let mut mem = MemorySystem::new(&small_cfg());
        mem.access_data(0, 42, true, CodeDomain::Os);
        assert!(mem.access_data(0, 42, false, CodeDomain::Os) == 0);
        // Core 1 writes the same line: invalidation charged.
        mem.access_data(1, 42, true, CodeDomain::Os);
        assert_eq!(mem.stats().coherence_invalidations, 1);
        // Core 0 re-reads: its copy was invalidated, so this misses.
        let before = mem.stats().dcache_os.misses;
        mem.access_data(0, 42, false, CodeDomain::Os);
        assert_eq!(mem.stats().dcache_os.misses, before + 1);
    }

    #[test]
    fn read_of_remote_dirty_line_is_cache_to_cache() {
        let mut mem = MemorySystem::new(&small_cfg());
        mem.access_data(0, 99, true, CodeDomain::Os);
        mem.access_data(1, 99, false, CodeDomain::Os);
        assert_eq!(mem.stats().coherence_transfers, 1);
    }

    #[test]
    fn data_overlap_hides_latency() {
        let mut zero_hide = SystemConfig::table2().with_cores(1);
        zero_hide.data_overlap_hidden = 0.0;
        let mut full_hide = zero_hide.clone();
        full_hide.data_overlap_hidden = 1.0;

        let mut m0 = MemorySystem::new(&zero_hide);
        let mut m1 = MemorySystem::new(&full_hide);
        let p0 = m0.access_data(0, 7, false, CodeDomain::Application);
        let p1 = m1.access_data(0, 7, false, CodeDomain::Application);
        assert!(p0 > 0);
        assert_eq!(p1, 0);
    }

    #[test]
    fn two_level_hierarchy_skips_l2() {
        let cfg = SystemConfig::table2()
            .with_cores(1)
            .with_hierarchy(crate::config::HierarchyConfig::config1());
        let mut mem = MemorySystem::new(&cfg);
        mem.fetch_code(0, 5, CodeDomain::Os);
        assert_eq!(mem.stats().l2.total(), 0);
        assert_eq!(mem.stats().llc.total(), 1);
    }

    #[test]
    fn prefetcher_reduces_misses_on_sequential_code() {
        let base = SystemConfig::table2().with_cores(1);
        let pf = base.clone().with_call_graph_prefetcher();

        let run = |cfg: &SystemConfig| {
            let mut mem = MemorySystem::new(cfg);
            // A loop over a footprint larger than the L1i, twice.
            let lines = cfg.hierarchy.l1i.num_lines() * 2;
            for _ in 0..3 {
                for l in 0..lines {
                    mem.fetch_code(0, l, CodeDomain::Application);
                }
            }
            let s = mem.stats();
            let mut all = s.icache_app;
            all.merge(&s.icache_os);
            all.hit_rate()
        };

        let hit_plain = run(&base);
        let hit_pf = run(&pf);
        assert!(
            hit_pf > hit_plain,
            "prefetcher should raise i-hit rate: {hit_pf} vs {hit_plain}"
        );
    }

    #[test]
    fn trace_cache_covers_repeated_fetches() {
        let cfg = SystemConfig::table2().with_cores(1).with_trace_cache();
        let mut mem = MemorySystem::new(&cfg);
        for _ in 0..4 {
            for l in 0..64u64 {
                mem.fetch_code(0, l, CodeDomain::Application);
            }
        }
        assert!(mem.stats().trace_cache_covered > 0);
    }

    #[test]
    fn page_of_line_uses_64_lines_per_page() {
        let mem = MemorySystem::new(&small_cfg());
        assert_eq!(mem.lines_per_page(), 64);
        assert_eq!(mem.page_of_line(63), 0);
        assert_eq!(mem.page_of_line(64), 1);
    }

    #[test]
    fn probe_icache_is_non_destructive() {
        let mut mem = MemorySystem::new(&small_cfg());
        assert!(!mem.probe_icache(0, 9));
        mem.fetch_code(0, 9, CodeDomain::Os);
        assert!(mem.probe_icache(0, 9));
        let hits_before = mem.stats().icache_os.hits;
        let _ = mem.probe_icache(0, 9);
        assert_eq!(mem.stats().icache_os.hits, hits_before);
    }

    #[test]
    fn reset_stats_preserves_warm_caches() {
        let mut mem = MemorySystem::new(&small_cfg());
        mem.fetch_code(0, 11, CodeDomain::Os);
        mem.reset_stats();
        assert_eq!(mem.stats().icache_os.total(), 0);
        let p = mem.fetch_code(0, 11, CodeDomain::Os);
        assert_eq!(p, 0, "cache stayed warm across reset");
    }

    #[test]
    fn tlb_hit_rates_exposed() {
        let mut mem = MemorySystem::new(&small_cfg());
        for _ in 0..4 {
            mem.fetch_code(0, 3, CodeDomain::Os);
            mem.access_data(0, 3, false, CodeDomain::Os);
        }
        assert!(mem.itlb_hit_rate() > 0.5);
        assert!(mem.dtlb_hit_rate() > 0.5);
    }
}
