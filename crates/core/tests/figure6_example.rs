//! Reproduces Figure 6's worked example end-to-end: four cores, four
//! superFuncTypes (two application, two system-call), per-core stats
//! tables aggregated by TAlloc into the system-wide table, a one-core-
//! per-type allocation, and an overlap table that respects the OS ↔
//! application divide.

use schedtask::{AllocationTable, OverlapTable, StatsTable};
use schedtask_sim::PageHeatmap;
use schedtask_workload::{SfCategory, SuperFuncType};
use std::collections::HashSet;

fn ty(cat: SfCategory, sub: u64) -> SuperFuncType {
    SuperFuncType::new(cat, sub)
}

fn heat(pages: &[u64]) -> PageHeatmap {
    let mut h = PageHeatmap::new(512);
    for &p in pages {
        h.insert_pfn(p);
    }
    h
}

#[test]
fn figure6_worked_example() {
    // SF-A and SF-D are application superFuncTypes; SF-B and SF-C are
    // system-call superFuncTypes (the figure's stated assumption).
    let sf_a = ty(SfCategory::Application, 1);
    let sf_b = ty(SfCategory::SystemCall, 2);
    let sf_c = ty(SfCategory::SystemCall, 3);
    let sf_d = ty(SfCategory::Application, 4);

    // Page sets: B and C overlap heavily (the figure gives them the
    // largest mutual overlap, 6); A and D overlap somewhat (3-4).
    let pages_a: Vec<u64> = vec![10, 11, 12, 13, 14];
    let pages_b: Vec<u64> = vec![20, 21, 22, 23, 24, 25, 26];
    let pages_c: Vec<u64> = vec![20, 21, 22, 23, 24, 25, 30];
    let pages_d: Vec<u64> = vec![10, 11, 12, 40, 41];

    // Per-core stats tables as drawn in Epoch 0: cores 0 and 1 ran
    // A/B/C, cores 2 and 3 ran D/B/C; every entry has freq 1 and the
    // figure's exec times (A and D run 10, B and C run 5).
    let exact = |pages: &[u64]| -> HashSet<u64> { pages.iter().copied().collect() };
    let mut cores: Vec<StatsTable> = (0..4).map(|_| StatsTable::new(512)).collect();
    for core in &mut cores[0..2] {
        core.record_execution(sf_a, 10, Some(&heat(&pages_a)), Some(&exact(&pages_a)));
        core.record_execution(sf_b, 5, Some(&heat(&pages_b)), Some(&exact(&pages_b)));
        core.record_execution(sf_c, 5, Some(&heat(&pages_c)), Some(&exact(&pages_c)));
    }
    for core in &mut cores[2..4] {
        core.record_execution(sf_d, 10, Some(&heat(&pages_d)), Some(&exact(&pages_d)));
        core.record_execution(sf_b, 5, Some(&heat(&pages_b)), Some(&exact(&pages_b)));
        core.record_execution(sf_c, 5, Some(&heat(&pages_c)), Some(&exact(&pages_c)));
    }

    // TAlloc's aggregation (Figure 6's "aggregation operation").
    let mut system = StatsTable::new(512);
    for t in &cores {
        system.merge(t);
    }
    // Global frequency = summation of per-core frequencies.
    assert_eq!(system.get(sf_b).unwrap().frequency, 4);
    assert_eq!(system.get(sf_a).unwrap().frequency, 2);
    // Global execution time = summation of per-core execution times.
    assert_eq!(system.get(sf_a).unwrap().exec_cycles, 20);
    assert_eq!(system.get(sf_b).unwrap().exec_cycles, 20);
    assert_eq!(system.get(sf_c).unwrap().exec_cycles, 20);
    assert_eq!(system.get(sf_d).unwrap().exec_cycles, 20);

    // Each superFuncType has a 25 % execution fraction on a 4-core
    // system, so the allocation table gives one core to each.
    let alloc = AllocationTable::from_stats(&system, 4);
    let mut used: Vec<usize> = Vec::new();
    for t in [sf_a, sf_b, sf_c, sf_d] {
        let cores = alloc.cores_for(t);
        assert_eq!(cores.len(), 1, "{t} should get exactly one core");
        used.push(cores[0].0);
    }
    used.sort_unstable();
    assert_eq!(used, vec![0, 1, 2, 3], "all four cores allocated");

    // The overlap table: B's best match is C (and vice versa), A's best
    // match is D — and OS ↔ application pairs are never compared.
    let overlap = OverlapTable::from_stats(&system, true);
    assert_eq!(overlap.overlaps_of(sf_b)[0].0, sf_c);
    assert_eq!(overlap.overlaps_of(sf_b)[0].1, 6);
    assert_eq!(overlap.overlaps_of(sf_c)[0].0, sf_b);
    assert_eq!(overlap.overlaps_of(sf_a)[0].0, sf_d);
    assert_eq!(overlap.overlaps_of(sf_a)[0].1, 3);
    for (other, _) in overlap.overlaps_of(sf_b) {
        assert!(other.is_os(), "OS type compared against application type");
    }
    for (other, _) in overlap.overlaps_of(sf_a) {
        assert!(!other.is_os(), "application type compared against OS type");
    }

    // The Bloom path agrees with the exact path on this example.
    let bloom = OverlapTable::from_stats(&system, false);
    assert_eq!(bloom.overlaps_of(sf_b)[0].0, sf_c);
    assert_eq!(bloom.overlaps_of(sf_a)[0].0, sf_d);
}
