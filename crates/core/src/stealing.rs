//! Work-stealing strategies (Section 5.3 and Figure 9).

use std::fmt;
use std::str::FromStr;

/// The work-stealing strategy an idle core uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StealPolicy {
    /// Never steal (Figure 9's "Steal nothing": high i-cache hit rate but
    /// ~19 % mean idle time).
    Nothing,
    /// Steal only SuperFunctions whose superFuncType is mapped to the
    /// local core — no added i-cache pollution.
    SameWorkOnly,
    /// First try [`StealPolicy::SameWorkOnly`]; then steal SuperFunctions
    /// of the most-overlapping types from the overlap table, taking half
    /// of the matching SuperFunctions to amortize the initial cold
    /// misses. The paper's default.
    #[default]
    SimilarWorkAlso,
    /// The alternate strategy discussed in Section 6.4: always steal from
    /// the core with the maximum waiting time, ignoring similarity
    /// (higher i-cache pollution, mean benefit only ≈10.8 %).
    MaxWaitingTime,
}

impl StealPolicy {
    /// All strategies in Figure 9 order, plus the alternate.
    pub fn all() -> [StealPolicy; 4] {
        [
            StealPolicy::Nothing,
            StealPolicy::SameWorkOnly,
            StealPolicy::SimilarWorkAlso,
            StealPolicy::MaxWaitingTime,
        ]
    }

    /// Parses a strategy name, case-insensitively and ignoring spaces,
    /// hyphens, and underscores, so both the CLI and the wire protocol can
    /// select a strategy by name. Accepts the variant names
    /// (`SimilarWorkAlso`), the [`fmt::Display`] strings (`"Steal similar
    /// work also"`), and short aliases (`none`, `same`, `similar`,
    /// `max-wait`, `default`).
    pub fn parse(s: &str) -> Result<StealPolicy, String> {
        let key: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        match key.as_str() {
            "nothing" | "stealnothing" | "none" => Ok(StealPolicy::Nothing),
            "sameworkonly" | "stealsameworkonly" | "same" | "samework" => {
                Ok(StealPolicy::SameWorkOnly)
            }
            "similarworkalso" | "stealsimilarworkalso" | "similar" | "similarwork" | "default" => {
                Ok(StealPolicy::SimilarWorkAlso)
            }
            "maxwaitingtime" | "stealfrommaxwaitingcore" | "maxwait" | "maxwaiting" => {
                Ok(StealPolicy::MaxWaitingTime)
            }
            _ => Err(format!(
                "unknown steal policy {s:?} (expected one of: nothing, same-work-only, \
                 similar-work-also, max-waiting-time)"
            )),
        }
    }
}

impl FromStr for StealPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        StealPolicy::parse(s)
    }
}

impl fmt::Display for StealPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StealPolicy::Nothing => "Steal nothing",
            StealPolicy::SameWorkOnly => "Steal same work only",
            StealPolicy::SimilarWorkAlso => "Steal similar work also",
            StealPolicy::MaxWaitingTime => "Steal from max-waiting core",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_similar_work_also() {
        assert_eq!(StealPolicy::default(), StealPolicy::SimilarWorkAlso);
    }

    #[test]
    fn display_names() {
        assert_eq!(StealPolicy::Nothing.to_string(), "Steal nothing");
        assert_eq!(
            StealPolicy::SimilarWorkAlso.to_string(),
            "Steal similar work also"
        );
    }

    #[test]
    fn all_lists_four() {
        assert_eq!(StealPolicy::all().len(), 4);
    }

    #[test]
    fn parse_round_trips_display_for_all_variants() {
        for policy in StealPolicy::all() {
            let name = policy.to_string();
            assert_eq!(StealPolicy::parse(&name), Ok(policy), "display {name:?}");
            assert_eq!(name.parse::<StealPolicy>(), Ok(policy), "FromStr {name:?}");
        }
    }

    #[test]
    fn parse_round_trips_variant_names_case_insensitively() {
        for (name, policy) in [
            ("Nothing", StealPolicy::Nothing),
            ("SameWorkOnly", StealPolicy::SameWorkOnly),
            ("SimilarWorkAlso", StealPolicy::SimilarWorkAlso),
            ("MaxWaitingTime", StealPolicy::MaxWaitingTime),
        ] {
            assert_eq!(StealPolicy::parse(name), Ok(policy));
            assert_eq!(StealPolicy::parse(&name.to_uppercase()), Ok(policy));
            assert_eq!(StealPolicy::parse(&name.to_lowercase()), Ok(policy));
        }
    }

    #[test]
    fn parse_accepts_short_aliases() {
        assert_eq!(StealPolicy::parse("none"), Ok(StealPolicy::Nothing));
        assert_eq!(StealPolicy::parse("same"), Ok(StealPolicy::SameWorkOnly));
        assert_eq!(
            StealPolicy::parse("similar-work"),
            Ok(StealPolicy::SimilarWorkAlso)
        );
        assert_eq!(
            StealPolicy::parse("max_wait"),
            Ok(StealPolicy::MaxWaitingTime)
        );
        assert_eq!(
            StealPolicy::parse("default"),
            Ok(StealPolicy::SimilarWorkAlso)
        );
    }

    #[test]
    fn parse_rejects_unknown_names() {
        let err = StealPolicy::parse("frobnicate").expect_err("must reject");
        assert!(err.contains("frobnicate"), "error names the input: {err}");
    }
}
