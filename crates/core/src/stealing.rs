//! Work-stealing strategies (Section 5.3 and Figure 9).

use std::fmt;

/// The work-stealing strategy an idle core uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StealPolicy {
    /// Never steal (Figure 9's "Steal nothing": high i-cache hit rate but
    /// ~19 % mean idle time).
    Nothing,
    /// Steal only SuperFunctions whose superFuncType is mapped to the
    /// local core — no added i-cache pollution.
    SameWorkOnly,
    /// First try [`StealPolicy::SameWorkOnly`]; then steal SuperFunctions
    /// of the most-overlapping types from the overlap table, taking half
    /// of the matching SuperFunctions to amortize the initial cold
    /// misses. The paper's default.
    #[default]
    SimilarWorkAlso,
    /// The alternate strategy discussed in Section 6.4: always steal from
    /// the core with the maximum waiting time, ignoring similarity
    /// (higher i-cache pollution, mean benefit only ≈10.8 %).
    MaxWaitingTime,
}

impl StealPolicy {
    /// All strategies in Figure 9 order, plus the alternate.
    pub fn all() -> [StealPolicy; 4] {
        [
            StealPolicy::Nothing,
            StealPolicy::SameWorkOnly,
            StealPolicy::SimilarWorkAlso,
            StealPolicy::MaxWaitingTime,
        ]
    }
}

impl fmt::Display for StealPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StealPolicy::Nothing => "Steal nothing",
            StealPolicy::SameWorkOnly => "Steal same work only",
            StealPolicy::SimilarWorkAlso => "Steal similar work also",
            StealPolicy::MaxWaitingTime => "Steal from max-waiting core",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_similar_work_also() {
        assert_eq!(StealPolicy::default(), StealPolicy::SimilarWorkAlso);
    }

    #[test]
    fn display_names() {
        assert_eq!(StealPolicy::Nothing.to_string(), "Steal nothing");
        assert_eq!(
            StealPolicy::SimilarWorkAlso.to_string(),
            "Steal similar work also"
        );
    }

    #[test]
    fn all_lists_four() {
        assert_eq!(StealPolicy::all().len(), 4);
    }
}
