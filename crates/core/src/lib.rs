//! SchedTask (MICRO 2017): a hardware-assisted fine-grained task
//! scheduler for OS-intensive workloads.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`StatsTable`] — per-core tables of (frequency, execution time,
//!   Page-heatmap) per superFuncType and the Figure 6 aggregation;
//! * [`AllocationTable`] — TAlloc's proportional core allocation
//!   (Section 5.2);
//! * [`OverlapTable`] — pairwise Page-heatmap overlaps in decreasing
//!   order, never comparing OS types with application types;
//! * [`StealPolicy`] — the two-level work-stealing scheme of Section 5.3
//!   plus the evaluated alternatives (Figure 9);
//! * [`SchedTaskScheduler`] — the complete technique, plugged into
//!   `schedtask-kernel`'s engine. On dispatch it arms the hardware
//!   Page-heatmap register ([`schedtask_sim::PageHeatmap`]); on switch-out
//!   it ORs the register into the core's stats table; each epoch TAlloc
//!   aggregates, re-allocates cores when the instruction breakup drifts
//!   (cosine similarity < 0.98), routes interrupts, and rebuilds the
//!   overlap table.
//!
//! # Examples
//!
//! ```
//! use schedtask::{SchedTaskConfig, SchedTaskScheduler, StealPolicy};
//! use schedtask_kernel::{Engine, EngineConfig, WorkloadSpec};
//! use schedtask_sim::SystemConfig;
//! use schedtask_workload::BenchmarkKind;
//!
//! let cores = 4;
//! let engine_cfg = EngineConfig::fast()
//!     .with_system(SystemConfig::table2().with_cores(cores))
//!     .with_max_instructions(100_000);
//! let sched = SchedTaskScheduler::new(
//!     cores,
//!     SchedTaskConfig {
//!         steal_policy: StealPolicy::SimilarWorkAlso,
//!         ..SchedTaskConfig::default()
//!     },
//! );
//! let mut engine = Engine::new(
//!     engine_cfg,
//!     &WorkloadSpec::single(BenchmarkKind::Apache, 1.0),
//!     Box::new(sched),
//! )
//! .expect("valid config");
//! let stats = engine.run().expect("run succeeds");
//! assert!(stats.total_instructions() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod alloc_table;
pub mod overlap;
pub mod scheduler;
pub mod stats_table;
pub mod stealing;

pub use alloc_table::AllocationTable;
pub use overlap::OverlapTable;
pub use scheduler::{EpochRankings, RankingObserver, SchedTaskConfig, SchedTaskScheduler};
pub use stats_table::{StatsTable, TypeStats};
pub use stealing::StealPolicy;
