//! The allocation table (Section 5.2): which cores execute which
//! superFuncType, built in direct proportion to each type's execution
//! fraction in the last epoch.

use crate::stats_table::StatsTable;
use schedtask_kernel::CoreId;
use schedtask_workload::SuperFuncType;
use std::collections::BTreeMap;

/// superFuncType → allocated cores.
#[derive(Debug, Clone, Default)]
pub struct AllocationTable {
    by_type: BTreeMap<SuperFuncType, Vec<CoreId>>,
    by_core: Vec<Vec<SuperFuncType>>,
}

impl AllocationTable {
    /// An empty table (before the first epoch, every SuperFunction runs
    /// on its local core).
    pub fn new(num_cores: usize) -> Self {
        AllocationTable {
            by_type: BTreeMap::new(),
            by_core: vec![Vec::new(); num_cores],
        }
    }

    /// Builds the allocation from a system-wide stats table: each type
    /// receives cores in direct proportion to its execution fraction,
    /// using the largest-remainder method so exactly `num_cores` cores
    /// are assigned. Types whose share rounds to zero get no entry (their
    /// SuperFunctions run on the local core, as Section 5.3 specifies).
    pub fn from_stats(stats: &StatsTable, num_cores: usize) -> Self {
        let fractions = stats.exec_fractions();
        let mut table = AllocationTable::new(num_cores);
        if fractions.is_empty() {
            return table;
        }

        // Largest-remainder apportionment.
        let mut shares: Vec<(SuperFuncType, usize, f64)> = fractions
            .iter()
            .map(|&(ty, f)| {
                let quota = f * num_cores as f64;
                (ty, quota.floor() as usize, quota - quota.floor())
            })
            .collect();
        let assigned: usize = shares.iter().map(|&(_, n, _)| n).sum();
        let mut leftover = num_cores.saturating_sub(assigned);
        // Distribute leftover cores by descending remainder (ties broken
        // by type order for determinism).
        let mut order: Vec<usize> = (0..shares.len()).collect();
        order.sort_by(|&a, &b| {
            shares[b]
                .2
                .partial_cmp(&shares[a].2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(shares[a].0.cmp(&shares[b].0))
        });
        for &i in &order {
            if leftover == 0 {
                break;
            }
            shares[i].1 += 1;
            leftover -= 1;
        }

        // Hand out consecutive core ids.
        let mut next_core = 0usize;
        for (ty, count, _) in shares {
            if count == 0 {
                continue;
            }
            let cores: Vec<CoreId> = (next_core..next_core + count)
                .map(|c| CoreId(c % num_cores))
                .collect();
            next_core += count;
            for &c in &cores {
                table.by_core[c.0].push(ty);
            }
            table.by_type.insert(ty, cores);
        }
        table
    }

    /// Cores allocated to `sf_type` (empty slice if no entry).
    pub fn cores_for(&self, sf_type: SuperFuncType) -> &[CoreId] {
        self.by_type.get(&sf_type).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Types allocated to `core`.
    pub fn types_on(&self, core: CoreId) -> &[SuperFuncType] {
        &self.by_core[core.0]
    }

    /// Number of types with entries.
    pub fn len(&self) -> usize {
        self.by_type.len()
    }

    /// True before the first allocation.
    pub fn is_empty(&self) -> bool {
        self.by_type.is_empty()
    }

    /// Iterates (type, cores) deterministically.
    pub fn iter(&self) -> impl Iterator<Item = (&SuperFuncType, &Vec<CoreId>)> {
        self.by_type.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedtask_workload::SfCategory;

    fn ty(sub: u64) -> SuperFuncType {
        SuperFuncType::new(SfCategory::SystemCall, sub)
    }

    fn stats(pairs: &[(u64, u64)]) -> StatsTable {
        let mut t = StatsTable::new(128);
        for &(sub, cycles) in pairs {
            t.record_execution(ty(sub), cycles, None, None);
        }
        t
    }

    #[test]
    fn equal_fractions_get_equal_cores() {
        // Figure 6's example: four types at 25 % each on 4 cores.
        let t = AllocationTable::from_stats(&stats(&[(1, 10), (2, 10), (3, 10), (4, 10)]), 4);
        for sub in 1..=4 {
            assert_eq!(t.cores_for(ty(sub)).len(), 1, "type {sub}");
        }
        // All 4 cores covered, no overlaps.
        let mut all: Vec<usize> = (1..=4)
            .flat_map(|s| t.cores_for(ty(s)).iter().map(|c| c.0))
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn proportional_allocation() {
        // 75 % / 25 % on 8 cores → 6 / 2.
        let t = AllocationTable::from_stats(&stats(&[(1, 75), (2, 25)]), 8);
        assert_eq!(t.cores_for(ty(1)).len(), 6);
        assert_eq!(t.cores_for(ty(2)).len(), 2);
    }

    #[test]
    fn every_core_is_assigned() {
        let t = AllocationTable::from_stats(&stats(&[(1, 30), (2, 33), (3, 37)]), 32);
        let total: usize = (1..=3).map(|s| t.cores_for(ty(s)).len()).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn tiny_types_get_no_entry() {
        // 2 cores, three types: the smallest gets nothing.
        let t = AllocationTable::from_stats(&stats(&[(1, 100), (2, 80), (3, 1)]), 2);
        assert_eq!(t.cores_for(ty(3)).len(), 0);
        assert!(!t.cores_for(ty(1)).is_empty());
    }

    #[test]
    fn more_types_than_cores_still_assigns_all_cores() {
        let pairs: Vec<(u64, u64)> = (1..=10).map(|s| (s, 10)).collect();
        let t = AllocationTable::from_stats(&stats(&pairs), 4);
        let total: usize = (1..=10).map(|s| t.cores_for(ty(s)).len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn empty_stats_leave_table_empty() {
        let t = AllocationTable::from_stats(&StatsTable::new(128), 4);
        assert!(t.is_empty());
        assert!(t.cores_for(ty(1)).is_empty());
    }

    #[test]
    fn reverse_lookup_matches_forward() {
        let t = AllocationTable::from_stats(&stats(&[(1, 50), (2, 50)]), 4);
        for (ty_ref, cores) in t.iter() {
            for c in cores {
                assert!(t.types_on(*c).contains(ty_ref));
            }
        }
    }
}
