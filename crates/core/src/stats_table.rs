//! The stats tables of Section 5.2 and Figure 6: per-core tables of
//! (frequency, execution time, Page-heatmap) per superFuncType, and the
//! TAlloc aggregation that merges them into the system-wide table.

use schedtask_sim::PageHeatmap;
use schedtask_workload::SuperFuncType;
use std::collections::{BTreeMap, HashSet};

/// One stats-table entry for a superFuncType.
#[derive(Debug, Clone)]
pub struct TypeStats {
    /// Number of SuperFunction segments executed.
    pub frequency: u64,
    /// Total execution time in cycles.
    pub exec_cycles: u64,
    /// Bloom summary of the instruction pages fetched (OR of the
    /// hardware register over all executions this epoch).
    pub heatmap: PageHeatmap,
    /// Exact page set (only when validating against the ideal ranking,
    /// Figure 11).
    pub exact_pages: HashSet<u64>,
}

impl TypeStats {
    fn new(heatmap_bits: u32) -> Self {
        TypeStats {
            frequency: 0,
            exec_cycles: 0,
            heatmap: PageHeatmap::new(heatmap_bits),
            exact_pages: HashSet::new(),
        }
    }

    /// Mean cycles per executed segment; 0.0 before any execution.
    pub fn mean_exec_cycles(&self) -> f64 {
        if self.frequency == 0 {
            0.0
        } else {
            self.exec_cycles as f64 / self.frequency as f64
        }
    }
}

/// A stats table: one entry per superFuncType. TMigrate keeps one per
/// core; TAlloc aggregates them into the system-wide table (Figure 6).
///
/// Uses a `BTreeMap` so iteration order (and therefore core allocation)
/// is deterministic.
#[derive(Debug, Clone)]
pub struct StatsTable {
    heatmap_bits: u32,
    entries: BTreeMap<SuperFuncType, TypeStats>,
}

impl StatsTable {
    /// Creates an empty table whose heatmaps have `heatmap_bits` bits.
    pub fn new(heatmap_bits: u32) -> Self {
        StatsTable {
            heatmap_bits,
            entries: BTreeMap::new(),
        }
    }

    /// Records one executed segment of `sf_type`.
    pub fn record_execution(
        &mut self,
        sf_type: SuperFuncType,
        cycles: u64,
        heatmap: Option<&PageHeatmap>,
        exact_pages: Option<&HashSet<u64>>,
    ) {
        let bits = self.heatmap_bits;
        let e = self
            .entries
            .entry(sf_type)
            .or_insert_with(|| TypeStats::new(bits));
        e.frequency += 1;
        e.exec_cycles += cycles;
        if let Some(hm) = heatmap {
            e.heatmap.union_with(hm);
        }
        if let Some(pages) = exact_pages {
            e.exact_pages.extend(pages.iter().copied());
        }
    }

    /// Merges `other` into `self` (the aggregation operation of Figure 6:
    /// frequencies and execution times add, heatmaps OR).
    pub fn merge(&mut self, other: &StatsTable) {
        for (ty, stats) in &other.entries {
            let bits = self.heatmap_bits;
            let e = self
                .entries
                .entry(*ty)
                .or_insert_with(|| TypeStats::new(bits));
            e.frequency += stats.frequency;
            e.exec_cycles += stats.exec_cycles;
            e.heatmap.union_with(&stats.heatmap);
            e.exact_pages.extend(stats.exact_pages.iter().copied());
        }
    }

    /// Clears all entries (done at each epoch boundary: "the Page-heatmap
    /// associated with each superFuncType is set to all zeros").
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Entry for a type, if present.
    pub fn get(&self, sf_type: SuperFuncType) -> Option<&TypeStats> {
        self.entries.get(&sf_type)
    }

    /// Iterates entries in deterministic type order.
    pub fn iter(&self) -> impl Iterator<Item = (&SuperFuncType, &TypeStats)> {
        self.entries.iter()
    }

    /// Number of known types.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no type has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total execution cycles across all types.
    pub fn total_exec_cycles(&self) -> u64 {
        self.entries.values().map(|e| e.exec_cycles).sum()
    }

    /// Execution fraction per type, in deterministic order; empty when no
    /// execution has been recorded.
    pub fn exec_fractions(&self) -> Vec<(SuperFuncType, f64)> {
        let total = self.total_exec_cycles();
        if total == 0 {
            return Vec::new();
        }
        self.entries
            .iter()
            .map(|(ty, e)| (*ty, e.exec_cycles as f64 / total as f64))
            .collect()
    }

    /// The heatmap width used by this table.
    pub fn heatmap_bits(&self) -> u32 {
        self.heatmap_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedtask_workload::SfCategory;

    fn ty(sub: u64) -> SuperFuncType {
        SuperFuncType::new(SfCategory::SystemCall, sub)
    }

    fn hm(pages: &[u64]) -> PageHeatmap {
        let mut h = PageHeatmap::new(512);
        for &p in pages {
            h.insert_pfn(p);
        }
        h
    }

    #[test]
    fn record_accumulates() {
        let mut t = StatsTable::new(512);
        t.record_execution(ty(3), 100, Some(&hm(&[1, 2])), None);
        t.record_execution(ty(3), 50, Some(&hm(&[3])), None);
        let e = t.get(ty(3)).unwrap();
        assert_eq!(e.frequency, 2);
        assert_eq!(e.exec_cycles, 150);
        assert_eq!(e.mean_exec_cycles(), 75.0);
        assert!(e.heatmap.maybe_contains(1));
        assert!(e.heatmap.maybe_contains(3));
    }

    #[test]
    fn merge_matches_figure6_aggregation() {
        // Figure 6: global frequency = sum, global exec = sum, global
        // heatmap = OR.
        let mut a = StatsTable::new(512);
        a.record_execution(ty(1), 10, Some(&hm(&[1])), None);
        let mut b = StatsTable::new(512);
        b.record_execution(ty(1), 5, Some(&hm(&[2])), None);
        b.record_execution(ty(2), 7, Some(&hm(&[9])), None);
        a.merge(&b);
        let e1 = a.get(ty(1)).unwrap();
        assert_eq!(e1.frequency, 2);
        assert_eq!(e1.exec_cycles, 15);
        assert!(e1.heatmap.maybe_contains(1) && e1.heatmap.maybe_contains(2));
        assert_eq!(a.get(ty(2)).unwrap().exec_cycles, 7);
    }

    #[test]
    fn exec_fractions_sum_to_one() {
        let mut t = StatsTable::new(512);
        t.record_execution(ty(1), 25, None, None);
        t.record_execution(ty(2), 75, None, None);
        let fr = t.exec_fractions();
        assert_eq!(fr.len(), 2);
        let sum: f64 = fr.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((fr[0].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_epoch_state() {
        let mut t = StatsTable::new(512);
        t.record_execution(ty(1), 10, None, None);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.total_exec_cycles(), 0);
    }

    #[test]
    fn exact_pages_tracked_when_provided() {
        let mut t = StatsTable::new(512);
        let pages: HashSet<u64> = [4u64, 5].into_iter().collect();
        t.record_execution(ty(1), 10, None, Some(&pages));
        assert_eq!(t.get(ty(1)).unwrap().exact_pages.len(), 2);
    }

    #[test]
    fn empty_fractions_for_empty_table() {
        assert!(StatsTable::new(512).exec_fractions().is_empty());
    }
}
