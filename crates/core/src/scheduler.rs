//! The SchedTask scheduler: TAlloc (Section 5.2) + TMigrate (Section 5.3)
//! on top of the hardware Page-heatmap registers.

use crate::alloc_table::AllocationTable;
use crate::overlap::OverlapTable;
use crate::stats_table::StatsTable;
use crate::stealing::StealPolicy;
use schedtask_kernel::obs::{ObsEvent, Observer, StealLevel};
use schedtask_kernel::{CoreId, EngineCore, SchedError, SchedEvent, Scheduler, SfId, SwitchReason};
use schedtask_metrics::cosine_similarity;
use schedtask_sim::PageHeatmap;
use schedtask_workload::{SfCategory, SuperFuncType};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Configuration of the SchedTask technique.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedTaskConfig {
    /// Page-heatmap register width in bits (the paper chooses 512;
    /// Figure 11 sweeps 128-2048).
    pub heatmap_bits: u32,
    /// Work-stealing strategy (Figure 9; the paper's default is
    /// *steal similar work also*).
    pub steal_policy: StealPolicy,
    /// TAlloc re-allocates cores only when the cosine similarity of the
    /// last two epochs' execution fractions drops below this threshold
    /// (Section 5.2: 0.98).
    pub realloc_threshold: f64,
    /// Use exact page sets instead of Bloom heatmaps when building the
    /// overlap table (Figure 11's "ideal ranking" configuration;
    /// impossible in real hardware).
    pub use_exact_overlap: bool,
    /// Record, at every TAlloc, both the Bloom and the exact pairwise
    /// overlaps so experiments can compute Kendall's τ_B (Figure 11).
    pub collect_ranking_validation: bool,
    /// Model the *software rendition* of the Page-heatmap that
    /// Section 3.2 discusses and rejects: without the hardware register,
    /// software must translate every instruction's virtual address to
    /// its PFN through the TLB/page tables. Charged as extra kernel
    /// instructions proportional to each executed segment.
    pub software_rendition: bool,
    /// Ablation of TMigrate's "steal half of them": when true, the
    /// similar-work steal takes only a single SuperFunction, paying the
    /// cold i-cache warm-up once per steal instead of amortizing it.
    pub steal_one_only: bool,
}

impl Default for SchedTaskConfig {
    fn default() -> Self {
        SchedTaskConfig {
            heatmap_bits: PageHeatmap::DEFAULT_BITS,
            steal_policy: StealPolicy::SimilarWorkAlso,
            realloc_threshold: 0.98,
            use_exact_overlap: false,
            collect_ranking_validation: false,
            software_rendition: false,
            steal_one_only: false,
        }
    }
}

/// Pairwise overlaps recorded at one TAlloc pass: for each type, every
/// same-domain candidate with its Bloom overlap and exact page overlap.
pub type EpochRankings = Vec<(SuperFuncType, Vec<(SuperFuncType, u32, u32)>)>;

/// Observer that accumulates TAlloc's ranking-validation snapshots
/// (Figure 11).
///
/// Shares the [`Observer`] trait with the generic sinks so experiments
/// hold it as an `Arc` like any other observer; the rankings themselves
/// are typed data the scheduler pushes directly (they are too rich for
/// the generic event stream). The scheduler half lives inside an engine
/// that parallel sweeps move onto worker threads, while the experiment
/// half reads the snapshots after `run()` returns — hence the interior
/// `Mutex`.
#[derive(Debug, Default)]
pub struct RankingObserver {
    shared: Mutex<Vec<EpochRankings>>,
}

impl RankingObserver {
    /// A fresh, empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one TAlloc pass's rankings (scheduler side).
    fn record(&self, epoch: EpochRankings) {
        self.shared
            .lock()
            .expect("ranking observer lock")
            .push(epoch);
    }

    /// True if no TAlloc pass recorded rankings yet.
    pub fn is_empty(&self) -> bool {
        self.shared
            .lock()
            .expect("ranking observer lock")
            .is_empty()
    }

    /// Number of recorded TAlloc passes.
    pub fn len(&self) -> usize {
        self.shared.lock().expect("ranking observer lock").len()
    }

    /// A copy of every recorded epoch's rankings (experiment side).
    pub fn snapshots(&self) -> Vec<EpochRankings> {
        self.shared.lock().expect("ranking observer lock").clone()
    }
}

/// The rankings arrive through the typed [`RankingObserver::snapshots`]
/// side channel, so the generic event stream needs no handling here.
impl Observer for RankingObserver {}

/// The SchedTask scheduler.
///
/// # Examples
///
/// ```
/// use schedtask::{SchedTaskConfig, SchedTaskScheduler};
/// use schedtask_kernel::{Engine, EngineConfig, WorkloadSpec};
/// use schedtask_sim::SystemConfig;
/// use schedtask_workload::BenchmarkKind;
///
/// let cfg = EngineConfig::fast()
///     .with_system(SystemConfig::table2().with_cores(4))
///     .with_max_instructions(200_000);
/// let sched = SchedTaskScheduler::new(4, SchedTaskConfig::default());
/// let mut engine = Engine::new(
///     cfg,
///     &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
///     Box::new(sched),
/// )
/// .expect("valid config");
/// let stats = engine.run().expect("run succeeds");
/// assert!(stats.total_instructions() > 0);
/// ```
#[derive(Debug)]
pub struct SchedTaskScheduler {
    cfg: SchedTaskConfig,
    per_core_stats: Vec<StatsTable>,
    alloc: AllocationTable,
    overlap: OverlapTable,
    queues: Vec<VecDeque<SfId>>,
    waiting_cycles: Vec<f64>,
    mean_exec: HashMap<SuperFuncType, f64>,
    dispatch_cycles_at: HashMap<SfId, u64>,
    dispatch_instr_at: HashMap<SfId, u64>,
    last_segment_instr: u64,
    prev_fractions: BTreeMap<SuperFuncType, f64>,
    irq_routes: HashMap<u64, CoreId>,
    validation: Option<Arc<RankingObserver>>,
    spread_counter: usize,
    epochs_run: u64,
    reallocations: u64,
}

/// Default waiting-time estimate before a type's mean execution time is
/// known (cycles).
const DEFAULT_EXEC_ESTIMATE: f64 = 3_000.0;

impl SchedTaskScheduler {
    /// Creates a SchedTask scheduler for `num_cores` cores.
    pub fn new(num_cores: usize, cfg: SchedTaskConfig) -> Self {
        SchedTaskScheduler {
            per_core_stats: (0..num_cores)
                .map(|_| StatsTable::new(cfg.heatmap_bits))
                .collect(),
            alloc: AllocationTable::new(num_cores),
            overlap: OverlapTable::new(),
            queues: vec![VecDeque::new(); num_cores],
            waiting_cycles: vec![0.0; num_cores],
            mean_exec: HashMap::new(),
            dispatch_cycles_at: HashMap::new(),
            dispatch_instr_at: HashMap::new(),
            last_segment_instr: 0,
            prev_fractions: BTreeMap::new(),
            irq_routes: HashMap::new(),
            validation: None,
            spread_counter: 0,
            epochs_run: 0,
            reallocations: 0,
            cfg,
        }
    }

    /// Creates the scheduler plus a shared observer for Figure 11's
    /// ranking validation (forces `collect_ranking_validation`).
    pub fn with_ranking_observer(
        num_cores: usize,
        mut cfg: SchedTaskConfig,
    ) -> (Self, Arc<RankingObserver>) {
        cfg.collect_ranking_validation = true;
        let mut s = Self::new(num_cores, cfg);
        let observer = Arc::new(RankingObserver::new());
        s.validation = Some(Arc::clone(&observer));
        (s, observer)
    }

    /// Epochs processed so far.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Number of TAlloc passes that actually re-allocated cores (the
    /// cosine-similarity trigger of Section 5.2).
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    fn exec_estimate(&self, ty: SuperFuncType) -> f64 {
        self.mean_exec
            .get(&ty)
            .copied()
            .unwrap_or(DEFAULT_EXEC_ESTIMATE)
    }

    fn push_queue(&mut self, ctx: &EngineCore, core: usize, sf: SfId) {
        let ty = ctx.sf_type(sf);
        self.waiting_cycles[core] += self.exec_estimate(ty);
        // Bottom halves are softirqs: they run ahead of ordinary work,
        // as in the Linux kernel. Everything else is FCFS (which is what
        // gives SchedTask its 0.99 Jain fairness, Section 6.1).
        if ty.category() == SfCategory::BottomHalf {
            self.queues[core].push_front(sf);
        } else {
            self.queues[core].push_back(sf);
        }
    }

    fn pop_queue(&mut self, ctx: &EngineCore, core: usize) -> Option<SfId> {
        let sf = self.queues[core].pop_front()?;
        let ty = ctx.sf_type(sf);
        self.waiting_cycles[core] = (self.waiting_cycles[core] - self.exec_estimate(ty)).max(0.0);
        Some(sf)
    }

    fn remove_from_queue(&mut self, ctx: &EngineCore, core: usize, pos: usize) -> Option<SfId> {
        // Positions come from a `position()`/`enumerate()` over the same
        // queue in the same borrow, so this only returns `None` if a
        // caller miscomputes.
        let sf = self.queues[core].remove(pos)?;
        let ty = ctx.sf_type(sf);
        self.waiting_cycles[core] = (self.waiting_cycles[core] - self.exec_estimate(ty)).max(0.0);
        Some(sf)
    }

    /// Steal-same-work-only: take one SuperFunction whose type is mapped
    /// to `me`, preferring the victim with the maximum waiting time.
    fn steal_same(&mut self, ctx: &EngineCore, me: usize) -> Option<SfId> {
        let my_types = self.alloc.types_on(CoreId(me)).to_vec();
        if my_types.is_empty() {
            return None;
        }
        let mut victims: Vec<usize> = (0..self.queues.len()).filter(|&c| c != me).collect();
        victims.sort_by(|&a, &b| {
            self.waiting_cycles[b]
                .partial_cmp(&self.waiting_cycles[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for v in victims {
            let pos = self.queues[v]
                .iter()
                .position(|&sf| my_types.contains(&ctx.sf_type(sf)));
            if let Some(pos) = pos {
                if let Some(sf) = self.remove_from_queue(ctx, v, pos) {
                    let at = ctx.now();
                    ctx.emit_obs(|| ObsEvent::Stolen {
                        at,
                        sf: sf.0,
                        thief: me as u32,
                        victim: v as u32,
                        level: StealLevel::SameWork,
                    });
                    return Some(sf);
                }
            }
        }
        None
    }

    /// Steal-similar-work-also: walk the combined overlap ranking of the
    /// local types in decreasing overlap order; at the first type found
    /// in a remote queue, steal half of that core's matching
    /// SuperFunctions (to amortize the initial cold misses) and run the
    /// first.
    fn steal_similar(&mut self, ctx: &EngineCore, me: usize) -> Option<SfId> {
        let my_types = self.alloc.types_on(CoreId(me)).to_vec();
        let ranking = self.overlap.combined_ranking(&my_types);
        for (cand, _ov) in ranking {
            for v in 0..self.queues.len() {
                if v == me {
                    continue;
                }
                let positions: Vec<usize> = self.queues[v]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &sf)| ctx.sf_type(sf) == cand)
                    .map(|(i, _)| i)
                    .collect();
                if positions.is_empty() {
                    continue;
                }
                // Steal half (at least one), from the back of the list so
                // earlier indices stay valid.
                let take = if self.cfg.steal_one_only {
                    1
                } else {
                    positions.len().div_ceil(2)
                };
                let mut stolen = Vec::with_capacity(take);
                for &pos in positions.iter().rev().take(take) {
                    stolen.extend(self.remove_from_queue(ctx, v, pos));
                }
                if stolen.is_empty() {
                    continue;
                }
                stolen.reverse();
                let at = ctx.now();
                for &sf in &stolen {
                    ctx.emit_obs(|| ObsEvent::Stolen {
                        at,
                        sf: sf.0,
                        thief: me as u32,
                        victim: v as u32,
                        level: StealLevel::SimilarWork,
                    });
                }
                let first = stolen.remove(0);
                for sf in stolen {
                    self.push_queue(ctx, me, sf);
                }
                return Some(first);
            }
        }
        None
    }

    /// Alternate strategy: take the head of the queue with the maximum
    /// waiting time, ignoring similarity.
    fn steal_max_waiting(&mut self, ctx: &EngineCore, me: usize) -> Option<SfId> {
        let victim = (0..self.queues.len())
            .filter(|&c| c != me && !self.queues[c].is_empty())
            .max_by(|&a, &b| {
                self.waiting_cycles[a]
                    .partial_cmp(&self.waiting_cycles[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            })?;
        let sf = self.pop_queue(ctx, victim)?;
        let at = ctx.now();
        ctx.emit_obs(|| ObsEvent::Stolen {
            at,
            sf: sf.0,
            thief: me as u32,
            victim: victim as u32,
            level: StealLevel::MaxWaiting,
        });
        Some(sf)
    }

    /// The TAlloc pass (Section 5.2).
    fn talloc(&mut self, ctx: &mut EngineCore) {
        self.epochs_run += 1;
        let num_cores = ctx.num_cores();

        // 1. Aggregate per-core stats tables into the system-wide table.
        let mut system = StatsTable::new(self.cfg.heatmap_bits);
        for t in &self.per_core_stats {
            system.merge(t);
        }
        if system.is_empty() {
            return;
        }

        // 2. Update mean execution times (for waiting-time estimates).
        for (ty, e) in system.iter() {
            self.mean_exec.insert(*ty, e.mean_exec_cycles());
        }

        // 3. Re-allocate cores only if the breakup changed enough.
        let fractions: BTreeMap<SuperFuncType, f64> = system.exec_fractions().into_iter().collect();
        let keys: Vec<SuperFuncType> = fractions
            .keys()
            .chain(self.prev_fractions.keys())
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let cur: Vec<f64> = keys
            .iter()
            .map(|k| *fractions.get(k).unwrap_or(&0.0))
            .collect();
        let prev: Vec<f64> = keys
            .iter()
            .map(|k| *self.prev_fractions.get(k).unwrap_or(&0.0))
            .collect();
        let similarity = cosine_similarity(&cur, &prev);
        if self.alloc.is_empty() || similarity < self.cfg.realloc_threshold {
            self.alloc = AllocationTable::from_stats(&system, num_cores);
            self.reallocations += 1;
            let at = ctx.now();
            ctx.emit_obs(|| ObsEvent::EpochRealloc { at });

            // Program the interrupt controller: IRQ x served by the first
            // core allocated to its type; unrouted IRQs go to core 0.
            self.irq_routes.clear();
            for (ty, cores) in self.alloc.iter() {
                if ty.category() == SfCategory::Interrupt {
                    if let Some(&first) = cores.first() {
                        self.irq_routes.insert(ty.subcategory(), first);
                    }
                }
            }
        }
        self.prev_fractions = fractions;

        // 4. Rebuild the overlap table from this epoch's heatmaps.
        self.overlap = OverlapTable::from_stats(&system, self.cfg.use_exact_overlap);

        // 5. Ranking validation for Figure 11.
        if self.cfg.collect_ranking_validation {
            if let Some(obs) = &self.validation {
                let mut epoch: EpochRankings = Vec::new();
                for (&a, sa) in system.iter() {
                    let mut row = Vec::new();
                    for (&b, sb) in system.iter() {
                        if a == b || a.is_os() != b.is_os() {
                            continue;
                        }
                        let bloom = sa.heatmap.overlap(&sb.heatmap);
                        let exact = sa.exact_pages.intersection(&sb.exact_pages).count() as u32;
                        row.push((b, bloom, exact));
                    }
                    if !row.is_empty() {
                        epoch.push((a, row));
                    }
                }
                if !epoch.is_empty() {
                    obs.record(epoch);
                }
            }
        }

        // 6. Fresh epoch: clear the per-core tables.
        for t in &mut self.per_core_stats {
            t.clear();
        }
    }
}

impl Scheduler for SchedTaskScheduler {
    fn name(&self) -> &'static str {
        "SchedTask"
    }

    fn init(&mut self, ctx: &mut EngineCore) -> Result<(), SchedError> {
        if self.cfg.use_exact_overlap || self.cfg.collect_ranking_validation {
            ctx.exact_pages_enable(true);
        }
        Ok(())
    }

    fn enqueue(
        &mut self,
        ctx: &mut EngineCore,
        sf: SfId,
        origin: Option<CoreId>,
    ) -> Result<(), SchedError> {
        let ty = ctx.sf_type(sf);
        let cores = self.alloc.cores_for(ty);
        let target = if cores.is_empty() {
            // No allocation-table entry: run on the local core
            // (Section 5.3), spreading initial threads round-robin.
            match origin {
                Some(c) => c.0,
                None => {
                    self.spread_counter = (self.spread_counter + 1) % self.queues.len();
                    self.spread_counter
                }
            }
        } else {
            // The allocated core with the least waiting time; among
            // near-equally loaded cores, prefer the thread's last core to
            // preserve its private-data locality.
            let min_core = cores
                .iter()
                .map(|c| c.0)
                .min_by(|&a, &b| {
                    self.waiting_cycles[a]
                        .partial_cmp(&self.waiting_cycles[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                })
                .ok_or_else(|| SchedError::NoCandidate {
                    detail: format!("allocation entry for {ty:?} lists no cores"),
                })?;
            match ctx.thread_last_core(ctx.sf_tid(sf)) {
                Some(last)
                    if cores.contains(&last)
                        && self.waiting_cycles[last.0]
                            <= self.waiting_cycles[min_core] + self.exec_estimate(ty) =>
                {
                    last.0
                }
                _ => min_core,
            }
        };
        let at = ctx.now();
        ctx.emit_obs(|| ObsEvent::Enqueued {
            at,
            sf: sf.0,
            core: target as u32,
        });
        self.push_queue(ctx, target, sf);
        Ok(())
    }

    fn pick_next(
        &mut self,
        ctx: &mut EngineCore,
        core: CoreId,
    ) -> Result<Option<SfId>, SchedError> {
        if let Some(sf) = self.pop_queue(ctx, core.0) {
            return Ok(Some(sf));
        }
        Ok(match self.cfg.steal_policy {
            StealPolicy::Nothing => None,
            StealPolicy::SameWorkOnly => self.steal_same(ctx, core.0),
            StealPolicy::SimilarWorkAlso => self
                .steal_same(ctx, core.0)
                .or_else(|| self.steal_similar(ctx, core.0))
                // Last resort: take anything from the most backlogged
                // core rather than idling. Similarity is exhausted at
                // this point (the overlap table never spans the OS ↔
                // application divide), and the paper's measured idleness
                // for the default strategy is ≈0 %.
                .or_else(|| self.steal_max_waiting(ctx, core.0)),
            StealPolicy::MaxWaitingTime => self.steal_max_waiting(ctx, core.0),
        })
    }

    fn queued_sfs(&self, out: &mut Vec<SfId>) -> bool {
        for q in &self.queues {
            out.extend(q.iter().copied());
        }
        true
    }

    fn on_dispatch(&mut self, ctx: &mut EngineCore, core: CoreId, sf: SfId) {
        // startStatsCollection: clear and arm the Page-heatmap register.
        self.dispatch_cycles_at.insert(sf, ctx.sf_cycles(sf));
        self.dispatch_instr_at.insert(sf, ctx.sf_instructions(sf));
        ctx.heatmap_load(core, PageHeatmap::new(self.cfg.heatmap_bits));
    }

    fn on_switch_out(
        &mut self,
        ctx: &mut EngineCore,
        core: CoreId,
        sf: SfId,
        _reason: SwitchReason,
    ) {
        // stopStatsCollection: account execution time, OR the register
        // into this core's stats-table entry.
        let start = self.dispatch_cycles_at.remove(&sf).unwrap_or(0);
        let segment = ctx.sf_cycles(sf).saturating_sub(start);
        let instr_start = self.dispatch_instr_at.remove(&sf).unwrap_or(0);
        self.last_segment_instr = ctx.sf_instructions(sf).saturating_sub(instr_start);
        let heatmap = ctx.heatmap_take(core);
        let exact = if self.cfg.use_exact_overlap || self.cfg.collect_ranking_validation {
            Some(ctx.exact_pages_take(core))
        } else {
            None
        };
        let ty = ctx.sf_type(sf);
        self.per_core_stats[core.0].record_execution(ty, segment, heatmap.as_ref(), exact.as_ref());
    }

    fn on_epoch(&mut self, ctx: &mut EngineCore) -> Result<(), SchedError> {
        self.talloc(ctx);
        Ok(())
    }

    fn route_interrupt(&mut self, _ctx: &mut EngineCore, irq: u64) -> CoreId {
        self.irq_routes.get(&irq).copied().unwrap_or(CoreId(0))
    }

    fn route_completion(&mut self, ctx: &mut EngineCore, irq: u64, waiter: SfId) -> CoreId {
        // TAlloc programs the interrupt controller (Section 5.2); until
        // it has, completions steer to the submitting thread's core.
        if let Some(&core) = self.irq_routes.get(&irq) {
            return core;
        }
        let tid = ctx.sf_tid(waiter);
        ctx.thread_last_core(tid).unwrap_or(CoreId(0))
    }

    fn overhead_for(&self, ctx: &EngineCore, event: SchedEvent, sf: Option<SfId>) -> u64 {
        let base = self.overhead_instructions(event);
        if !self.cfg.software_rendition {
            return base;
        }
        // Software rendition (Section 3.2): mapping each instruction's
        // virtual address to its PFN costs extra kernel work — modelled
        // as ~12 % of the just-executed segment, charged when the
        // segment ends.
        let extra = match event {
            SchedEvent::SfStop | SchedEvent::SfPause => {
                let segment = sf
                    .and_then(|id| {
                        self.dispatch_instr_at
                            .get(&id)
                            .map(|&at| ctx.sf_instructions(id).saturating_sub(at))
                    })
                    .unwrap_or(self.last_segment_instr);
                segment / 8
            }
            _ => 0,
        };
        base + extra
    }

    fn overhead_instructions(&self, event: SchedEvent) -> u64 {
        match event {
            // TMigrate: ≈3.2 % of execution (Section 6.1).
            SchedEvent::SfStart | SchedEvent::SfStop => 60,
            SchedEvent::SfPause | SchedEvent::SfWakeup => 40,
            // TAlloc: executed once per epoch on core 0, <0.01 %.
            SchedEvent::EpochAlloc => 5_000,
            SchedEvent::FullReschedule => 1_800,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedtask_kernel::{Engine, EngineConfig, WorkloadSpec};
    use schedtask_sim::SystemConfig;
    use schedtask_workload::BenchmarkKind;

    fn run(policy: StealPolicy, kind: BenchmarkKind, cores: usize) -> schedtask_kernel::SimStats {
        let cfg = EngineConfig::fast()
            .with_system(SystemConfig::table2().with_cores(cores))
            .with_max_instructions(600_000);
        let sched = SchedTaskScheduler::new(
            cores,
            SchedTaskConfig {
                steal_policy: policy,
                ..SchedTaskConfig::default()
            },
        );
        let mut engine = Engine::new(cfg, &WorkloadSpec::single(kind, 2.0), Box::new(sched))
            .expect("engine builds");
        engine.run().expect("run succeeds").clone()
    }

    #[test]
    fn schedtask_runs_all_benchmark_categories() {
        let stats = run(StealPolicy::SimilarWorkAlso, BenchmarkKind::FileSrv, 4);
        assert!(stats.instructions.application > 0);
        assert!(stats.instructions.syscall > 0);
        assert!(stats.instructions.bottom_half > 0);
    }

    #[test]
    fn stealing_reduces_idleness() {
        let none = run(StealPolicy::Nothing, BenchmarkKind::FileSrv, 4);
        let similar = run(StealPolicy::SimilarWorkAlso, BenchmarkKind::FileSrv, 4);
        assert!(
            similar.mean_idle_fraction() <= none.mean_idle_fraction() + 1e-9,
            "similar {} vs none {}",
            similar.mean_idle_fraction(),
            none.mean_idle_fraction()
        );
    }

    #[test]
    fn epochs_and_allocations_happen() {
        let cores = 4;
        let cfg = EngineConfig::fast()
            .with_system(SystemConfig::table2().with_cores(cores))
            .with_max_instructions(800_000);
        let sched = SchedTaskScheduler::new(cores, SchedTaskConfig::default());
        let mut engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Apache, 1.0),
            Box::new(sched),
        )
        .expect("engine builds");
        engine.run().expect("run succeeds");
        // The scheduler was consumed by the engine; re-run with a probe
        // via the ranking-observer API instead.
        let (sched, observer) =
            SchedTaskScheduler::with_ranking_observer(cores, SchedTaskConfig::default());
        let cfg = EngineConfig::fast()
            .with_system(SystemConfig::table2().with_cores(cores))
            .with_max_instructions(800_000);
        let mut engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Apache, 1.0),
            Box::new(sched),
        )
        .expect("engine builds");
        engine.run().expect("run succeeds");
        assert!(!observer.is_empty(), "no TAlloc ranking snapshots recorded");
    }

    #[test]
    fn ranking_validation_contains_bloom_and_exact() {
        let cores = 4;
        let (sched, observer) =
            SchedTaskScheduler::with_ranking_observer(cores, SchedTaskConfig::default());
        let cfg = EngineConfig::fast()
            .with_system(SystemConfig::table2().with_cores(cores))
            .with_max_instructions(600_000);
        let mut engine = Engine::new(
            cfg,
            &WorkloadSpec::single(BenchmarkKind::Find, 1.0),
            Box::new(sched),
        )
        .expect("engine builds");
        engine.run().expect("run succeeds");
        let snaps = observer.snapshots();
        assert!(!snaps.is_empty());
        let any_overlap = snaps
            .iter()
            .flat_map(|e| e.iter())
            .flat_map(|(_, row)| row.iter())
            .any(|&(_, bloom, exact)| bloom > 0 && exact > 0);
        assert!(any_overlap, "expected overlapping fs syscalls");
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = SchedTaskConfig::default();
        assert_eq!(cfg.heatmap_bits, 512);
        assert_eq!(cfg.realloc_threshold, 0.98);
        assert_eq!(cfg.steal_policy, StealPolicy::SimilarWorkAlso);
        assert!(!cfg.use_exact_overlap);
    }
}
