//! The overlap table (Section 5.2): for each superFuncType, a list of
//! other types sorted by decreasing Page-heatmap overlap, used by the
//! *steal similar work also* strategy.
//!
//! Per the paper, overlaps are **not** computed between OS-specific and
//! application superFuncTypes.

use crate::stats_table::StatsTable;
use schedtask_workload::SuperFuncType;
use std::collections::BTreeMap;

/// superFuncType → `[(other type, page overlap)]` in decreasing overlap
/// order.
#[derive(Debug, Clone, Default)]
pub struct OverlapTable {
    entries: BTreeMap<SuperFuncType, Vec<(SuperFuncType, u32)>>,
}

impl OverlapTable {
    /// An empty table.
    pub fn new() -> Self {
        OverlapTable::default()
    }

    /// Builds the table from a system-wide stats table using the
    /// Bloom-filter heatmaps (the hardware path). When `use_exact` is
    /// true, the exact page sets are used instead (Figure 11's ideal
    /// ranking).
    pub fn from_stats(stats: &StatsTable, use_exact: bool) -> Self {
        let mut entries = BTreeMap::new();
        for (a, sa) in stats.iter() {
            let mut list: Vec<(SuperFuncType, u32)> = Vec::new();
            for (b, sb) in stats.iter() {
                if a == b {
                    continue;
                }
                // Skip OS ↔ application pairs (Section 5.2).
                if a.is_os() != b.is_os() {
                    continue;
                }
                let overlap = if use_exact {
                    sa.exact_pages.intersection(&sb.exact_pages).count() as u32
                } else {
                    sa.heatmap.overlap(&sb.heatmap)
                };
                list.push((*b, overlap));
            }
            // Decreasing overlap; ties broken by type for determinism.
            list.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
            entries.insert(*a, list);
        }
        OverlapTable { entries }
    }

    /// The overlap list for `sf_type` (empty if unknown).
    pub fn overlaps_of(&self, sf_type: SuperFuncType) -> &[(SuperFuncType, u32)] {
        self.entries.get(&sf_type).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Merges the overlap lists of several types into one list in
    /// decreasing overlap order, keeping each candidate type's best
    /// overlap (TMigrate's *steal similar work also* combines the lists
    /// of every type mapped to the local core).
    pub fn combined_ranking(&self, types: &[SuperFuncType]) -> Vec<(SuperFuncType, u32)> {
        let mut best: BTreeMap<SuperFuncType, u32> = BTreeMap::new();
        for ty in types {
            for &(other, ov) in self.overlaps_of(*ty) {
                // Don't steal a type already local.
                if types.contains(&other) {
                    continue;
                }
                let e = best.entry(other).or_insert(0);
                *e = (*e).max(ov);
            }
        }
        let mut list: Vec<(SuperFuncType, u32)> = best.into_iter().collect();
        list.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        list
    }

    /// Number of types with overlap lists.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedtask_sim::PageHeatmap;
    use schedtask_workload::SfCategory;
    use std::collections::HashSet;

    fn ty(cat: SfCategory, sub: u64) -> SuperFuncType {
        SuperFuncType::new(cat, sub)
    }

    fn stats_with_pages(entries: &[(SuperFuncType, &[u64])]) -> StatsTable {
        let mut t = StatsTable::new(512);
        for (sft, pages) in entries {
            let mut hm = PageHeatmap::new(512);
            for &p in *pages {
                hm.insert_pfn(p);
            }
            let exact: HashSet<u64> = pages.iter().copied().collect();
            t.record_execution(*sft, 10, Some(&hm), Some(&exact));
        }
        t
    }

    #[test]
    fn similar_types_rank_first() {
        let read = ty(SfCategory::SystemCall, 3);
        let pread = ty(SfCategory::SystemCall, 180);
        let fork = ty(SfCategory::SystemCall, 2);
        let stats = stats_with_pages(&[
            (read, &[1, 2, 3, 4, 5, 6]),
            (pread, &[1, 2, 3, 4, 5, 7]),
            (fork, &[100, 101, 102]),
        ]);
        let table = OverlapTable::from_stats(&stats, false);
        let list = table.overlaps_of(read);
        assert_eq!(list[0].0, pread, "pread should be read's best match");
        assert!(list[0].1 > list[1].1);
    }

    #[test]
    fn os_and_application_types_are_not_compared() {
        let read = ty(SfCategory::SystemCall, 3);
        let app = ty(SfCategory::Application, 42);
        let stats = stats_with_pages(&[(read, &[1, 2, 3]), (app, &[1, 2, 3])]);
        let table = OverlapTable::from_stats(&stats, false);
        assert!(table.overlaps_of(read).is_empty());
        assert!(table.overlaps_of(app).is_empty());
    }

    #[test]
    fn exact_mode_counts_real_pages() {
        let a = ty(SfCategory::SystemCall, 1);
        let b = ty(SfCategory::SystemCall, 2);
        let stats = stats_with_pages(&[(a, &[1, 2, 3, 4]), (b, &[3, 4, 5])]);
        let table = OverlapTable::from_stats(&stats, true);
        assert_eq!(table.overlaps_of(a)[0], (b, 2));
    }

    #[test]
    fn combined_ranking_merges_and_excludes_local() {
        let a = ty(SfCategory::SystemCall, 1);
        let b = ty(SfCategory::SystemCall, 2);
        let c = ty(SfCategory::SystemCall, 3);
        let stats = stats_with_pages(&[(a, &[1, 2, 3]), (b, &[1, 2, 9]), (c, &[3, 9, 10])]);
        let table = OverlapTable::from_stats(&stats, true);
        let ranking = table.combined_ranking(&[a, b]);
        // Only c is a candidate (a and b are local).
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking[0].0, c);
    }

    #[test]
    fn empty_stats_give_empty_table() {
        let table = OverlapTable::from_stats(&StatsTable::new(512), false);
        assert!(table.is_empty());
        assert!(table
            .combined_ranking(&[ty(SfCategory::SystemCall, 1)])
            .is_empty());
    }

    #[test]
    fn application_types_compare_with_each_other() {
        let app1 = ty(SfCategory::Application, 1);
        let app2 = ty(SfCategory::Application, 2);
        let stats = stats_with_pages(&[(app1, &[1, 2]), (app2, &[1, 2])]);
        let table = OverlapTable::from_stats(&stats, true);
        assert_eq!(table.overlaps_of(app1)[0].0, app2);
    }
}
