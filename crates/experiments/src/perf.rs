//! Wall-clock performance measurement of the simulator itself
//! (`repro perf`).
//!
//! Every other experiment in this crate measures the *simulated* machine;
//! this one measures the *simulator*: how many simulated instructions per
//! wall-clock second the engine sustains on the standard technique ×
//! benchmark comparison sweep. The resulting JSON artefact
//! (`BENCH_<label>.json`) is checked into the repository so the perf
//! trajectory is tracked across PRs, and the CI `perf-smoke` job compares
//! a fresh quick-mode measurement against the committed baseline.
//!
//! Cells are always run **serially** — parallel workers would contend for
//! cores and corrupt the per-cell wall-clock numbers.

use crate::runner::{ExpParams, RunBuilder, Technique};
use schedtask_workload::BenchmarkKind;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The machine caveat embedded at the top of every artefact.
pub const MACHINE_CAVEAT: &str = "Wall-clock numbers are machine- and load-dependent: compare \
     artefacts only against measurements taken on the same machine class, and expect noise of \
     several percent between runs. Committed baselines are recorded on the PR build container.";

/// One timed sweep cell.
#[derive(Debug, Clone)]
pub struct PerfCell {
    /// The scheduling technique.
    pub technique: Technique,
    /// The benchmark.
    pub benchmark: BenchmarkKind,
    /// Simulated instructions retired (all categories, measured window).
    pub instructions: u64,
    /// Simulated cycles in the measured window.
    pub sim_cycles: u64,
    /// Wall-clock time for the whole cell (engine build + run).
    pub wall: Duration,
    /// False when the cell failed (its other fields are zero).
    pub ok: bool,
}

/// Per-technique aggregate of a [`PerfReport`].
#[derive(Debug, Clone)]
pub struct TechniquePerf {
    /// Technique display name.
    pub name: String,
    /// Cells measured.
    pub cells: usize,
    /// Total simulated instructions across the technique's cells.
    pub instructions: u64,
    /// Total simulated cycles.
    pub sim_cycles: u64,
    /// Total wall-clock seconds.
    pub wall_seconds: f64,
    /// Simulated instructions per wall-clock second.
    pub instr_per_sec: f64,
}

/// A full wall-clock measurement over the comparison sweep.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// `standard` or `quick`.
    pub mode: String,
    /// Master seed the sweep ran with.
    pub seed: u64,
    /// Baseline core count.
    pub cores: usize,
    /// Workload scale per cell.
    pub scale: f64,
    /// Every timed cell, technique-major.
    pub cells: Vec<PerfCell>,
}

impl PerfReport {
    /// Runs and times every (technique × benchmark) cell serially.
    pub fn measure(
        params: &ExpParams,
        techniques: &[Technique],
        benchmarks: &[BenchmarkKind],
        scale: f64,
        mode: &str,
    ) -> PerfReport {
        let mut cells = Vec::with_capacity(techniques.len() * benchmarks.len());
        for &technique in techniques {
            for &benchmark in benchmarks {
                let started = Instant::now();
                let result = RunBuilder::new(params)
                    .technique(technique)
                    .benchmark(benchmark, scale)
                    .run();
                let wall = started.elapsed();
                let cell = match result {
                    Ok(stats) => PerfCell {
                        technique,
                        benchmark,
                        instructions: stats.total_instructions(),
                        sim_cycles: stats.final_cycle,
                        wall,
                        ok: true,
                    },
                    Err(_) => PerfCell {
                        technique,
                        benchmark,
                        instructions: 0,
                        sim_cycles: 0,
                        wall,
                        ok: false,
                    },
                };
                cells.push(cell);
            }
        }
        PerfReport {
            mode: mode.to_string(),
            seed: params.seed,
            cores: params.cores,
            scale,
            cells,
        }
    }

    /// Per-technique aggregates in first-appearance order.
    pub fn by_technique(&self) -> Vec<TechniquePerf> {
        let mut rows: Vec<TechniquePerf> = Vec::new();
        for cell in &self.cells {
            let name = cell.technique.name();
            let row = match rows.iter_mut().find(|r| r.name == name) {
                Some(r) => r,
                None => {
                    rows.push(TechniquePerf {
                        name: name.to_string(),
                        cells: 0,
                        instructions: 0,
                        sim_cycles: 0,
                        wall_seconds: 0.0,
                        instr_per_sec: 0.0,
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.cells += 1;
            row.instructions += cell.instructions;
            row.sim_cycles += cell.sim_cycles;
            row.wall_seconds += cell.wall.as_secs_f64();
        }
        for row in &mut rows {
            row.instr_per_sec = if row.wall_seconds > 0.0 {
                row.instructions as f64 / row.wall_seconds
            } else {
                0.0
            };
        }
        rows
    }

    /// Total simulated instructions across all cells.
    pub fn total_instructions(&self) -> u64 {
        self.cells.iter().map(|c| c.instructions).sum()
    }

    /// Total wall-clock seconds across all cells.
    pub fn total_wall_seconds(&self) -> f64 {
        self.cells.iter().map(|c| c.wall.as_secs_f64()).sum()
    }

    /// Simulated instructions per wall-clock second over the whole sweep.
    pub fn instr_per_sec(&self) -> f64 {
        let wall = self.total_wall_seconds();
        if wall > 0.0 {
            self.total_instructions() as f64 / wall
        } else {
            0.0
        }
    }

    /// Sweep cells completed per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        let wall = self.total_wall_seconds();
        if wall > 0.0 {
            self.cells.len() as f64 / wall
        } else {
            0.0
        }
    }

    /// Number of failed cells.
    pub fn failed(&self) -> usize {
        self.cells.iter().filter(|c| !c.ok).count()
    }

    /// Renders the artefact as pretty-printed JSON (hand-rolled: the
    /// build environment has no serde).
    pub fn to_json(&self, label: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"_header\": \"{}\",",
            json_escape(&format!(
                "Wall-clock perf artefact for the SchedTask reproduction simulator. {MACHINE_CAVEAT}"
            ))
        );
        let _ = writeln!(out, "  \"label\": \"{}\",", json_escape(label));
        let _ = writeln!(out, "  \"mode\": \"{}\",", json_escape(&self.mode));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"cores\": {},", self.cores);
        let _ = writeln!(out, "  \"scale\": {},", fmt_f64(self.scale));
        let _ = writeln!(out, "  \"techniques\": [");
        let rows = self.by_technique();
        for (i, row) in rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"cells\": {}, \"instructions\": {}, \
                 \"sim_cycles\": {}, \"wall_seconds\": {}, \"instr_per_sec\": {}}}{}",
                json_escape(&row.name),
                row.cells,
                row.instructions,
                row.sim_cycles,
                fmt_f64(row.wall_seconds),
                fmt_f64(row.instr_per_sec),
                if i + 1 < rows.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"totals\": {{");
        let _ = writeln!(out, "    \"cells\": {},", self.cells.len());
        let _ = writeln!(out, "    \"failed_cells\": {},", self.failed());
        let _ = writeln!(out, "    \"instructions\": {},", self.total_instructions());
        let _ = writeln!(
            out,
            "    \"wall_seconds\": {},",
            fmt_f64(self.total_wall_seconds())
        );
        let _ = writeln!(
            out,
            "    \"instr_per_sec\": {},",
            fmt_f64(self.instr_per_sec())
        );
        let _ = writeln!(
            out,
            "    \"cells_per_sec\": {}",
            fmt_f64(self.cells_per_sec())
        );
        out.push_str("  }\n}\n");
        out
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} cells ({} failed), {:.1} M simulated instr in {:.2} s wall = {:.2} M instr/s, {:.2} cells/s",
            self.cells.len(),
            self.failed(),
            self.total_instructions() as f64 / 1e6,
            self.total_wall_seconds(),
            self.instr_per_sec() / 1e6,
            self.cells_per_sec(),
        )
    }
}

/// Extracts `totals.instr_per_sec` from an artefact previously written by
/// [`PerfReport::to_json`]. Tiny special-purpose parser — this crate has
/// no JSON dependency — so it only understands that writer's layout.
pub fn baseline_instr_per_sec(artefact: &str) -> Option<f64> {
    let totals = artefact.split("\"totals\"").nth(1)?;
    let after_key = totals.split("\"instr_per_sec\":").nth(1)?;
    let value: String = after_key
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    value.parse().ok()
}

/// Result of comparing a fresh measurement against a committed baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerfCheck {
    /// Within tolerance (or faster). Holds the measured/baseline ratio.
    Pass(f64),
    /// Slower than `baseline * (1 - tolerance)`. Holds the ratio.
    Regression(f64),
}

/// Compares `measured` instr/sec against a baseline artefact's with a
/// relative `tolerance_pct` regression budget.
pub fn check_against_baseline(
    measured: f64,
    baseline_artefact: &str,
    tolerance_pct: f64,
) -> Result<PerfCheck, String> {
    let baseline = baseline_instr_per_sec(baseline_artefact)
        .ok_or_else(|| "baseline artefact has no totals.instr_per_sec".to_string())?;
    if baseline <= 0.0 {
        return Err(format!("baseline instr_per_sec {baseline} is not positive"));
    }
    let ratio = measured / baseline;
    if ratio < 1.0 - tolerance_pct / 100.0 {
        Ok(PerfCheck::Regression(ratio))
    } else {
        Ok(PerfCheck::Pass(ratio))
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PerfReport {
        let mut p = ExpParams::quick();
        p.cores = 4;
        p.max_instructions = 120_000;
        p.warmup_instructions = 30_000;
        PerfReport::measure(
            &p,
            &[Technique::Linux, Technique::SchedTask],
            &[BenchmarkKind::Find],
            1.0,
            "test",
        )
    }

    #[test]
    fn measure_times_every_cell() {
        let r = tiny_report();
        assert_eq!(r.cells.len(), 2);
        assert_eq!(r.failed(), 0);
        assert!(r.total_instructions() > 0);
        assert!(r.instr_per_sec() > 0.0);
        assert!(r.cells_per_sec() > 0.0);
        assert_eq!(r.by_technique().len(), 2);
        assert!(!r.summary().is_empty());
    }

    #[test]
    fn json_round_trips_instr_per_sec() {
        let r = tiny_report();
        let json = r.to_json("test");
        let parsed = baseline_instr_per_sec(&json).expect("totals present");
        let expected = r.instr_per_sec();
        assert!(
            (parsed - expected).abs() <= expected * 1e-9,
            "{parsed} vs {expected}"
        );
        assert!(json.contains("machine- and load-dependent"));
        assert!(json.contains("\"label\": \"test\""));
    }

    #[test]
    fn regression_check_flags_slowdowns() {
        let r = tiny_report();
        let json = r.to_json("base");
        let base = r.instr_per_sec();
        match check_against_baseline(base * 0.9, &json, 25.0).expect("parses") {
            PerfCheck::Pass(ratio) => assert!((ratio - 0.9).abs() < 1e-6),
            PerfCheck::Regression(_) => panic!("10% slowdown is within a 25% budget"),
        }
        assert!(matches!(
            check_against_baseline(base * 0.5, &json, 25.0).expect("parses"),
            PerfCheck::Regression(_)
        ));
        assert!(check_against_baseline(1.0, "not json", 25.0).is_err());
    }
}
