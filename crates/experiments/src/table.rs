//! Plain-text table rendering for experiment output.

use std::fmt;

/// A printable results table with a title, optional note, headers, and
/// rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Title line (e.g. `"Figure 7: change in application's performance (%)"`).
    pub title: String,
    /// Optional explanatory note printed under the title.
    pub note: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            ..Table::default()
        }
    }

    /// Sets the note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    /// Sets the headers.
    pub fn with_headers<I, S>(mut self, headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width (when
    /// headers are set).
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        if !self.headers.is_empty() {
            assert_eq!(
                row.len(),
                self.headers.len(),
                "row width must match header width"
            );
        }
        self.rows.push(row);
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        if !self.note.is_empty() {
            out.push_str(&format!("{}\n\n", self.note));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut w = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        if !self.note.is_empty() {
            writeln!(f, "   {}", self.note)?;
        }
        let w = self.widths();
        if !self.headers.is_empty() {
            let line: Vec<String> = self
                .headers
                .iter()
                .enumerate()
                .map(|(i, h)| format!("{:>width$}", h, width = w[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
            writeln!(
                f,
                "{}",
                "-".repeat(w.iter().sum::<usize>() + 2 * (w.len() - 1))
            )?;
        }
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo")
            .with_note("a note")
            .with_headers(["bench", "value"]);
        t.push_row(["Find", "1.0"]);
        t.push_row(["Iscp", "22.5"]);
        t
    }

    #[test]
    fn display_contains_everything() {
        let s = sample().to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("a note"));
        assert!(s.contains("bench"));
        assert!(s.contains("22.5"));
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| bench | value |"));
        assert!(md.contains("| Iscp | 22.5 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new("x").with_headers(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(1.267), "1.27");
        assert_eq!(f3(0.12345), "0.123");
    }
}
