//! `repro loadgen` — fleet load-generation harness.
//!
//! Drives a mixed hit/miss/duplicate stream of run submissions at
//! configurable concurrency against a running endpoint (`--addr`) or a
//! self-spawned router + worker fleet (`--spawn N`), and reports:
//!
//! * latency percentiles (p50/p99/p999/max) over successful responses,
//! * shed (queue-full rejection) and retry rates,
//! * per-tier cache-hit counts pulled from the server's `stats` op
//!   (`serve_router_*` counters on a router, `serve_*` on a worker).
//!
//! The stream picks each request's job uniformly from `--distinct K`
//! pre-rendered specs, so the first touch of every key is a miss,
//! concurrent duplicates coalesce (single-flight), and the steady state
//! is cache hits — the traffic shape the SchedTask fleet argument is
//! about. `--assert-once` verifies fleet-wide execute-once semantics by
//! summing `serve_jobs_executed` over the fleet; `--verify` replays
//! every distinct key against a fresh single worker and compares result
//! payloads byte-for-byte with the fleet's answers.

use crate::runner::Technique;
use crate::serve_api::{ClientTimeouts, Endpoint, JobSpec, Json, ServeClient};
use schedtask_workload::BenchmarkKind;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("[loadgen] error: {msg}");
    std::process::exit(2);
}

fn print_help() {
    println!(
        "repro loadgen — drive a schedtaskd fleet with mixed traffic\n\n\
         usage: repro loadgen (--addr ENDPOINT | --spawn N)\n\
                [--requests N] [--concurrency N] [--distinct K] [--seed S]\n\
                [--retries N] [--wait-ms N] [--expect-cached]\n\
                [--assert-once] [--verify] [--out FILE]\n\n\
         ENDPOINT is tcp://HOST:PORT, unix:///PATH, or bare HOST:PORT.\n\n\
           --addr ENDPOINT   drive an already-running server or router\n\
           --spawn N         spawn N workers + a router, drive the router,\n\
                             and shut the fleet down afterwards\n\
           --requests N      total submissions (default 100000)\n\
           --concurrency N   client threads (default 16)\n\
           --distinct K      distinct job specs in the mix (default 64)\n\
           --seed S          traffic-shape seed (default 0x10AD)\n\
           --retries N       per-request retry budget on shed/transient\n\
                             failures (default 8)\n\
           --wait-ms N       connection/readiness budget (default 10000)\n\
           --expect-cached   exit 1 if any ok response missed every cache\n\
           --assert-once     exit 1 unless the fleet executed each distinct\n\
                             key exactly once during this run\n\
           --verify          replay all distinct keys against a fresh\n\
                             single worker; compare payload bytes\n\
           --out FILE        write per-key result payloads to FILE"
    );
}

/// SplitMix64 — deterministic traffic shaping.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Builds the `--distinct` pool of tiny, fast-to-execute job specs.
/// Each spec differs in seed (and alternates core count) so every key
/// is distinct while a single execution stays in the low milliseconds.
fn build_specs(distinct: usize, seed: u64) -> Vec<JobSpec> {
    (0..distinct)
        .map(|k| {
            let mut spec = JobSpec::new(Technique::SchedTask, BenchmarkKind::Find);
            spec.params.cores = 1 + k % 2;
            spec.params.max_instructions = 30_000;
            spec.params.warmup_instructions = 10_000;
            spec.params.epoch_cycles = 10_000;
            spec.params.seed = seed ^ (k as u64).wrapping_mul(0x9E37_79B9);
            spec
        })
        .collect()
}

/// One worker thread's tallies.
#[derive(Default)]
struct ThreadStats {
    latencies_us: Vec<u64>,
    ok: u64,
    cached: u64,
    coalesced: u64,
    sheds: u64,
    retries: u64,
    gave_up: u64,
    errors: u64,
}

struct SharedRun {
    next: AtomicU64,
    requests: u64,
    lines: Vec<String>,
    /// First captured `"result":...` payload bytes per distinct key.
    payloads: Mutex<Vec<Option<String>>>,
    seed: u64,
    retries: u32,
    endpoint: Endpoint,
    timeouts: ClientTimeouts,
}

/// Extracts the `"result":...` payload bytes from an ok response line.
fn result_payload(response: &str) -> Option<String> {
    let start = response.find("\"result\":")? + "\"result\":".len();
    Some(response[start..response.len() - 1].to_owned())
}

fn dial_until(endpoint: &Endpoint, timeouts: &ClientTimeouts, deadline: Instant) -> ServeClient {
    loop {
        match ServeClient::dial(endpoint, timeouts) {
            Ok(mut c) => match c.ping() {
                Ok(true) => return c,
                _ if Instant::now() < deadline => {}
                _ => die("server did not answer ping"),
            },
            Err(e) => {
                if Instant::now() >= deadline {
                    die(&format!("cannot connect to {endpoint}: {e}"));
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn worker_loop(shared: &SharedRun) -> ThreadStats {
    let mut stats = ThreadStats::default();
    let mut client: Option<ServeClient> = None;
    let distinct = shared.lines.len() as u64;
    loop {
        let idx = shared.next.fetch_add(1, Ordering::Relaxed);
        if idx >= shared.requests {
            break;
        }
        let k = (splitmix64(shared.seed ^ idx) % distinct) as usize;
        let line = &shared.lines[k];
        let started = Instant::now();
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            if attempts > 1 {
                stats.retries += 1;
            }
            let c = match client.as_mut() {
                Some(c) => c,
                None => match ServeClient::dial(&shared.endpoint, &shared.timeouts) {
                    Ok(c) => client.insert(c),
                    Err(_) if attempts <= shared.retries => {
                        std::thread::sleep(Duration::from_millis(20 * u64::from(attempts)));
                        continue;
                    }
                    Err(_) => {
                        stats.errors += 1;
                        break;
                    }
                },
            };
            let response = match c.request_line(line) {
                Ok(r) => r,
                Err(_) => {
                    // Connection died (worker crash, drop chaos): re-dial.
                    client = None;
                    if attempts <= shared.retries {
                        std::thread::sleep(Duration::from_millis(20 * u64::from(attempts)));
                        continue;
                    }
                    stats.errors += 1;
                    break;
                }
            };
            let Ok(json) = Json::parse(&response) else {
                stats.errors += 1;
                break;
            };
            match json.get("status").and_then(Json::as_str).unwrap_or("?") {
                "ok" => {
                    stats.ok += 1;
                    let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    stats.latencies_us.push(micros);
                    if json.get("cached").and_then(Json::as_bool).unwrap_or(false) {
                        stats.cached += 1;
                    }
                    if json
                        .get("coalesced")
                        .and_then(Json::as_bool)
                        .unwrap_or(false)
                    {
                        stats.coalesced += 1;
                    }
                    let mut payloads = shared.payloads.lock().unwrap_or_else(|e| e.into_inner());
                    if payloads[k].is_none() {
                        payloads[k] = result_payload(&response);
                    }
                    break;
                }
                "rejected" => {
                    stats.sheds += 1;
                    let hint = json
                        .get("retry_after_ms")
                        .and_then(Json::as_u64)
                        .unwrap_or(100);
                    if attempts <= shared.retries {
                        std::thread::sleep(Duration::from_millis(hint.clamp(10, 500)));
                        continue;
                    }
                    stats.gave_up += 1;
                    break;
                }
                _ => {
                    let detail = json.get("error").and_then(Json::as_str).unwrap_or("");
                    let transient = crate::serve_api::error_is_transient(detail);
                    if transient && attempts <= shared.retries {
                        std::thread::sleep(Duration::from_millis(20 * u64::from(attempts)));
                        continue;
                    }
                    stats.errors += 1;
                    break;
                }
            }
        }
    }
    stats
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// A spawned fleet: worker daemons plus a router, with temp cache dirs.
struct Fleet {
    children: Vec<Child>,
    dirs: Vec<std::path::PathBuf>,
    worker_addrs: Vec<String>,
    router_addr: String,
}

fn daemon_path() -> std::path::PathBuf {
    let daemon = std::env::current_exe().ok().and_then(|exe| {
        exe.parent()
            .map(|dir| dir.join(format!("schedtaskd{}", std::env::consts::EXE_SUFFIX)))
    });
    match daemon.filter(|p| p.exists()) {
        Some(p) => p,
        None => die("schedtaskd binary not found next to repro; \
             build it with `cargo build -p schedtask-serve`"),
    }
}

/// Spawns one `schedtaskd` and reads its banner to learn the bound
/// address. Extra args are appended verbatim.
fn spawn_daemon(daemon: &std::path::Path, extra: &[String]) -> (Child, String) {
    let mut cmd = Command::new(daemon);
    cmd.args(extra).stdout(Stdio::piped());
    let mut child = cmd
        .spawn()
        .unwrap_or_else(|e| die(&format!("cannot launch {}: {e}", daemon.display())));
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = std::io::BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {
                if let Some(rest) = line.trim_end().strip_prefix("schedtaskd listening on ") {
                    break rest.to_owned();
                }
            }
            _ => die("daemon exited before printing its listening banner"),
        }
    };
    // Drain the rest of the daemon's stdout so shutdown prints don't
    // SIGPIPE it.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, addr)
}

fn spawn_fleet(n_workers: usize) -> Fleet {
    let daemon = daemon_path();
    let base = std::env::temp_dir().join(format!("schedtask-loadgen-{}", std::process::id()));
    let mut children = Vec::new();
    let mut dirs = Vec::new();
    let mut worker_addrs = Vec::new();
    for i in 0..n_workers {
        let dir = base.join(format!("worker{i}"));
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
        let args = vec![
            "--addr".to_owned(),
            "tcp://127.0.0.1:0".to_owned(),
            "--cache-dir".to_owned(),
            dir.display().to_string(),
            "--drain-deadline-ms".to_owned(),
            "2000".to_owned(),
        ];
        let (child, addr) = spawn_daemon(&daemon, &args);
        println!("[loadgen] worker {i} listening on {addr}");
        children.push(child);
        dirs.push(dir);
        worker_addrs.push(addr);
    }
    let mut router_args = vec![
        "--router".to_owned(),
        "--addr".to_owned(),
        "tcp://127.0.0.1:0".to_owned(),
    ];
    for addr in &worker_addrs {
        router_args.push("--worker".to_owned());
        router_args.push(format!("tcp://{addr}"));
    }
    let (child, router_addr) = spawn_daemon(&daemon, &router_args);
    println!("[loadgen] router listening on {router_addr}");
    children.push(child);
    Fleet {
        children,
        dirs,
        worker_addrs,
        router_addr,
    }
}

impl Fleet {
    fn shutdown(mut self) {
        let timeouts = ClientTimeouts::default();
        let mut targets: Vec<String> = vec![self.router_addr.clone()];
        targets.extend(self.worker_addrs.iter().cloned());
        for addr in targets {
            if let Ok(mut c) = ServeClient::dial(&Endpoint::Tcp(addr), &timeouts) {
                let _ = c.request_line("{\"v\":1,\"op\":\"shutdown\"}");
            }
        }
        for child in &mut self.children {
            let _ = child.wait();
        }
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
        if let Some(parent) = self.dirs.first().and_then(|d| d.parent()) {
            let _ = std::fs::remove_dir(parent);
        }
    }
}

/// Fetches a stats line and returns the value of `counter` inside the
/// named counter object (`"counters"` or `"worker_counters"`).
fn stats_counter(stats_json: &Json, object: &str, counter: &str) -> u64 {
    stats_json
        .get(object)
        .and_then(|c| c.get(counter))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// `repro loadgen` entry point; exits the process.
#[allow(clippy::too_many_lines)]
pub fn run_loadgen(args: Vec<String>) -> ! {
    let mut addr: Option<Endpoint> = None;
    let mut spawn_workers: Option<usize> = None;
    let mut requests: u64 = 100_000;
    let mut concurrency: usize = 16;
    let mut distinct: usize = 64;
    let mut seed: u64 = 0x10AD;
    let mut retries: u32 = 8;
    let mut wait_ms: u64 = 10_000;
    let mut expect_cached = false;
    let mut assert_once = false;
    let mut verify = false;
    let mut out_file: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        macro_rules! num {
            ($flag:literal) => {
                value($flag)
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad {}: {e}", $flag)))
            };
        }
        match a.as_str() {
            "--addr" => addr = Some(num!("--addr")),
            "--spawn" => spawn_workers = Some(num!("--spawn")),
            "--requests" => requests = num!("--requests"),
            "--concurrency" => concurrency = num!("--concurrency"),
            "--distinct" => distinct = num!("--distinct"),
            "--seed" => seed = num!("--seed"),
            "--retries" => retries = num!("--retries"),
            "--wait-ms" => wait_ms = num!("--wait-ms"),
            "--expect-cached" => expect_cached = true,
            "--assert-once" => assert_once = true,
            "--verify" => verify = true,
            "--out" => out_file = Some(value("--out")),
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => die(&format!("loadgen: unknown argument {other:?} (try --help)")),
        }
    }
    if distinct == 0 || concurrency == 0 || requests == 0 {
        die("--requests, --concurrency, and --distinct must be positive");
    }
    let fleet = match (&addr, spawn_workers) {
        (Some(_), Some(_)) => die("--addr and --spawn are mutually exclusive"),
        (None, None) => die("loadgen needs --addr ENDPOINT or --spawn N"),
        (None, Some(n)) => {
            if n == 0 {
                die("--spawn needs at least 1 worker");
            }
            Some(spawn_fleet(n))
        }
        (Some(_), None) => None,
    };
    let endpoint = match (&addr, &fleet) {
        (Some(ep), _) => ep.clone(),
        (None, Some(f)) => Endpoint::Tcp(f.router_addr.clone()),
        (None, None) => unreachable!("checked above"),
    };

    let specs = build_specs(distinct, seed);
    let lines: Vec<String> = specs
        .iter()
        .enumerate()
        .map(|(k, s)| s.to_request_line(Some(&format!("lg-{k}")), false))
        .collect();

    let timeouts = ClientTimeouts::default();
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    // Snapshot the fleet's executed counter so --assert-once measures
    // this run's executions even against a fleet that already served
    // earlier traffic (counters are cumulative since daemon start).
    let executed_before = {
        let mut probe = dial_until(&endpoint, &timeouts, deadline);
        let line = probe
            .request_line("{\"v\":1,\"op\":\"stats\"}")
            .unwrap_or_else(|e| die(&format!("stats request failed: {e}")));
        let json = Json::parse(&line).unwrap_or_else(|e| die(&format!("unparseable stats: {e}")));
        let object = if json.get("router").and_then(Json::as_bool) == Some(true) {
            "worker_counters"
        } else {
            "counters"
        };
        stats_counter(&json, object, "serve_jobs_executed")
    };
    println!(
        "[loadgen] driving {requests} requests ({distinct} distinct keys, \
         {concurrency} threads) at {endpoint}"
    );

    let shared = Arc::new(SharedRun {
        next: AtomicU64::new(0),
        requests,
        lines,
        payloads: Mutex::new(vec![None; distinct]),
        seed,
        retries,
        endpoint: endpoint.clone(),
        timeouts,
    });
    let started = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    let mut merged = ThreadStats::default();
    for h in handles {
        let t = h.join().unwrap_or_else(|_| die("load thread panicked"));
        merged.latencies_us.extend_from_slice(&t.latencies_us);
        merged.ok += t.ok;
        merged.cached += t.cached;
        merged.coalesced += t.coalesced;
        merged.sheds += t.sheds;
        merged.retries += t.retries;
        merged.gave_up += t.gave_up;
        merged.errors += t.errors;
    }
    let elapsed = started.elapsed();
    merged.latencies_us.sort_unstable();

    let throughput = merged.ok as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "[loadgen] {} ok ({} cached, {} coalesced), {} sheds ({} gave up), \
         {} retries, {} errors in {:.2}s ({:.0} req/s)",
        merged.ok,
        merged.cached,
        merged.coalesced,
        merged.sheds,
        merged.gave_up,
        merged.retries,
        merged.errors,
        elapsed.as_secs_f64(),
        throughput
    );
    println!(
        "[loadgen] latency_us p50={} p99={} p999={} max={}",
        percentile(&merged.latencies_us, 0.50),
        percentile(&merged.latencies_us, 0.99),
        percentile(&merged.latencies_us, 0.999),
        merged.latencies_us.last().copied().unwrap_or(0)
    );
    let shed_rate = merged.sheds as f64 / requests as f64;
    println!("[loadgen] shed_rate={shed_rate:.4}");

    // Pull the endpoint's stats for per-tier hit counts.
    let mut client = dial_until(
        &endpoint,
        &timeouts,
        Instant::now() + Duration::from_secs(5),
    );
    let stats_line = client
        .request_line("{\"v\":1,\"op\":\"stats\"}")
        .unwrap_or_else(|e| die(&format!("stats request failed: {e}")));
    println!("[loadgen] stats: {stats_line}");
    let stats_json =
        Json::parse(&stats_line).unwrap_or_else(|e| die(&format!("unparseable stats: {e}")));
    let is_router = stats_json.get("router").and_then(Json::as_bool) == Some(true);
    if is_router {
        println!(
            "[loadgen] tiers: router_hot_hits={} router_coalesced={} \
             worker_cache_hits={} worker_disk_hits={} worker_executed={}",
            stats_counter(&stats_json, "counters", "serve_router_hot_hits"),
            stats_counter(&stats_json, "counters", "serve_router_coalesced"),
            stats_counter(&stats_json, "worker_counters", "serve_cache_hits"),
            stats_counter(&stats_json, "worker_counters", "serve_disk_hits"),
            stats_counter(&stats_json, "worker_counters", "serve_jobs_executed"),
        );
    } else {
        println!(
            "[loadgen] tiers: cache_hits={} disk_hits={} executed={}",
            stats_counter(&stats_json, "counters", "serve_cache_hits"),
            stats_counter(&stats_json, "counters", "serve_disk_hits"),
            stats_counter(&stats_json, "counters", "serve_jobs_executed"),
        );
    }

    let mut failed = false;
    if merged.errors > 0 || merged.gave_up > 0 {
        eprintln!(
            "[loadgen] FAIL: {} errors, {} submissions gave up",
            merged.errors, merged.gave_up
        );
        failed = true;
    }
    if expect_cached && merged.cached < merged.ok {
        eprintln!(
            "[loadgen] FAIL: --expect-cached but only {}/{} ok responses were cached",
            merged.cached, merged.ok
        );
        failed = true;
    }
    if assert_once {
        let object = if is_router {
            "worker_counters"
        } else {
            "counters"
        };
        let executed = stats_counter(&stats_json, object, "serve_jobs_executed")
            .saturating_sub(executed_before);
        if executed == distinct as u64 {
            println!(
                "[loadgen] assert-once: fleet executed {executed} jobs \
                 for {distinct} distinct keys — exactly once each"
            );
        } else {
            eprintln!(
                "[loadgen] FAIL: --assert-once: fleet executed {executed} jobs \
                 for {distinct} distinct keys"
            );
            failed = true;
        }
    }

    let payloads = {
        let guard = shared.payloads.lock().unwrap_or_else(|e| e.into_inner());
        guard.clone()
    };
    if let Some(path) = &out_file {
        let mut text = String::new();
        for (k, payload) in payloads.iter().enumerate() {
            if let Some(p) = payload {
                text.push_str(&format!("lg-{k} {p}\n"));
            }
        }
        std::fs::write(path, text).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("[loadgen] wrote result payloads to {path}");
    }
    if verify && !failed {
        failed = !verify_against_direct_worker(&specs, &payloads);
    }

    if let Some(fleet) = fleet {
        fleet.shutdown();
        println!("[loadgen] fleet shut down cleanly");
    }
    std::process::exit(i32::from(failed));
}

/// Spawns a fresh single worker, replays every distinct spec directly,
/// and compares result payload bytes with the fleet-observed payloads.
fn verify_against_direct_worker(specs: &[JobSpec], fleet_payloads: &[Option<String>]) -> bool {
    let daemon = daemon_path();
    let dir = std::env::temp_dir().join(format!("schedtask-loadgen-verify-{}", std::process::id()));
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
    let args = vec![
        "--addr".to_owned(),
        "tcp://127.0.0.1:0".to_owned(),
        "--cache-dir".to_owned(),
        dir.display().to_string(),
        "--drain-deadline-ms".to_owned(),
        "2000".to_owned(),
    ];
    let (mut child, addr) = spawn_daemon(&daemon, &args);
    let endpoint = Endpoint::Tcp(addr);
    let timeouts = ClientTimeouts::default();
    let mut client = dial_until(
        &endpoint,
        &timeouts,
        Instant::now() + Duration::from_secs(10),
    );
    let mut mismatches = 0usize;
    let mut compared = 0usize;
    for (k, spec) in specs.iter().enumerate() {
        let Some(fleet_payload) = &fleet_payloads[k] else {
            continue;
        };
        let line = spec.to_request_line(Some(&format!("lg-{k}")), false);
        let response = client
            .request_line(&line)
            .unwrap_or_else(|e| die(&format!("verify request failed: {e}")));
        match result_payload(&response) {
            Some(direct) if &direct == fleet_payload => compared += 1,
            Some(_) => {
                eprintln!("[loadgen] verify: payload mismatch for key lg-{k}");
                mismatches += 1;
            }
            None => {
                eprintln!("[loadgen] verify: no result payload for key lg-{k}: {response}");
                mismatches += 1;
            }
        }
    }
    let _ = client.request_line("{\"v\":1,\"op\":\"shutdown\"}");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
    if mismatches == 0 {
        println!(
            "[loadgen] verify: {compared} fleet payloads byte-identical \
             to a direct single-worker run"
        );
        true
    } else {
        eprintln!("[loadgen] FAIL: verify: {mismatches} payload mismatches");
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_distinct_and_tiny() {
        let specs = build_specs(32, 7);
        let mut keys: Vec<u64> = specs.iter().map(JobSpec::cache_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 32, "all loadgen specs must have distinct keys");
        for spec in &specs {
            assert!(spec.params.max_instructions <= 30_000);
            assert!(spec.params.cores <= 2);
        }
    }

    #[test]
    fn percentiles_pick_expected_ranks() {
        let sorted: Vec<u64> = (1..=1000).collect();
        // rank = round((len-1) * p): round(499.5) = 500 → value 501.
        assert_eq!(percentile(&sorted, 0.50), 501);
        assert_eq!(percentile(&sorted, 0.99), 990);
        assert_eq!(percentile(&sorted, 0.999), 999);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn traffic_shape_is_deterministic() {
        let a: Vec<u64> = (0..64).map(|i| splitmix64(0x10AD ^ i) % 8).collect();
        let b: Vec<u64> = (0..64).map(|i| splitmix64(0x10AD ^ i) % 8).collect();
        assert_eq!(a, b);
        // Uniform-ish: every key in a small pool gets touched.
        let mut seen = [false; 8];
        for &k in &a {
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 keys touched in 64 draws");
    }
}
