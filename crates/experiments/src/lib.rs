//! Experiment harness regenerating every table and figure of the
//! SchedTask paper (MICRO 2017) and its arXiv appendix.
//!
//! Each module corresponds to one table/figure; the `repro` binary
//! exposes them as subcommands. See DESIGN.md's experiment index for the
//! mapping:
//!
//! | Paper artefact | Module |
//! |---|---|
//! | Figure 4, Section 4.4 | [`fig04_breakup`] |
//! | Figures 7, 8a-f, 10 | [`comparison`] |
//! | Figure 9a-c | [`fig09_stealing`] |
//! | Figure 11, Section 6.5 | [`fig11_heatmap`] |
//! | Section 6.1 overheads | [`overheads`] |
//! | Table 4 | [`table4_workload`] |
//! | Appendix Figures 1-3, Tables 2-4 | [`appendix`] |
//! | Design-choice ablations (beyond the paper) | [`ablations`] |
//!
//! # Examples
//!
//! ```no_run
//! use schedtask_experiments::{Comparison, ExpParams};
//!
//! let comparison = Comparison::run(&ExpParams::standard(), 2.0).expect("runs succeed");
//! println!("{}", comparison.fig07_performance());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod ablations;
pub mod appendix;
pub mod comparison;
pub mod fig04_breakup;
pub mod fig09_stealing;
pub mod fig11_heatmap;
pub mod loadgen;
pub mod overheads;
pub mod perf;
pub mod runner;
pub mod serve_api;
pub mod table;
pub mod table4_workload;

pub use comparison::Comparison;
pub use perf::{PerfCheck, PerfReport};
pub use runner::{
    CellObs, CellOutcome, ExpParams, ExperimentError, FailAfterScheduler, FailureCause, RunBuilder,
    SweepReport, Technique,
};
pub use serve_api::{Endpoint, JobSpec, Request, RequestOp, Response, ServeClient};
pub use table::Table;
