//! The arXiv appendix experiments ("Sensitivity Analysis of Core
//! Specialization Techniques"): multi-programmed workloads, i-cache
//! sizes, cache configurations, core counts, an instruction prefetcher,
//! and a trace cache.
//!
//! All of these reuse the main [`crate::Comparison`] harness with a
//! different machine template, exactly as the appendix reruns the main
//! methodology per configuration.

use crate::comparison::Comparison;
use crate::runner::{self, ExpParams, ExperimentError, RunBuilder, Technique};
use crate::table::{f1, Table};
use schedtask_kernel::WorkloadSpec;
use schedtask_metrics::geometric_mean_pct;
use schedtask_sim::{HierarchyConfig, SystemConfig};
use schedtask_workload::MultiProgrammedWorkload;

/// Appendix Figure 1: multi-programmed workloads MPW-A .. MPW-F.
pub fn multiprog_table(params: &ExpParams) -> Result<Table, ExperimentError> {
    let bags = MultiProgrammedWorkload::all();
    let mut headers = vec!["technique".to_string()];
    headers.extend(bags.iter().map(|b| b.name.to_string()));
    headers.push("gmean".to_string());
    let mut t = Table::new(
        "Appendix Figure 1: multi-programmed workloads — change in instruction throughput (%)",
    )
    .with_note("The paper reports SLICC collapsing here (its per-application collectives cannot share common OS execution across applications).")
    .with_headers(headers);

    let mut baselines = Vec::new();
    for b in bags.iter() {
        baselines.push(
            RunBuilder::new(params)
                .technique(Technique::Linux)
                .workload(&WorkloadSpec::from(b))
                .run()?,
        );
    }
    for tech in Technique::compared() {
        let mut vals = Vec::new();
        for (b, base) in bags.iter().zip(baselines.iter()) {
            let stats = RunBuilder::new(params)
                .technique(tech)
                .workload(&WorkloadSpec::from(b))
                .run()?;
            vals.push(runner::throughput_change(base, &stats));
        }
        let mut row = vec![tech.name().to_string()];
        row.extend(vals.iter().map(|&v| f1(v)));
        row.push(f1(geometric_mean_pct(&vals)));
        t.push_row(row);
    }
    Ok(t)
}

/// Appendix Table 2: i-cache size sweep (16 / 32 / 64 KB). Returns one
/// comparison per size.
pub fn icache_size_sweep(params: &ExpParams) -> Result<Vec<(u64, Comparison)>, ExperimentError> {
    let mut sweep = Vec::new();
    for kb in [16u64, 32, 64] {
        let system = params
            .system
            .clone()
            .with_hierarchy(params.system.hierarchy.clone().with_icache_size(kb * 1024));
        let p = params.clone().with_system(system);
        sweep.push((kb, Comparison::run(&p, 2.0)?));
    }
    Ok(sweep)
}

/// Formats the i-cache sweep as throughput-change tables.
pub fn icache_size_tables(sweep: &[(u64, Comparison)]) -> Vec<Table> {
    sweep
        .iter()
        .map(|(kb, c)| {
            let mut t = c.fig08a_throughput();
            t.title =
                format!("Appendix Table 2 ({kb} KB i-cache): change in instruction throughput (%)");
            t
        })
        .collect()
}

/// Appendix Table 3: cache configurations Config1 / Config2 / Config3.
pub fn cache_config_sweep(
    params: &ExpParams,
) -> Result<Vec<(&'static str, Comparison)>, ExperimentError> {
    let mut sweep = Vec::new();
    for (name, h) in [
        ("Config1", HierarchyConfig::config1()),
        ("Config2", HierarchyConfig::config2()),
        ("Config3", HierarchyConfig::config3()),
    ] {
        let system = params.system.clone().with_hierarchy(h);
        let p = params.clone().with_system(system);
        sweep.push((name, Comparison::run(&p, 2.0)?));
    }
    Ok(sweep)
}

/// Formats the cache-configuration sweep.
pub fn cache_config_tables(sweep: &[(&'static str, Comparison)]) -> Vec<Table> {
    sweep
        .iter()
        .map(|(name, c)| {
            let mut t = c.fig08a_throughput();
            t.title = format!("Appendix Table 3 ({name}): change in instruction throughput (%)");
            t
        })
        .collect()
}

/// Appendix Table 4: core-count sweep (8 / 16 / 24 / 32).
pub fn core_count_sweep(
    params: &ExpParams,
    counts: &[usize],
) -> Result<Vec<(usize, Comparison)>, ExperimentError> {
    let mut sweep = Vec::new();
    for &cores in counts {
        let mut p = params.clone().with_cores(cores);
        // Keep the per-core instruction budget constant across sizes.
        p.max_instructions = params.max_instructions * cores as u64 / params.cores as u64;
        p.warmup_instructions = params.warmup_instructions * cores as u64 / params.cores as u64;
        sweep.push((cores, Comparison::run(&p, 2.0)?));
    }
    Ok(sweep)
}

/// Formats the core-count sweep.
pub fn core_count_tables(sweep: &[(usize, Comparison)]) -> Vec<Table> {
    sweep
        .iter()
        .map(|(cores, c)| {
            let mut t = c.fig08a_throughput();
            t.title =
                format!("Appendix Table 4 ({cores} cores): change in instruction throughput (%)");
            t
        })
        .collect()
}

/// Appendix Figure 2: rerun with a CGP-like instruction prefetcher in the
/// baseline machine.
pub fn prefetcher_comparison(params: &ExpParams) -> Result<Comparison, ExperimentError> {
    let system: SystemConfig = params.system.clone().with_call_graph_prefetcher();
    let p = params.clone().with_system(system);
    Comparison::run(&p, 2.0)
}

/// Appendix Figure 3: rerun with a trace cache.
pub fn trace_cache_comparison(params: &ExpParams) -> Result<Comparison, ExperimentError> {
    let system: SystemConfig = params.system.clone().with_trace_cache();
    let p = params.clone().with_system(system);
    Comparison::run(&p, 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedtask_workload::BenchmarkKind;

    fn tiny() -> ExpParams {
        let mut p = ExpParams::quick();
        p.cores = 4;
        p.max_instructions = 250_000;
        p.warmup_instructions = 50_000;
        p
    }

    #[test]
    fn icache_sweep_builds_three_machines() {
        let p = tiny();
        // Use a subset comparison to keep the test fast.
        let sweep: Vec<(u64, Comparison)> = [16u64, 64]
            .into_iter()
            .map(|kb| {
                let system = p
                    .system
                    .clone()
                    .with_hierarchy(p.system.hierarchy.clone().with_icache_size(kb * 1024));
                let pp = p.clone().with_system(system);
                (
                    kb,
                    Comparison::run_subset(&pp, 1.0, &[BenchmarkKind::Find])
                        .expect("comparison runs"),
                )
            })
            .collect();
        let tables = icache_size_tables(&sweep);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].title.contains("16 KB"));
    }

    #[test]
    fn multiprog_table_renders() {
        let t = multiprog_table(&tiny()).expect("table runs");
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.headers.len(), 8); // technique + 6 bags + gmean
    }
}
